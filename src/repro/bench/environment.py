"""Testbed assembly.

The paper's testbed (§V-A): two identical servers, one running the
registries (Docker Registry + Gear Registry on the same node) and one
running the Docker daemon, connected by a measured 904 Mbps link.
:func:`make_testbed` wires the same topology out of simulated parts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.common.clock import SimClock
from repro.docker.daemon import DockerDaemon
from repro.docker.registry import DockerRegistry
from repro.gear.converter import GearConverter
from repro.gear.driver import GearDriver
from repro.gear.pool import EvictionPolicy, SharedFilePool
from repro.gear.registry import GearRegistry
from repro.net.edge import EdgeFabric, EdgeSite, EdgeStats
from repro.net.faas import FaasFabric, FaasStats, SharedCacheTier
from repro.net.faults import FaultPlan, FaultyLink
from repro.net.ha import (
    GEAR_ENDPOINT,
    AdmissionGate,
    BreakerState,
    HAFetchPolicy,
    HATransport,
    HealthMonitor,
    Replica,
    ReplicaSet,
)
from repro.net.link import Link
from repro.net.resilience import RetryPolicy
from repro.net.transport import RpcTransport
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import TimelineSampler, TimelineStats
from repro.obs.trace import SpanTracer
from repro.storage.disk import Disk, DiskProfile, HDD
from repro.workloads.corpus import GeneratedImage


@dataclass
class Testbed:
    """One client + one registry node over a configurable link."""

    clock: SimClock
    link: Link
    transport: RpcTransport
    docker_registry: DockerRegistry
    gear_registry: GearRegistry
    converter: GearConverter
    daemon: DockerDaemon
    gear_driver: GearDriver
    fault_plan: Optional[FaultPlan] = None
    #: The HA transport facade when this testbed has a replicated
    #: registry tier (same object as ``transport`` then).
    ha: Optional[HATransport] = None
    #: The unified metrics registry every stats group is registered
    #: with; ``metrics.reset()`` is the one reset for the whole testbed.
    metrics: Optional[MetricsRegistry] = None
    #: The edge distribution fabric when this testbed has a peer-serving
    #: site tier (mint nodes with ``edge.client()``).
    edge: Optional[EdgeFabric] = None
    #: The FaaS distribution fabric when this testbed has a shared
    #: intermediate cache tier (mint nodes with ``faas.client()``).
    faas: Optional[FaasFabric] = None
    #: Sampler accounting shared by every :func:`make_timeline_sampler`
    #: built from this testbed; registered as the ``timeline`` metrics
    #: group so one ``metrics.reset()`` covers it too.
    timeline_stats: TimelineStats = field(default_factory=TimelineStats)

    def attach_tracer(self, tracer: Optional[SpanTracer] = None) -> SpanTracer:
        """Attach (or create) a span tracer on the testbed clock."""
        return self.clock.attach_tracer(tracer)

    def reset_metrics(self) -> None:
        """One reset for every registered counter in the testbed."""
        if self.metrics is not None:
            self.metrics.reset()

    def all_links(self) -> "list[Link]":
        """Every simulated wire in the testbed (base + replica + tier)."""
        links = [self.link]
        if self.ha is not None:
            links.extend(r.link for r in self.ha.replica_set.replicas)
        if self.faas is not None:
            links.append(self.faas.tier.link)
        return links

    def set_bandwidth(self, bandwidth_mbps: float) -> None:
        """Change the client↔registry link speed in place."""
        for link in self.all_links():
            link.bandwidth_mbps = bandwidth_mbps

    def arm_faults(self) -> None:
        """Anchor the fault plans' outage windows at the current time.

        Call after publishing/converting so outage offsets are relative
        to deployment start, not corpus-construction time.
        """
        for link in self.all_links():
            if isinstance(link, FaultyLink):
                link.arm()

    def disarm_faults(self) -> None:
        """Suspend outage windows (drops/corruption stay live)."""
        for link in self.all_links():
            if isinstance(link, FaultyLink):
                link.disarm()

    def fresh_client(self) -> "Testbed":
        """Replace the client side (daemon, driver, cache) with new, empty
        state, keeping the registries and clock.

        Deployment sweeps use this to measure each image from a cold
        client without rebuilding (and re-converting) the registries.
        """
        daemon = DockerDaemon(self.clock, self.transport)
        driver = GearDriver(self.clock, daemon, self.transport)
        bed = Testbed(
            clock=self.clock,
            link=self.link,
            transport=self.transport,
            docker_registry=self.docker_registry,
            gear_registry=self.gear_registry,
            converter=self.converter,
            daemon=daemon,
            gear_driver=driver,
            fault_plan=self.fault_plan,
            ha=self.ha,
            metrics=self.metrics,
            edge=self.edge,
            faas=self.faas,
            timeline_stats=self.timeline_stats,
        )
        # Replace-by-key: the new client's pool and journal take over the
        # old ones' registry slots.
        _register_client_metrics(bed)
        return bed


def _register_client_metrics(testbed: Testbed) -> None:
    """(Re-)register the client-side stat groups (pool, journal, mounts).

    Registration replaces by key, so a :meth:`Testbed.fresh_client` swap
    points the registry at the new client's groups instead of leaking
    the old ones.
    """
    if testbed.metrics is None:
        return
    testbed.metrics.register("pool", testbed.gear_driver.pool.stats)
    testbed.metrics.register("journal", testbed.gear_driver.journal.stats)
    testbed.metrics.register("chunk", testbed.gear_driver.chunk_stats)


def _instrument(testbed: Testbed) -> MetricsRegistry:
    """Wire every stats group in the testbed into one registry.

    After this, ``testbed.metrics.reset()`` is the single reset covering
    RPC endpoints, replica/HA policy counters, fault injectors, retry
    spend, the shared pool, and the journal — the drift-proof
    replacement for scattered per-object ``reset_stats`` calls.
    """
    registry = MetricsRegistry()
    testbed.metrics = registry
    registry.register("timeline", testbed.timeline_stats)
    ha = testbed.ha
    if ha is None:
        for name in ("docker-registry", "gear-registry"):
            if testbed.transport.has_endpoint(name):
                registry.register(
                    "rpc", testbed.transport.endpoint(name).stats, endpoint=name
                )
        base_transport = testbed.transport
    else:
        base_transport = ha.base
        registry.register(
            "rpc",
            ha.base.endpoint("docker-registry").stats,
            endpoint="docker-registry",
        )
        for replica in ha.replica_set.replicas:
            registry.register(
                "rpc",
                replica.transport.endpoint(GEAR_ENDPOINT).stats,
                endpoint=GEAR_ENDPOINT,
                replica=replica.name,
            )
            registry.register("replica", replica.stats, replica=replica.name)
        registry.register("ha", ha.policy.stats)
        # Breaker trips are derived state owned by the breakers'
        # lifecycle, not the measurement epoch: snapshot-only callback.
        registry.register_callback(
            "breaker",
            lambda rs=ha.replica_set: {"trips": rs.breaker_trips},
        )
        ha_retry = ha.policy.retry_policy
        if ha_retry is not None:
            registry.register_callback(
                "retry",
                ha_retry.metrics,
                reset=ha_retry.reset_spent,
                scope="ha",
            )
    for index, link in enumerate(testbed.all_links()):
        if isinstance(link, FaultyLink):
            scope = "base" if index == 0 else f"replica-{index - 1}"
            registry.register("link_faults", link.fault_stats, scope=scope)
    base_retry = base_transport.retry_policy
    if base_retry is not None:
        registry.register_callback(
            "retry",
            base_retry.metrics,
            reset=base_retry.reset_spent,
            scope="base",
        )
    _register_client_metrics(testbed)
    return registry


def make_testbed(
    *,
    bandwidth_mbps: float = 904.0,
    registry_disk: DiskProfile = HDD,
    client_disk: DiskProfile = HDD,
    pool_capacity_bytes: Optional[int] = None,
    pool_policy: EvictionPolicy = EvictionPolicy.LRU,
    fault_plan: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> Testbed:
    """Assemble the two-node testbed of §V-A.

    A ``fault_plan`` swaps the link for a :class:`FaultyLink` and (unless
    an explicit ``retry_policy`` is given) equips the transport with the
    default :class:`RetryPolicy`.  Without a plan the wiring is exactly
    the seed topology — same link, no retry state, byte-identical logs.
    """
    clock = SimClock()
    if fault_plan is not None:
        link: Link = FaultyLink(
            clock, fault_plan, bandwidth_mbps=bandwidth_mbps
        )
        if retry_policy is None:
            retry_policy = RetryPolicy()
    else:
        link = Link(clock, bandwidth_mbps=bandwidth_mbps)
    transport = RpcTransport(link, retry_policy=retry_policy)
    docker_registry = DockerRegistry()
    gear_registry = GearRegistry()
    transport.bind(docker_registry.endpoint())
    transport.bind(gear_registry.endpoint())
    converter = GearConverter(
        clock, docker_registry, gear_registry, disk=Disk(clock, registry_disk)
    )
    daemon = DockerDaemon(clock, transport, disk=Disk(clock, client_disk))
    pool = SharedFilePool(capacity_bytes=pool_capacity_bytes, policy=pool_policy)
    gear_driver = GearDriver(clock, daemon, transport, pool=pool)
    testbed = Testbed(
        clock=clock,
        link=link,
        transport=transport,
        docker_registry=docker_registry,
        gear_registry=gear_registry,
        converter=converter,
        daemon=daemon,
        gear_driver=gear_driver,
        fault_plan=fault_plan,
    )
    _instrument(testbed)
    return testbed


def make_ha_testbed(
    *,
    replicas: int = 3,
    bandwidth_mbps: float = 904.0,
    registry_disk: DiskProfile = HDD,
    client_disk: DiskProfile = HDD,
    pool_capacity_bytes: Optional[int] = None,
    pool_policy: EvictionPolicy = EvictionPolicy.LRU,
    fault_plan: Optional[FaultPlan] = None,
    replica_fault_plans: Optional[Sequence[Optional[FaultPlan]]] = None,
    retry_policy: Optional[RetryPolicy] = None,
    strategy: str = "primary-first",
    hedging: bool = True,
    admission_capacity: Optional[int] = None,
    probe_interval_s: float = 0.5,
    seed: str = "ha",
) -> Testbed:
    """Assemble the testbed with a replicated Gear registry tier.

    ``replicas`` Gear registries each sit behind their own link and
    transport; the Docker registry stays on the base link (``fault_plan``
    applies there).  ``replica_fault_plans[i]`` swaps replica *i*'s link
    for a :class:`FaultyLink` — outages, brownouts, byzantine corruption
    per replica.  Every replica link shares the base link's
    :class:`~repro.net.link.TransferLog`, so byte accounting
    (``testbed.link.log``) stays fleet-wide exactly as in the
    single-registry testbed.

    The HA-level ``retry_policy`` governs failover backoff rounds;
    replica transports carry no per-call retry — a failed attempt fails
    over to the next replica instead of hammering the same one.
    """
    if replicas < 1:
        raise ValueError("need at least one replica")
    clock = SimClock()
    if fault_plan is not None:
        base_link: Link = FaultyLink(
            clock, fault_plan, bandwidth_mbps=bandwidth_mbps
        )
        base_retry: Optional[RetryPolicy] = RetryPolicy(seed=f"{seed}-docker")
    else:
        base_link = Link(clock, bandwidth_mbps=bandwidth_mbps)
        base_retry = None
    base_transport = RpcTransport(base_link, retry_policy=base_retry)
    docker_registry = DockerRegistry()
    base_transport.bind(docker_registry.endpoint())

    plans = list(replica_fault_plans) if replica_fault_plans else []
    members = []
    for index in range(replicas):
        plan = plans[index] if index < len(plans) else None
        if plan is not None:
            replica_link: Link = FaultyLink(
                clock, plan, bandwidth_mbps=bandwidth_mbps
            )
        else:
            replica_link = Link(clock, bandwidth_mbps=bandwidth_mbps)
        replica_link.log = base_link.log
        replica_transport = RpcTransport(replica_link)
        registry = GearRegistry()
        replica_transport.bind(registry.endpoint())
        members.append(
            Replica(
                f"replica-{index}",
                index,
                registry,
                replica_link,
                replica_transport,
                admission=AdmissionGate(admission_capacity),
            )
        )
    replica_set = ReplicaSet(clock, members, seed=seed)
    policy = HAFetchPolicy(
        replica_set,
        strategy=strategy,
        retry_policy=retry_policy,
        hedging=hedging,
        seed=seed,
    )
    monitor = HealthMonitor(replica_set, interval_s=probe_interval_s)
    ha = HATransport(base_transport, policy, monitor)

    converter = GearConverter(
        clock, docker_registry, replica_set, disk=Disk(clock, registry_disk)
    )
    daemon = DockerDaemon(clock, ha, disk=Disk(clock, client_disk))
    pool = SharedFilePool(capacity_bytes=pool_capacity_bytes, policy=pool_policy)
    gear_driver = GearDriver(clock, daemon, ha, pool=pool)
    testbed = Testbed(
        clock=clock,
        link=base_link,
        transport=ha,
        docker_registry=docker_registry,
        gear_registry=replica_set,
        converter=converter,
        daemon=daemon,
        gear_driver=gear_driver,
        fault_plan=fault_plan,
        ha=ha,
    )
    _instrument(testbed)
    return testbed


def make_edge_testbed(
    *,
    sites: int = 1,
    bandwidth_mbps: float = 904.0,
    lan_mbps: float = 904.0,
    registry_disk: DiskProfile = HDD,
    client_disk: DiskProfile = HDD,
    pool_capacity_bytes: Optional[int] = None,
    pool_policy: EvictionPolicy = EvictionPolicy.LRU,
    fault_plan: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
    edge_retry_policy: Optional[RetryPolicy] = None,
    gossip_interval_s: float = 0.25,
    seed: str = "edge",
) -> Testbed:
    """Assemble the multi-tier edge testbed: registry ↔ WAN ↔ sites ↔ LAN.

    The registry side is wired exactly as :func:`make_testbed` (same WAN
    link, same endpoints), then ``sites`` :class:`~repro.net.edge.
    EdgeSite`\\ s are attached, each with its own LAN link and
    :class:`~repro.net.link.TransferLog` — so ``testbed.link.log`` keeps
    counting *registry egress only* and the peer/site traffic shows up on
    the site links.  Mint nodes with ``testbed.edge.client()``; each gets
    an :class:`~repro.net.edge.EdgeTransport` walking the peer → site
    cache → registry chain.  With no peers holding a file and an empty
    site cache, that chain is byte- and time-identical to the single-tier
    testbed's registry call.

    ``edge_retry_policy`` governs whole-chain backoff rounds (defaults to
    a fabric-seeded :class:`RetryPolicy`); ``retry_policy``/``fault_plan``
    apply to the WAN exactly as in :func:`make_testbed`.
    """
    if sites < 1:
        raise ValueError("need at least one edge site")
    testbed = make_testbed(
        bandwidth_mbps=bandwidth_mbps,
        registry_disk=registry_disk,
        client_disk=client_disk,
        pool_capacity_bytes=pool_capacity_bytes,
        pool_policy=pool_policy,
        fault_plan=fault_plan,
        retry_policy=retry_policy,
    )
    stats = EdgeStats()
    site_list = [
        EdgeSite(
            f"site-{index}",
            testbed.clock,
            Link(testbed.clock, bandwidth_mbps=lan_mbps),
            stats=stats,
            seed=seed,
            gossip_interval_s=gossip_interval_s,
        )
        for index in range(sites)
    ]
    if edge_retry_policy is None:
        edge_retry_policy = RetryPolicy(seed=f"{seed}-fabric")
    fabric = EdgeFabric(
        testbed,
        site_list,
        stats=stats,
        seed=seed,
        retry_policy=edge_retry_policy,
        pool_capacity_bytes=pool_capacity_bytes,
        pool_policy=pool_policy,
    )
    testbed.edge = fabric
    if testbed.metrics is not None:
        testbed.metrics.register("edge", stats)
        testbed.metrics.register_callback(
            "edge_retry",
            edge_retry_policy.metrics,
            reset=edge_retry_policy.reset_spent,
        )
    return testbed


def make_faas_testbed(
    *,
    bandwidth_mbps: float = 904.0,
    tier_mbps: float = 904.0,
    registry_disk: DiskProfile = HDD,
    client_disk: DiskProfile = HDD,
    pool_capacity_bytes: Optional[int] = None,
    pool_policy: EvictionPolicy = EvictionPolicy.LRU,
    fault_plan: Optional[FaultPlan] = None,
    tier_fault_plan: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
    faas_retry_policy: Optional[RetryPolicy] = None,
    tier_capacity_bytes: Optional[int] = None,
    tier_ttl_s: Optional[float] = None,
    tier_admission_capacity: Optional[int] = None,
    ha_replicas: int = 0,
    seed: str = "faas",
) -> Testbed:
    """Assemble the three-tier FaaS testbed: nodes ↔ tier ↔ registry.

    The registry side is wired exactly as :func:`make_testbed` (or
    :func:`make_ha_testbed` when ``ha_replicas > 0`` — the Lambda-paper
    shape: a replicated store behind the shared cache).  One
    :class:`~repro.net.faas.SharedCacheTier` is attached on its own link
    with its own :class:`~repro.net.link.TransferLog`, so
    ``testbed.link.log`` keeps counting *registry WAN egress only* and
    tier-served traffic shows up on the tier link.  Mint nodes with
    ``testbed.faas.client()``; each walks pool → tier → registry.

    ``tier_fault_plan`` swaps the tier link for a
    :class:`~repro.net.faults.FaultyLink`; scope its windows to the tier
    with ``targets=("faas-tier",)`` (see
    :data:`~repro.net.faas.FAAS_TIER_ENDPOINT`).  ``faas_retry_policy``
    governs whole-chain backoff rounds (defaults to a fabric-seeded
    policy); ``retry_policy``/``fault_plan`` apply to the WAN exactly as
    in :func:`make_testbed`.
    """
    if ha_replicas > 0:
        testbed = make_ha_testbed(
            replicas=ha_replicas,
            bandwidth_mbps=bandwidth_mbps,
            registry_disk=registry_disk,
            client_disk=client_disk,
            pool_capacity_bytes=pool_capacity_bytes,
            pool_policy=pool_policy,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
            seed=f"{seed}-ha",
        )
    else:
        testbed = make_testbed(
            bandwidth_mbps=bandwidth_mbps,
            registry_disk=registry_disk,
            client_disk=client_disk,
            pool_capacity_bytes=pool_capacity_bytes,
            pool_policy=pool_policy,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
        )
    stats = FaasStats()
    if tier_fault_plan is not None:
        tier_link: Link = FaultyLink(
            testbed.clock, tier_fault_plan, bandwidth_mbps=tier_mbps
        )
    else:
        tier_link = Link(testbed.clock, bandwidth_mbps=tier_mbps)
    tier = SharedCacheTier(
        "shared-tier",
        testbed.clock,
        tier_link,
        stats=stats,
        capacity_bytes=tier_capacity_bytes,
        ttl_s=tier_ttl_s,
        admission=AdmissionGate(tier_admission_capacity),
    )
    if faas_retry_policy is None:
        faas_retry_policy = RetryPolicy(seed=f"{seed}-fabric")
    fabric = FaasFabric(
        testbed,
        tier,
        stats=stats,
        seed=seed,
        retry_policy=faas_retry_policy,
        pool_capacity_bytes=pool_capacity_bytes,
        pool_policy=pool_policy,
    )
    testbed.faas = fabric
    if testbed.metrics is not None:
        testbed.metrics.register("faas", stats)
        if isinstance(tier_link, FaultyLink):
            testbed.metrics.register(
                "link_faults", tier_link.fault_stats, scope="faas-tier"
            )
        testbed.metrics.register_callback(
            "faas_retry",
            faas_retry_policy.metrics,
            reset=faas_retry_policy.reset_spent,
        )
    return testbed


def make_timeline_sampler(
    testbed: Testbed,
    *,
    period_s: float = 0.25,
    jitter: float = 0.2,
    seed: str = "timeline",
) -> TimelineSampler:
    """Build a :class:`TimelineSampler` wired with the standard probes.

    The probe set adapts to the testbed's tiers: the client pool and
    journal, every link's active flows / busy seconds / transferred
    bytes, replica breaker state and admission-gate depth under HA, the
    shared FaaS tier's occupancy/gate/breaker, and LAN aggregates on
    edge fabrics.  All probes are pure reads — sampling never advances
    the clock or touches another component's RNG stream.  Pass the
    result to a wave helper's ``sampler=`` to attach it; detached runs
    spawn nothing and stay byte-identical.
    """
    clock = testbed.clock
    sampler = TimelineSampler(
        clock,
        period_s=period_s,
        jitter=jitter,
        seed=seed,
        stats=testbed.timeline_stats,
    )
    pool = testbed.gear_driver.pool
    sampler.add_probe("pool_inflight", lambda: float(len(pool.inflight)))
    sampler.add_probe("pool_used_bytes", lambda: float(pool.used_bytes))
    journal = testbed.gear_driver.journal
    sampler.add_probe("journal_records", lambda: float(len(journal)))
    for index, link in enumerate(testbed.all_links()):
        scope = "base" if index == 0 else f"link-{index}"
        sampler.add_probe(
            f"link_active_flows:{scope}",
            lambda bound=link: float(bound.active_flows),
        )
        sampler.add_probe(
            f"link_busy_s:{scope}",
            lambda bound=link: float(bound.busy_seconds),
        )
        sampler.add_probe(
            f"link_bytes:{scope}",
            lambda bound=link: float(bound.log.total_bytes),
        )
    if testbed.ha is not None:
        for replica in testbed.ha.replica_set.replicas:
            sampler.add_probe(
                f"breaker_open:{replica.name}",
                lambda bound=replica: float(
                    bound.breaker.state(clock.now) is BreakerState.OPEN
                ),
            )
            sampler.add_probe(
                f"gate_depth:{replica.name}",
                lambda bound=replica: float(bound.admission.inflight),
            )
    if testbed.faas is not None:
        tier = testbed.faas.tier
        sampler.add_probe("tier_used_bytes", lambda: float(tier.used_bytes))
        sampler.add_probe(
            "tier_gate_depth", lambda: float(tier.admission.inflight)
        )
        sampler.add_probe(
            "tier_breaker_open",
            lambda: float(tier.breaker.state(clock.now) is BreakerState.OPEN),
        )
    if testbed.edge is not None:
        fabric = testbed.edge
        sampler.add_probe(
            "lan_bytes",
            lambda: float(
                sum(link.log.total_bytes for link in fabric.lan_links())
            ),
        )
        sampler.add_probe(
            "lan_active_flows",
            lambda: float(
                sum(link.active_flows for link in fabric.lan_links())
            ),
        )
    return sampler


def publish_images(
    testbed: Testbed,
    images: Iterable[GeneratedImage],
    *,
    convert: bool = True,
) -> list:
    """Push corpus images into the registries; optionally convert each.

    Returns the conversion reports (empty when ``convert=False``).
    """
    reports = []
    for generated in images:
        testbed.docker_registry.push_image(generated.image)
        if convert:
            _, report = testbed.converter.convert(generated.reference)
            reports.append(report)
    return reports
