"""Plain-text tables for benchmark output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render rows as an aligned ASCII table (right-align numbers)."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in materialized:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def gb(num_bytes: float) -> str:
    """Gigabytes with one decimal, as the paper's tables report."""
    return f"{num_bytes / 1e9:.1f}"


def pct(fraction: float) -> str:
    """A fraction as a percentage string."""
    return f"{100.0 * fraction:.1f}%"
