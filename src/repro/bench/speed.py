"""Simulator throughput harness: events/sec on canonical scenarios.

The paper-scale experiments (Fig. 9 fleets, the contention sweep, the
edge waves) are bounded by how fast the discrete-event core executes,
not by anything in the Gear model itself.  This module pins down that
speed with two canonical scenarios and a report type that keeps the
*deterministic* simulation outputs (event counts, virtual seconds,
modeled bytes — byte-identical run to run) strictly separate from the
*wall-clock* throughput numbers (events/sec — machine-dependent, never
checked into artifacts):

* **microflows** — N clients alternate a seeded think time with a seeded
  transfer on one shared fair-share link.  Pure scheduler + link-model
  work, no Gear stack, so its events/sec is the core's ceiling.  Runs in
  ``gen`` mode (generator processes parked directly on the event heap)
  or ``thread`` mode (strict-handoff worker threads); both must produce
  identical deterministic fields — the cross-mode equivalence the
  refactor preserves.
* **deploy_wave** — the standard fleet scenario (``Cluster`` +
  ``deploy_with_gear`` on the nginx corpus at 100 Mbps), the workload
  the 1024-client wall-clock budget in ``benchmarks/bench_ext_speed.py``
  is written against.

Baseline constants below record the pre-refactor core's throughput so
the regression gate has a fixed, in-repo anchor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.common.clock import SimClock, SimScheduler
from repro.common.rng import rng_for
from repro.net.link import Link

#: Throughput of the pre-refactor simulator core (thread-only handoffs,
#: per-event heap objects, O(flows) link-rate recomputation) on the
#: microflows scenario at its standard shape (1024 clients x 4 transfers
#: @ 200 Mbps): 17,407 scheduled events in ~1.02 s of wall clock on the
#: reference machine — about 17k events/sec.  Recorded once, kept as the
#: fixed anchor for the >=5x regression gate.
BASELINE_MICROFLOW_EVENTS_PER_S = 17_000.0

#: The speed-arc acceptance bar: the refactored core must clear this
#: multiple of the recorded baseline on the same scenario.
SPEEDUP_GATE = 5.0

#: Standard microflows shape (matches the recorded baseline).
MICROFLOW_CLIENTS = 1024
MICROFLOW_TRANSFERS = 4
MICROFLOW_BANDWIDTH_MBPS = 200.0


@dataclass(frozen=True)
class SpeedReport:
    """One scenario run: deterministic outputs + wall-clock throughput."""

    scenario: str
    mode: str
    clients: int
    events: int
    virtual_s: float
    simulated_bytes: int
    wall_s: float

    @property
    def events_per_s(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def simulated_bytes_per_s(self) -> float:
        return self.simulated_bytes / self.wall_s if self.wall_s > 0 else 0.0

    def deterministic(self) -> Dict[str, object]:
        """The replayable fields — byte-identical across runs/machines."""
        return {
            "scenario": self.scenario,
            "mode": self.mode,
            "clients": self.clients,
            "events": self.events,
            "virtual_s": round(self.virtual_s, 6),
            "simulated_bytes": self.simulated_bytes,
        }

    def timing(self) -> Dict[str, float]:
        """Wall-clock throughput — machine-dependent, never an artifact."""
        return {
            "wall_s": self.wall_s,
            "events_per_s": self.events_per_s,
            "simulated_bytes_per_s": self.simulated_bytes_per_s,
        }


def _microflow_plans(
    clients: int, transfers: int
) -> List[Tuple[List[int], List[float]]]:
    """Seeded per-client (transfer sizes, think times) — scenario input."""
    rng = rng_for("bench-speed", str(clients), str(transfers))
    plans = []
    for _ in range(clients):
        sizes = [rng.randrange(65536, 2_097_152) for _ in range(transfers)]
        thinks = [rng.random() * 0.2 for _ in range(transfers)]
        plans.append((sizes, thinks))
    return plans


def run_microflows(
    clients: int = MICROFLOW_CLIENTS,
    transfers: int = MICROFLOW_TRANSFERS,
    *,
    mode: str = "gen",
    bandwidth_mbps: float = MICROFLOW_BANDWIDTH_MBPS,
) -> SpeedReport:
    """N clients think + transfer on one shared link; pure core work."""
    if mode not in ("gen", "thread"):
        raise ValueError(f"unknown mode {mode!r}; want 'gen' or 'thread'")
    clock = SimClock()
    link = Link(clock, bandwidth_mbps=bandwidth_mbps)
    plans = _microflow_plans(clients, transfers)

    def client_call(sizes: List[int], thinks: List[float]) -> None:
        for size, think in zip(sizes, thinks):
            clock.advance(think, "think")
            link.transfer(size)

    def client_gen(sizes: List[int], thinks: List[float]) -> Iterator[object]:
        for size, think in zip(sizes, thinks):
            yield think
            clock.note("think")
            yield from link.transfer_gen(size)

    target = client_gen if mode == "gen" else client_call
    with SimScheduler(clock) as scheduler:
        begun = time.perf_counter()
        for index, (sizes, thinks) in enumerate(plans):
            scheduler.spawn(target, sizes, thinks, name=f"flow-{index:04d}")
        scheduler.run()
        wall = time.perf_counter() - begun
        events = scheduler.events_processed
    return SpeedReport(
        scenario="microflows",
        mode=mode,
        clients=clients,
        events=events,
        virtual_s=clock.now,
        simulated_bytes=link.log.total_bytes,
        wall_s=wall,
    )


def run_deploy_wave(
    clients: int = 64,
    *,
    bandwidth_mbps: float = 100.0,
    scale: float = 0.2,
    seed: int = 7,
) -> SpeedReport:
    """The standard Gear fleet wave (nginx corpus, shared 100 Mbps uplink)."""
    # Imported here so the microflows path stays importable without the
    # whole Gear stack.
    from repro.bench.deploy import deploy_with_gear
    from repro.bench.environment import publish_images
    from repro.net.topology import Cluster
    from repro.workloads.corpus import CorpusBuilder, CorpusConfig

    corpus = CorpusBuilder(
        CorpusConfig(
            seed=seed,
            file_scale=scale,
            size_scale=scale,
            series_names=("nginx",),
            versions_cap=1,
        )
    ).build()
    target = corpus.by_series["nginx"][0]
    cluster = Cluster(clients, bandwidth_mbps=bandwidth_mbps)
    publish_images(cluster.registry_testbed, [target], convert=True)
    egress_before = cluster.registry_egress_bytes
    begun = time.perf_counter()
    cluster.deploy_wave(
        lambda node: deploy_with_gear(node.testbed, target) and None
    )
    wall = time.perf_counter() - begun
    return SpeedReport(
        scenario="deploy_wave",
        mode="thread",
        clients=clients,
        events=cluster.last_wave_events,
        virtual_s=cluster.clock.now,
        simulated_bytes=cluster.registry_egress_bytes - egress_before,
        wall_s=wall,
    )
