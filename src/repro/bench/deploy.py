"""Deployment experiments: pull/run breakdowns for all three systems.

"The process of deploying a container has two phases: pull (i.e.,
downloading the Docker images or Gear indexes) and run (i.e., running the
container)" (§V-E).  Each helper deploys one image on a prepared testbed,
drives its startup trace, and returns a :class:`DeploymentResult` with
the phase breakdown and traffic accounting the figures need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.baselines.slacker import SlackerDriver
from repro.bench.environment import Testbed
from repro.common.clock import SimScheduler
from repro.common.errors import ClientCrash
from repro.common.hashing import fingerprint_tokens
from repro.gear.driver import GearContainer
from repro.gear.index import STUB_XATTR
from repro.gear.journal import FETCH_BEGIN
from repro.gear.prefetch import TraceRecorder
from repro.gear.recovery import RecoveryReport
from repro.net.faults import CrashPlan
from repro.workloads.corpus import GeneratedImage
from repro.workloads.tasks import task_for_category


@dataclass(frozen=True)
class DeploymentResult:
    """One container deployment, broken down by phase."""

    system: str
    reference: str
    pull_s: float
    run_s: float
    network_bytes: int
    network_requests: int
    files_fetched: int
    cache_hits: int
    #: Resilience accounting (nonzero only under a fault plan).
    retries: int = 0
    errors: int = 0
    degraded: bool = False
    #: Virtual seconds from deploy start until the startup read set was
    #: fully satisfied (the service is *ready*; the figures' ready-vs-
    #: pull-complete distinction).  Always ``<= total_s``.
    ready_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.pull_s + self.run_s


def _endpoint_stats(testbed: Testbed, *names: str):
    """Snapshot (retries, errors) summed across the named endpoints."""
    retries = 0
    errors = 0
    for name in names:
        if not testbed.transport.has_endpoint(name):
            continue
        stats = testbed.transport.endpoint(name).stats
        retries += stats.retries
        errors += stats.errors
    return retries, errors


def deploy_with_docker(
    testbed: Testbed, generated: GeneratedImage, *, destroy: bool = False
) -> DeploymentResult:
    """Vanilla Docker: download the whole image, then run the task."""
    link_log = testbed.link.log
    bytes_before = link_log.total_bytes
    requests_before = link_log.total_requests
    retries_before, errors_before = _endpoint_stats(testbed, "docker-registry")

    with testbed.clock.span(
        "deploy", system="docker", ref=generated.reference
    ):
        pull_timer = testbed.clock.timer()
        with testbed.clock.span("pull_image", ref=generated.reference):
            report = testbed.daemon.pull(generated.reference)
        pull_s = pull_timer.elapsed()

        run_timer = testbed.clock.timer()
        container = testbed.daemon.run(generated.reference)
        task = task_for_category(generated.category)
        task_begun = testbed.clock.now
        with testbed.clock.span("task", category=generated.category):
            task_result = task.run(
                testbed.clock, container.mount, generated.trace
            )
        run_s = run_timer.elapsed()
        ready_s = task_begun + task_result.ready_s - pull_timer.start
    if destroy:
        testbed.daemon.destroy_container(container)
    retries_after, errors_after = _endpoint_stats(testbed, "docker-registry")

    return DeploymentResult(
        system="docker",
        reference=generated.reference,
        pull_s=pull_s,
        run_s=run_s,
        network_bytes=link_log.total_bytes - bytes_before,
        network_requests=link_log.total_requests - requests_before,
        files_fetched=report.layers_downloaded,
        cache_hits=report.layers_reused,
        retries=retries_after - retries_before,
        errors=errors_after - errors_before,
        ready_s=ready_s,
    )


def deploy_with_gear(
    testbed: Testbed,
    generated: GeneratedImage,
    *,
    index_reference: Optional[str] = None,
    clear_cache: bool = False,
    destroy: bool = False,
) -> DeploymentResult:
    """Gear: pull the index, start, fault files in while running.

    ``clear_cache`` reproduces the paper's no-local-cache scenario ("the
    Gear's local cache is emptied before each deployment", §V-D).
    """
    reference = index_reference or _gear_reference(generated.reference)
    if clear_cache:
        testbed.gear_driver.pool.clear()
    link_log = testbed.link.log
    bytes_before = link_log.total_bytes
    requests_before = link_log.total_requests
    retries_before, errors_before = _endpoint_stats(
        testbed, "docker-registry", "gear-registry"
    )

    with testbed.clock.span("deploy", system="gear", ref=generated.reference):
        pull_timer = testbed.clock.timer()
        deploy_report = testbed.gear_driver.pull_index(reference)
        pull_s = pull_timer.elapsed()

        run_timer = testbed.clock.timer()
        container = testbed.gear_driver.create_container(reference)
        testbed.gear_driver.start_container(container)
        task = task_for_category(generated.category)
        task_begun = testbed.clock.now
        with testbed.clock.span("task", category=generated.category):
            task_result = task.run(
                testbed.clock, container.mount, generated.trace
            )
        run_s = run_timer.elapsed()
        ready_s = task_begun + task_result.ready_s - pull_timer.start
    deploy_report.ready_s = ready_s
    stats = container.mount.fault_stats
    if destroy:
        testbed.gear_driver.destroy_container(container)
    retries_after, errors_after = _endpoint_stats(
        testbed, "docker-registry", "gear-registry"
    )

    return DeploymentResult(
        system="gear",
        reference=generated.reference,
        pull_s=pull_s,
        run_s=run_s,
        network_bytes=link_log.total_bytes - bytes_before,
        network_requests=link_log.total_requests - requests_before,
        files_fetched=stats.remote_fetches,
        cache_hits=stats.cache_hits,
        retries=retries_after - retries_before,
        errors=errors_after - errors_before,
        degraded=deploy_report.degraded or stats.degraded_fetches > 0,
        ready_s=ready_s,
    )


def deploy_with_gear_overlapped(
    testbed: Testbed,
    generated: GeneratedImage,
    recorder: TraceRecorder,
    *,
    byte_budget: Optional[int] = None,
    index_reference: Optional[str] = None,
    clear_cache: bool = False,
) -> DeploymentResult:
    """Gear with trace-driven prefetch *overlapping* the startup task.

    The sequential prefetch ablation replays the profile before the task
    runs; here the profile replay and the startup trace execute as two
    concurrent scheduler processes sharing the link, so profiled files
    stream in while the container computes.  The pool's single-flight
    registry coalesces races on the same file, keeping total bytes equal
    to the demand-only deployment.

    Reuses an active scheduler when the caller runs inside one (e.g. a
    fleet wave); otherwise it attaches its own for the run phase.
    """
    reference = index_reference or _gear_reference(generated.reference)
    if clear_cache:
        testbed.gear_driver.pool.clear()
    link_log = testbed.link.log
    bytes_before = link_log.total_bytes
    requests_before = link_log.total_requests
    retries_before, errors_before = _endpoint_stats(
        testbed, "docker-registry", "gear-registry"
    )

    with testbed.clock.span(
        "deploy", system="gear+overlap", ref=generated.reference
    ):
        pull_timer = testbed.clock.timer()
        deploy_report = testbed.gear_driver.pull_index(reference)
        pull_s = pull_timer.elapsed()

        run_timer = testbed.clock.timer()
        container = testbed.gear_driver.create_container(reference)
        testbed.gear_driver.start_container(container)
        task = task_for_category(generated.category)
        profile = recorder.profile_for(reference)

        scheduler = testbed.clock.scheduler
        owns_scheduler = scheduler is None
        if owns_scheduler:
            scheduler = SimScheduler(testbed.clock)
        try:
            if profile is not None:
                testbed.gear_driver.spawn_prefetch(
                    container, profile, byte_budget=byte_budget
                )
            startup = scheduler.spawn(
                task.run,
                testbed.clock,
                container.mount,
                generated.trace,
                name=f"startup:{generated.reference}",
            )
            if owns_scheduler:
                # Drain everything (prefetch tail included) so the link
                # has no half-finished flows when the scheduler detaches.
                scheduler.run()
            else:
                startup.join()
        finally:
            if owns_scheduler:
                scheduler.close()
    # The container is "up" when its own startup task completes; a
    # prefetch tail running past that point is background warm-up.
    run_s = startup.finished_at - run_timer.start
    # Prefetch is judged against *readiness*: the metric that moves when
    # profiled files stream in ahead of demand is the instant the
    # startup read set is satisfied, not when pulling completes.
    ready_s = (
        startup.started_at + startup.result.ready_s - pull_timer.start
    )
    deploy_report.ready_s = ready_s
    stats = container.mount.fault_stats
    retries_after, errors_after = _endpoint_stats(
        testbed, "docker-registry", "gear-registry"
    )

    return DeploymentResult(
        system="gear+overlap",
        reference=generated.reference,
        pull_s=pull_s,
        run_s=run_s,
        network_bytes=link_log.total_bytes - bytes_before,
        network_requests=link_log.total_requests - requests_before,
        files_fetched=stats.remote_fetches,
        cache_hits=stats.cache_hits,
        retries=retries_after - retries_before,
        errors=errors_after - errors_before,
        degraded=deploy_report.degraded or stats.degraded_fetches > 0,
        ready_s=ready_s,
    )


@dataclass(frozen=True)
class ResumableDeployment:
    """A (possibly crash-interrupted) Gear deployment with recovery stats.

    When the armed plan never fires, ``crashed`` is False and ``result``
    is an ordinary deployment; otherwise ``result`` describes the
    *resumed* deployment that ran against the fsck-repaired store, and
    the crash/recovery fields account for everything the interruption
    cost.
    """

    #: The successful deployment (the resumed one after a crash).
    result: DeploymentResult
    crashed: bool
    crash_point: str = ""
    #: Which occurrence of the crash point fired (resolved op index).
    crash_op: int = 0
    #: Virtual time of death.
    crash_at_s: float = 0.0
    #: Virtual seconds the crashed attempt burned before dying.
    crashed_run_s: float = 0.0
    #: Wire bytes the crashed attempt consumed (work at risk).
    crashed_network_bytes: int = 0
    recovery: Optional[RecoveryReport] = None
    #: Virtual seconds the fsck pass took.
    recovery_s: float = 0.0
    #: Pool files already committed when the client died.
    committed_before_crash: int = 0
    #: Files the resumed run re-fetched although recovery had already
    #: committed them — the golden invariant demands this be zero.
    refetched_committed: int = 0
    #: Logical-content digest of the deployed container fs (golden
    #: equivalence: crash+resume must match an uncrashed control run).
    fs_digest: str = ""


def container_fs_digest(container: GearContainer) -> str:
    """Logical-content digest of a Gear container's merged filesystem.

    Stub files digest as the fingerprint their index entry promises;
    materialized files digest as the fingerprint of their actual bytes.
    Content addressing makes the two interchangeable — the digest captures
    *what the container reads*, not how lazily it arrived — so an
    uncrashed run and a crash+fsck+resume run of the same workload must
    produce identical digests, byte for byte.
    """
    return viewer_fs_digest(container.mount)


def viewer_fs_digest(viewer) -> str:
    """:func:`container_fs_digest` over a bare viewer mount.

    The chunks sweep mounts viewers without containers; chunked and
    whole-file mounts of the same fully-read image must digest
    identically (the golden chunk-equivalence invariant).
    """
    tokens = []
    for path, node in viewer.walk():
        if not node.is_file:
            tokens.append(f"{path}|{node.kind.value}")
            continue
        if STUB_XATTR in node.meta.xattrs:
            entry = viewer.index.entries.get(path)
            content = entry.identity if entry is not None else ""
        else:
            content = node.blob.fingerprint if node.blob is not None else ""
        tokens.append(f"{path}|file|{node.meta.mode:o}|{content}")
    return str(fingerprint_tokens(tokens))


def deploy_with_gear_resumable(
    testbed: Testbed,
    generated: GeneratedImage,
    plan: Optional[CrashPlan],
    *,
    index_reference: Optional[str] = None,
    clear_cache: bool = False,
) -> ResumableDeployment:
    """Deploy with Gear under a crash plan; recover and resume if it fires.

    The crash-consistency experiment in one call: arm the plan, deploy,
    and — when the injected crash kills the client mid-admission — run
    :meth:`~repro.gear.driver.GearDriver.recover` (the journal-driven
    fsck) and deploy again against the repaired store.  The resumed run
    re-fetches only identities recovery could not save; files the journal
    had committed before the crash are served from the pool.
    """
    driver = testbed.gear_driver
    reference = index_reference or _gear_reference(generated.reference)
    if clear_cache:
        driver.pool.clear()
    if plan is not None:
        driver.arm_crash(plan)
    link_log = testbed.link.log
    bytes_before = link_log.total_bytes
    crash: Optional[ClientCrash] = None
    committed_before_crash = 0
    crashed_timer = testbed.clock.timer()
    try:
        result = deploy_with_gear(
            testbed, generated, index_reference=reference
        )
    except ClientCrash as exc:
        crash = exc
        committed_before_crash = driver.pool.file_count
    finally:
        driver.disarm_crash()

    if crash is None:
        container = driver.containers()[-1]
        return ResumableDeployment(
            result=result,
            crashed=False,
            fs_digest=container_fs_digest(container),
        )

    crashed_run_s = crashed_timer.elapsed()
    crashed_network_bytes = link_log.total_bytes - bytes_before
    recovery = driver.recover()
    # Everything the repaired pool holds must survive into the resumed
    # run without touching the wire again.
    held = set(driver.pool.identities())

    result = deploy_with_gear(testbed, generated, index_reference=reference)
    # The journal was compacted by fsck, so its records are exactly the
    # resumed run's admissions.
    refetched = sum(
        1
        for record in driver.journal.records
        if record.op == FETCH_BEGIN and record.identity in held
    )
    report = driver.deploy_report(reference)
    if report is not None:
        report.crashed = True
        report.crash_point = crash.point
        report.crash_at_s = crash.at_s
        report.resumed = True
        report.recovery_s = recovery.fsck_s
        report.recovered_files = recovery.rolled_forward + recovery.salvaged
    container = driver.containers()[-1]
    return ResumableDeployment(
        result=result,
        crashed=True,
        crash_point=crash.point,
        crash_op=crash.op_index,
        crash_at_s=crash.at_s,
        crashed_run_s=crashed_run_s,
        crashed_network_bytes=crashed_network_bytes,
        recovery=recovery,
        recovery_s=recovery.fsck_s,
        committed_before_crash=committed_before_crash,
        refetched_committed=refetched,
        fs_digest=container_fs_digest(container),
    )


def deploy_with_slacker(
    driver: SlackerDriver, testbed: Testbed, generated: GeneratedImage
) -> DeploymentResult:
    """Slacker: clone a device snapshot, fetch blocks while running."""
    if not driver.has_image(generated.reference):
        driver.provision_image(generated)
    link_log = testbed.link.log
    bytes_before = link_log.total_bytes
    requests_before = link_log.total_requests

    with testbed.clock.span(
        "deploy", system="slacker", ref=generated.reference
    ):
        pull_timer = testbed.clock.timer()
        mount = driver.deploy(generated.reference)
        pull_s = pull_timer.elapsed()

        run_timer = testbed.clock.timer()
        task = task_for_category(generated.category)
        task_begun = testbed.clock.now
        with testbed.clock.span("task", category=generated.category):
            task_result = task.run(testbed.clock, mount, generated.trace)
        run_s = run_timer.elapsed()
        ready_s = task_begun + task_result.ready_s - pull_timer.start

    return DeploymentResult(
        system="slacker",
        reference=generated.reference,
        pull_s=pull_s,
        run_s=run_s,
        network_bytes=link_log.total_bytes - bytes_before,
        network_requests=link_log.total_requests - requests_before,
        files_fetched=mount.slacker_stats.files_fetched,
        cache_hits=0,
        ready_s=ready_s,
    )


def _gear_reference(reference: str) -> str:
    """Map ``name:tag`` to the converter's published index reference."""
    name, _, tag = reference.partition(":")
    return f"{name}.gear:{tag}"
