"""Registry storage comparison (Fig. 7).

For a set of images, compares the footprint of a stock Docker registry
(unique compressed layers + manifests) against the Gear side (compressed
Gear files + the index images' layers in the Docker registry).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.common.units import percent
from repro.docker.image import Image
from repro.docker.registry import DockerRegistry
from repro.gear.converter import GearConverter
from repro.gear.registry import GearRegistry
from repro.storage.disk import Disk
from repro.common.clock import SimClock
from repro.workloads.corpus import GeneratedImage


@dataclass(frozen=True)
class StorageComparison:
    """Docker-vs-Gear registry footprints for one image set."""

    label: str
    docker_bytes: int
    gear_file_bytes: int
    gear_index_bytes: int

    @property
    def gear_bytes(self) -> int:
        """Total Gear-side footprint: files plus indexes."""
        return self.gear_file_bytes + self.gear_index_bytes

    @property
    def saving_fraction(self) -> float:
        """Fractional space Gear saves over the Docker registry."""
        if self.docker_bytes == 0:
            return 0.0
        return 1.0 - self.gear_bytes / self.docker_bytes

    @property
    def index_share(self) -> float:
        """Index bytes as a fraction of the whole Gear footprint (the
        paper measures ≈1.1%)."""
        if self.gear_bytes == 0:
            return 0.0
        return self.gear_index_bytes / self.gear_bytes


def compare_storage(
    label: str, images: Sequence[GeneratedImage]
) -> StorageComparison:
    """Build fresh registries for ``images`` and report both footprints.

    Mirrors §V-C: "We build private Gear registries and Docker registries,
    and evaluate their respective storage demands" — per image series in
    Fig. 7(a), for the whole top-50 corpus in Fig. 7(b).
    """
    clock = SimClock()
    docker_registry = DockerRegistry()
    gear_registry = GearRegistry()
    converter = GearConverter(
        clock, docker_registry, gear_registry, disk=Disk(clock)
    )
    index_bytes = 0
    for generated in images:
        docker_registry.push_image(generated.image)
    docker_bytes = docker_registry.stored_bytes
    for generated in images:
        index, _ = converter.convert(generated.reference)
        index_image = index.to_image()
        index_bytes += index_image.compressed_size
    return StorageComparison(
        label=label,
        docker_bytes=docker_bytes,
        gear_file_bytes=gear_registry.stored_bytes,
        gear_index_bytes=index_bytes,
    )


def compare_storage_by_series(
    corpus_by_series: Dict[str, List[GeneratedImage]]
) -> Dict[str, StorageComparison]:
    """Fig. 7(a): one comparison per series, each in its own registries."""
    return {
        series: compare_storage(series, images)
        for series, images in corpus_by_series.items()
    }


def category_savings(
    by_series: Dict[str, StorageComparison],
    series_category: Dict[str, str],
) -> Dict[str, float]:
    """Aggregate per-series savings into per-category byte-weighted savings."""
    docker: Dict[str, int] = {}
    gear: Dict[str, int] = {}
    for series, comparison in by_series.items():
        category = series_category[series]
        docker[category] = docker.get(category, 0) + comparison.docker_bytes
        gear[category] = gear.get(category, 0) + comparison.gear_bytes
    return {
        category: 1.0 - gear[category] / docker[category]
        for category in docker
    }
