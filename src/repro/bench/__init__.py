"""Experiment harnesses regenerating the paper's tables and figures."""

from repro.bench.environment import Testbed, make_testbed
from repro.bench.storage import StorageComparison, compare_storage
from repro.bench.deploy import (
    DeploymentResult,
    deploy_with_docker,
    deploy_with_gear,
    deploy_with_slacker,
)
from repro.bench.reporting import format_table

__all__ = [
    "Testbed",
    "make_testbed",
    "StorageComparison",
    "compare_storage",
    "DeploymentResult",
    "deploy_with_docker",
    "deploy_with_gear",
    "deploy_with_slacker",
    "format_table",
]
