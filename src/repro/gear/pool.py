"""The level-1 shared file cache.

§III-D1: "The first level is a shared cache of Gear files that belong to
different Gear images at a deployment client.  Files are deduplicated
based on their fingerprints of their contents. … users can decide how
much storage it can occupy and can apply replacement algorithms on it,
such as FIFO or LRU.  Files that are not linked to Gear indexes are
candidates for replacement."

The pool stores real file *inodes*; the Gear File Viewer hard-links them
into index trees, so an inode's ``nlink`` tells the pool whether any
index still references it (nlink 1 = pool only = evictable).
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.blob import Blob
from repro.common.clock import SimEvent
from repro.common.errors import IntegrityError, StorageError
from repro.gear.gearfile import GearFile
from repro.obs.metrics import MetricSet
from repro.vfs.inode import FileKind, Inode, Metadata


class EvictionPolicy(enum.Enum):
    """Replacement policies §III-D1 suggests for the shared cache."""

    FIFO = "fifo"
    LRU = "lru"


@dataclass
class PoolStats(MetricSet):
    """Cache accounting, registrable with the metrics registry.

    The pool's historical ``pool.hits`` / ``pool.misses`` / … attributes
    remain as delegating properties, so call sites and reports read the
    same numbers wherever they look.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    eviction_failures: int = 0
    quarantines: int = 0


class PartialFile:
    """A big file being fetched chunk by chunk (the chunk-granular path).

    Owned by the pool so the node lifecycle applies: :meth:`SharedFilePool.
    clear` drops every partial along with the cache (the leak fix), and
    :func:`repro.gear.recovery.fsck` can salvage verified-present chunks
    after a crash without reaching into any viewer.

    ``present`` holds chunk indexes whose bytes are on disk *and* verified
    against the manifest; ``inflight`` maps chunk index → single-flight
    event while a fetch is in the air; ``torn`` maps chunk index → bytes a
    mid-chunk crash left on disk (recovery drops these).
    """

    __slots__ = ("blob", "fingerprints", "present", "inflight", "torn")

    def __init__(
        self, blob: Blob, fingerprints: Tuple[str, ...] = ()
    ) -> None:
        self.blob = blob
        self.fingerprints = fingerprints
        self.present: Set[int] = set()
        self.inflight: Dict[int, "SimEvent"] = {}
        self.torn: Dict[int, int] = {}

    def is_complete(self) -> bool:
        return len(self.present) == len(self.blob.chunks)

    def resident_bytes(self) -> int:
        return sum(self.blob.chunks[index].size for index in self.present)


class SharedFilePool:
    """A capacity-bounded, content-addressed cache of Gear file inodes."""

    def __init__(
        self,
        *,
        capacity_bytes: Optional[int] = None,
        policy: EvictionPolicy = EvictionPolicy.LRU,
    ) -> None:
        if capacity_bytes is not None and capacity_bytes < 0:
            raise StorageError("capacity must be non-negative")
        self.capacity_bytes = capacity_bytes
        self.policy = policy
        #: identity → inode, in insertion/recency order.
        self._inodes: "OrderedDict[str, Inode]" = OrderedDict()
        self._bytes = 0
        #: identity → inode staged by :meth:`prepare` but not yet
        #: committed — the "temp file" half of the two-phase admission.
        #: Staged entries never serve :meth:`get`, never count against
        #: capacity, and are exactly what a crash leaves torn.
        self._staged: "OrderedDict[str, Inode]" = OrderedDict()
        self.stats = PoolStats()
        #: Identities whose last download failed verification; cleared
        #: when a verified copy finally lands.
        self._quarantined: Set[str] = set()
        #: Single-flight registry: identity → SimEvent fired when the
        #: in-progress fetch lands.  Only populated under a scheduler —
        #: concurrent faults on one identity (a prefetcher racing the
        #: startup task) wait for the first fetch instead of duplicating
        #: the download.
        self.inflight: Dict[str, "SimEvent"] = {}
        #: Chunk-granular fetches in progress: identity → PartialFile.
        #: Pool-owned so :meth:`clear` cannot leak them and recovery can
        #: salvage their verified chunks (DESIGN.md §15).
        self.partials: Dict[str, PartialFile] = {}
        #: Chunk token → reference count over committed entries: the
        #: chunk-level dedup index.  A new partial pre-marks any chunk
        #: whose token is already committed, so a version-chain neighbour
        #: pays the wire only for its changed chunks.
        self._chunk_tokens: Dict[str, int] = {}

    # -- counters (delegate to the registrable stats group) -----------------

    @property
    def hits(self) -> int:
        return self.stats.hits

    @hits.setter
    def hits(self, value: int) -> None:
        self.stats.hits = value

    @property
    def misses(self) -> int:
        return self.stats.misses

    @misses.setter
    def misses(self, value: int) -> None:
        self.stats.misses = value

    @property
    def evictions(self) -> int:
        return self.stats.evictions

    @evictions.setter
    def evictions(self, value: int) -> None:
        self.stats.evictions = value

    @property
    def eviction_failures(self) -> int:
        return self.stats.eviction_failures

    @eviction_failures.setter
    def eviction_failures(self, value: int) -> None:
        self.stats.eviction_failures = value

    @property
    def quarantines(self) -> int:
        return self.stats.quarantines

    @quarantines.setter
    def quarantines(self, value: int) -> None:
        self.stats.quarantines = value

    # -- lookup ------------------------------------------------------------

    def get(self, identity: str) -> Optional[Inode]:
        """Return the cached inode, updating recency; None on miss."""
        inode = self._inodes.get(identity)
        if inode is None:
            self.misses += 1
            return None
        self.hits += 1
        if self.policy is EvictionPolicy.LRU:
            self._inodes.move_to_end(identity)
        return inode

    def contains(self, identity: str) -> bool:
        """Existence check without hit/miss or recency side effects."""
        return identity in self._inodes

    def peek(self, identity: str) -> Optional[Inode]:
        """The committed inode without hit/miss or recency side effects.

        Maintenance view for recovery and audits; the serving path uses
        :meth:`get` so cache statistics stay honest.
        """
        return self._inodes.get(identity)

    # -- insertion -----------------------------------------------------------

    def insert(self, gear_file: GearFile) -> Inode:
        """Add a fetched Gear file to the pool, evicting if needed.

        Returns the pool's inode (existing one when the identity is
        already cached — content-addressing never stores two copies).
        One-shot composition of the two-phase :meth:`prepare` +
        :meth:`commit` admission; callers that can crash between the
        halves (the Gear File Viewer) drive the phases themselves around
        journal records.
        """
        self.prepare(gear_file)
        return self.commit(gear_file.identity)

    def prepare(self, gear_file: GearFile, *, verified: bool = True) -> Inode:
        """Phase one: stage a fetched file without publishing it.

        The pool is the *shared* level-1 cache: a corrupt entry would
        poison every image on the node, so content is verified against
        its fingerprint name before it is admitted (collision-handled
        ``uid-…`` files are not fingerprint-named and are exempt).
        ``verified=False`` skips that check — it exists solely for crash
        injection, which stages the torn partial file a mid-download
        crash leaves on disk for ``fsck`` to find.

        Staged entries are invisible to :meth:`get` and free of capacity
        accounting until :meth:`commit`; :meth:`abort` (or recovery)
        discards them.
        """
        identity = gear_file.identity
        if verified and not identity.startswith("uid-") and (
            gear_file.blob.fingerprint != identity
        ):
            raise IntegrityError(
                f"refusing to cache {identity!r}: content hashes "
                f"to {gear_file.blob.fingerprint!r}"
            )
        existing = self._inodes.get(identity)
        if existing is not None:
            return existing
        staged = self._staged.get(identity)
        if staged is not None:
            return staged
        inode = Inode(
            FileKind.FILE,
            meta=Metadata(mode=0o644),
            blob=gear_file.blob,
        )
        self._staged[identity] = inode
        return inode

    def commit(self, identity: str) -> Inode:
        """Phase two: publish a staged entry into the cache proper."""
        self._quarantined.discard(identity)
        existing = self._inodes.get(identity)
        if existing is not None:
            self._staged.pop(identity, None)
            if self.policy is EvictionPolicy.LRU:
                self._inodes.move_to_end(identity)
            return existing
        inode = self._staged.pop(identity, None)
        if inode is None:
            raise StorageError(f"commit without prepare: {identity!r}")
        self._make_room(inode.size)
        self._inodes[identity] = inode
        self._bytes += inode.size
        self._index_chunks(inode)
        return inode

    def _index_chunks(self, inode: Inode) -> None:
        if inode.blob is None:
            return
        for chunk in inode.blob.chunks:
            token = chunk.token
            self._chunk_tokens[token] = self._chunk_tokens.get(token, 0) + 1

    def _unindex_chunks(self, inode: Inode) -> None:
        if inode.blob is None:
            return
        for chunk in inode.blob.chunks:
            token = chunk.token
            count = self._chunk_tokens.get(token, 0) - 1
            if count <= 0:
                self._chunk_tokens.pop(token, None)
            else:
                self._chunk_tokens[token] = count

    def has_chunk(self, token: str) -> bool:
        """Is a chunk with this content token held by any committed file?"""
        return token in self._chunk_tokens

    def abort(self, identity: str) -> None:
        """Discard a staged entry (failed or torn admission)."""
        self._staged.pop(identity, None)

    def is_staged(self, identity: str) -> bool:
        """Is ``identity`` staged but not yet committed?"""
        return identity in self._staged

    def staged_items(self) -> Iterator[tuple]:
        """Snapshot of staged ``(identity, inode)`` pairs, oldest first."""
        return iter(list(self._staged.items()))

    @property
    def staged_count(self) -> int:
        return len(self._staged)

    def _make_room(self, incoming: int) -> None:
        if self.capacity_bytes is None:
            return
        while self._bytes + incoming > self.capacity_bytes:
            victim = self._pick_victim()
            if victim is None:
                # Everything is pinned by index links; exceed capacity
                # rather than corrupt live images.
                self.eviction_failures += 1
                return
            self._evict(victim)

    def _pick_victim(self) -> Optional[str]:
        """Oldest unpinned entry (nlink 1 means only the pool holds it)."""
        for identity, inode in self._inodes.items():
            if inode.nlink <= 1:
                return identity
        return None

    def _evict(self, identity: str) -> None:
        inode = self._inodes.pop(identity)
        self._bytes -= inode.size
        self._unindex_chunks(inode)
        self.evictions += 1

    # -- management ------------------------------------------------------------

    def drop(self, identity: str) -> None:
        """Forcibly remove an entry (tests and cache-clearing scenarios)."""
        if identity in self._inodes:
            self._evict(identity)
            self.evictions -= 1  # administrative removal, not pressure

    def quarantine(self, identity: str) -> None:
        """Record a failed verification and purge any cached copy.

        Called by the viewer when a download for ``identity`` arrived
        corrupt; a later verified :meth:`insert` lifts the quarantine.
        """
        self.quarantines += 1
        self._quarantined.add(identity)
        self.drop(identity)

    def is_quarantined(self, identity: str) -> bool:
        return identity in self._quarantined

    def clear(self) -> None:
        """Empty the cache (the paper's no-local-cache scenario, §V-D).

        A cleared node starts from *nothing*: staged (uncommitted)
        entries, quarantine records, and in-flight fetch markers are all
        discarded along with the cached files.  Pending single-flight
        events are fired first so any process waiting on one re-checks
        the (now empty) cache instead of blocking forever.
        """
        self._inodes.clear()
        self._bytes = 0
        self._staged.clear()
        self._quarantined.clear()
        for event in list(self.inflight.values()):
            event.fire()
        self.inflight.clear()
        for partial in self.partials.values():
            for event in list(partial.inflight.values()):
                event.fire()
            partial.inflight.clear()
        self.partials.clear()
        self._chunk_tokens.clear()

    def reset_stats(self) -> None:
        """Zero every counter, including quarantine/eviction-failure ones."""
        self.stats.reset()

    @property
    def used_bytes(self) -> int:
        return self._bytes

    @property
    def file_count(self) -> int:
        return len(self._inodes)

    def identities(self) -> Iterator[str]:
        return iter(self._inodes.keys())

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __contains__(self, identity: str) -> bool:
        return identity in self._inodes

    def __len__(self) -> int:
        return len(self._inodes)

    def __repr__(self) -> str:
        cap = self.capacity_bytes if self.capacity_bytes is not None else "∞"
        return (
            f"SharedFilePool(files={len(self._inodes)}, bytes={self._bytes}, "
            f"capacity={cap}, policy={self.policy.value})"
        )
