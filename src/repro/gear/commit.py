"""Committing Gear containers to new Gear images.

§III-D2: "If we want to commit the container as an image, Gear File
Viewer first extracts the files' contents in 'diff' directory to
construct Gear files.  Then, Gear File Viewer combines the metadata of
newly added files with the Gear index of current image to build a new
Gear index.  Finally, Gear pushes the new Gear index and newly added Gear
files belonging to the new image to Docker Registry and Gear Registry,
respectively."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.blob import Blob
from repro.docker.daemon import DockerDaemon
from repro.gear.driver import GearContainer
from repro.gear.gearfile import GearFile
from repro.gear.index import GearFileEntry, GearIndex, STUB_MAGIC, STUB_XATTR
from repro.gear.registry import GearRegistry
from repro.net.transport import RpcTransport
from repro.vfs.inode import FileKind


@dataclass
class CommitReport:
    """What a commit produced and pushed."""

    reference: str
    new_gear_files: int = 0
    uploaded_gear_files: int = 0
    uploaded_bytes: int = 0
    index_pushed: bool = False


def commit_container(
    container: GearContainer,
    name: str,
    tag: str,
    *,
    daemon: DockerDaemon,
    transport: RpcTransport,
) -> Tuple[GearIndex, CommitReport]:
    """Build and publish a new Gear image from a container's diff."""
    report = CommitReport(reference=f"{name}:{tag}")

    # 1. Extract Gear files from the writable diff.
    new_files: Dict[str, GearFile] = {}
    diff_entries: Dict[str, GearFileEntry] = {}
    for path, node in container.mount.upper.walk("/", include_whiteouts=True):
        if node.is_file and not node.is_whiteout:
            assert node.blob is not None
            gear_file = GearFile.from_blob(node.blob)
            new_files[gear_file.identity] = gear_file
            diff_entries[path] = GearFileEntry(
                path=path,
                identity=gear_file.identity,
                size=node.blob.size,
                mode=node.meta.mode,
            )
    report.new_gear_files = len(new_files)

    # 2. Merge the diff over the current index: build the committed tree
    #    (stubs for old content, stubs for new content) by cloning the
    #    index tree and applying the diff's structure.
    merged_tree = container.index.stub_tree()
    merged_entries = dict(container.index.entries)
    _apply_diff(merged_tree, merged_entries, container, diff_entries)

    new_index = GearIndex(
        name, tag, merged_tree, merged_entries, container.index.config
    )

    # 3. Push: only Gear files the registry lacks travel, then the index
    #    image goes through the ordinary Docker push path.
    for identity, gear_file in sorted(new_files.items()):
        present = transport.call(
            GearRegistry.ENDPOINT_NAME, "query", identity,
            label=f"commit-query:{identity[:12]}",
        )
        if present:
            continue
        transport.call(
            GearRegistry.ENDPOINT_NAME, "upload", gear_file,
            request_payload_bytes=gear_file.compressed_size,
            label=f"commit-upload:{identity[:12]}",
        )
        report.uploaded_gear_files += 1
        report.uploaded_bytes += gear_file.compressed_size

    index_image = new_index.to_image()
    daemon.add_local_image(index_image)
    daemon.push(index_image.reference)
    report.index_pushed = True
    return new_index, report


def _apply_diff(
    merged_tree,
    merged_entries: Dict[str, GearFileEntry],
    container: GearContainer,
    diff_entries: Dict[str, GearFileEntry],
) -> None:
    """Overlay the container diff onto the cloned index tree/entries."""
    upper = container.mount.upper
    for path, node in upper.walk("/", include_whiteouts=True):
        if node.is_whiteout:
            if merged_tree.exists(path, follow_symlinks=False):
                merged_tree.remove(path, recursive=True)
            _drop_subtree_entries(merged_entries, path)
            continue
        if node.is_dir:
            created = merged_tree.mkdir(path, parents=True, exist_ok=True)
            created.meta = node.meta.copy()
            if node.opaque:
                for child in list(merged_tree.listdir(path)):
                    from repro.vfs import paths as _paths

                    child_path = _paths.join(path, child)
                    merged_tree.remove(child_path, recursive=True)
                    _drop_subtree_entries(merged_entries, child_path)
        elif node.is_symlink:
            if merged_tree.exists(path, follow_symlinks=False):
                merged_tree.remove(path, recursive=True)
            assert node.symlink_target is not None
            merged_tree.symlink(path, node.symlink_target, meta=node.meta.copy())
            merged_entries.pop(path, None)
        elif node.is_file:
            entry = diff_entries[path]
            meta = node.meta.copy()
            meta.xattrs[STUB_XATTR] = "1"
            if merged_tree.exists(path, follow_symlinks=False):
                merged_tree.remove(path, recursive=True)
            merged_tree.write_file(
                path,
                Blob.from_text(entry.stub_content()),
                meta=meta,
                parents=True,
            )
            merged_entries[path] = entry


def _drop_subtree_entries(
    entries: Dict[str, GearFileEntry], prefix: str
) -> None:
    doomed = [p for p in entries if p == prefix or p.startswith(prefix + "/")]
    for path in doomed:
        del entries[path]
