"""Crash recovery for the client-side Gear store.

Production lazy-loading systems treat crash recovery of the local cache
as table stakes ("On-demand Container Loading in AWS Lambda") and rely on
content addressing to make it cheap: every uncommitted entry can be
re-verified against the name it claims, so recovery never has to guess.
:func:`fsck` is that pass for the paper's three-level store (§III-D1):
it replays the intent journal, classifies every torn state the crash
taxonomy (DESIGN.md §9) allows, and repairs the pool, the index trees,
and their hard-link counts in place.

Invariants on return:

1. the pool holds no staged entries and no in-flight markers — every
   uncommitted admission was promoted (content verified) or dropped;
2. no index path carries an open link intent — every interrupted link
   was rolled forward (content verified, commit record written) or
   rolled back to a pristine stub;
3. every committed pool inode's ``nlink`` equals one pool reference plus
   its live index links, so eviction pinning is exact again;
4. the journal is compacted to empty.

Verification is paid for in virtual time (:data:`VERIFY_BPS` hash
throughput plus disk scan costs), which is what the recovery-time
benchmark (`benchmarks/bench_ext_crash.py`) measures.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Iterable, Optional

from repro.blob import Blob, chunk_fingerprint
from repro.common.clock import SimClock
from repro.common.errors import NotFoundError
from repro.gear.index import GearIndex, STUB_XATTR
from repro.gear.journal import IntentJournal
from repro.gear.pool import SharedFilePool
from repro.storage.disk import Disk
from repro.vfs.inode import Inode
from repro.vfs.tree import FileSystemTree

#: Fingerprint re-hash throughput during recovery (bytes/second of
#: virtual time).  MD5 over cached files streams from the page cache at
#: memory-bus-ish speed; the disk scan cost is charged separately.
VERIFY_BPS = 1.2e9


@dataclass
class RecoveryReport:
    """What one :func:`fsck` pass found and repaired."""

    #: Journal records present when recovery started.
    journal_records: int = 0
    open_fetches: int = 0
    open_links: int = 0
    #: Staged entries the journal had already committed — promoted after
    #: re-verification (classic write-ahead redo).
    rolled_forward: int = 0
    #: Staged entries with only an open fetch intent whose bytes were
    #: nevertheless intact — promoted without re-fetching a single byte.
    salvaged: int = 0
    #: Staged entries whose content failed re-verification (torn partial
    #: writes) — dropped; the identity must be fetched again on resume.
    torn_dropped: int = 0
    torn_bytes: int = 0
    #: Bytes promoted into the pool without touching the network.
    recovered_bytes: int = 0
    #: Open links whose physical hard link was present and verified —
    #: journal rolled forward.
    links_repaired: int = 0
    #: Open links rolled back to a pristine stub (content mismatch or
    #: pool no longer holds the identity).
    links_rolled_back: int = 0
    #: Rolled-back links whose pool entry had vanished (dangling link).
    dangling_links: int = 0
    #: Committed inodes whose ``nlink`` disagreed with the live link
    #: census and were corrected.
    nlink_fixes: int = 0
    #: Single-flight markers cleared (their fetches died with the client).
    inflight_cleared: int = 0
    #: Partial big files (chunk-granular fetches in progress) examined.
    partial_files: int = 0
    #: Verified-present chunks of partials kept across the crash — a
    #: resumed deployment re-fetches none of them.
    chunks_salvaged: int = 0
    chunk_bytes_salvaged: int = 0
    #: Chunks a mid-fetch crash left torn (or that failed re-verification)
    #: — dropped from the partial; resume re-fetches exactly these.
    torn_chunks_dropped: int = 0
    diff_entries_scanned: int = 0
    #: Stub-marked entries found in writable diffs (never legal) dropped.
    diff_stubs_dropped: int = 0
    #: Bytes re-hashed during verification.
    verify_bytes: int = 0
    #: Journal records dropped by the post-recovery compaction.
    compacted_records: int = 0
    #: Virtual seconds the pass took (verification + disk scan).
    fsck_s: float = 0.0

    @property
    def repairs(self) -> int:
        """Total state transitions the pass performed."""
        return (
            self.rolled_forward
            + self.salvaged
            + self.torn_dropped
            + self.links_repaired
            + self.links_rolled_back
            + self.nlink_fixes
            + self.diff_stubs_dropped
            + self.torn_chunks_dropped
        )

    def as_dict(self) -> dict:
        """Plain-dict view for JSON reports (deterministic key set)."""
        return asdict(self)


def _content_matches(identity: str, inode: Inode) -> bool:
    """Does the inode's content hash to the identity it claims?

    Collision-handled ``uid-…`` files opted out of fingerprint naming
    (§III-B); they cannot be re-verified by name, so recovery trusts
    their journal records instead.
    """
    if identity.startswith("uid-"):
        return True
    return inode.blob is not None and inode.blob.fingerprint == identity


def fsck(
    pool: SharedFilePool,
    indexes: Iterable[GearIndex],
    diffs: Iterable[FileSystemTree],
    journal: IntentJournal,
    *,
    clock: Optional[SimClock] = None,
    disk: Optional[Disk] = None,
) -> RecoveryReport:
    """Classify and repair every torn state a client crash left behind.

    ``indexes`` are the node's live level-2 trees, ``diffs`` any
    surviving level-3 writable layers (a stopped container's diff
    outlives its process).  Time is charged on ``clock`` for content
    re-verification and on ``disk`` for the scan when either is given.
    """
    report = RecoveryReport()
    indexes = list(indexes)
    start_s = clock.now if clock is not None else 0.0
    tracer = clock.tracer if clock is not None else None
    fsck_span = tracer.begin("fsck") if tracer is not None else None

    state = journal.replay()
    report.journal_records = len(journal)
    report.open_fetches = len(state.open_fetches)
    report.open_links = len(state.open_links)

    # 1. Single-flight markers die with the client.  Fire them so any
    # surviving waiter (a sibling process on a shared scheduler) re-reads
    # the pool instead of waiting on a fetch that will never land.
    for identity in sorted(pool.inflight):
        pool.inflight[identity].fire()
        report.inflight_cleared += 1
    pool.inflight.clear()

    # 2. Staged admissions: re-verify and promote, or drop as torn.
    for identity, inode in pool.staged_items():
        report.verify_bytes += inode.size
        if _content_matches(identity, inode):
            pool.commit(identity)
            report.recovered_bytes += inode.size
            if identity in state.committed_fetches:
                report.rolled_forward += 1
            else:
                report.salvaged += 1
        else:
            pool.abort(identity)
            report.torn_dropped += 1
            report.torn_bytes += inode.size

    # 2b. Partial big files: single-flight chunk claims die with the
    # client; the chunk a mid-fetch crash tore is dropped; every chunk
    # marked present is re-verified against its manifest fingerprint and
    # salvaged, so a resumed deployment re-fetches zero verified chunks.
    for identity in sorted(pool.partials):
        partial = pool.partials[identity]
        report.partial_files += 1
        for event in list(partial.inflight.values()):
            event.fire()
            report.inflight_cleared += 1
        partial.inflight.clear()
        for chunk_index in sorted(partial.torn):
            partial.present.discard(chunk_index)
            report.torn_chunks_dropped += 1
            report.torn_bytes += partial.torn[chunk_index]
        partial.torn.clear()
        for chunk_index in sorted(partial.present):
            chunk = partial.blob.chunks[chunk_index]
            report.verify_bytes += chunk.size
            expected = (
                partial.fingerprints[chunk_index]
                if chunk_index < len(partial.fingerprints)
                else None
            )
            if expected is None or chunk_fingerprint(chunk) == expected:
                report.chunks_salvaged += 1
                report.chunk_bytes_salvaged += chunk.size
            else:
                partial.present.discard(chunk_index)
                report.torn_chunks_dropped += 1

    # 3. Interrupted links: roll forward when the physical link landed
    # intact, roll back to a pristine stub otherwise.
    index_by_reference = {index.reference: index for index in indexes}
    for record in state.open_links:
        index = index_by_reference.get(record.reference or "")
        if index is None:
            continue  # image removed since the crash; nothing to repair
        assert record.path is not None
        entry = index.entries.get(record.path)
        if entry is None:
            continue
        try:
            node = index.tree.stat(record.path, follow_symlinks=False)
        except NotFoundError:
            continue
        if STUB_XATTR in node.meta.xattrs:
            continue  # intent never materialized; compaction closes it
        report.verify_bytes += node.size
        if _content_matches(record.identity, node) and pool.contains(
            record.identity
        ):
            report.links_repaired += 1
            continue
        if not pool.contains(record.identity):
            report.dangling_links += 1
        meta = node.meta.copy()
        meta.xattrs[STUB_XATTR] = "1"
        # write_file drops the old entry's link (nlink decrement) and
        # restores the stub content the published index carried.
        index.tree.write_file(
            record.path, Blob.from_text(entry.stub_content()), meta=meta
        )
        report.links_rolled_back += 1

    # 4. nlink census: one pool reference plus every live index link.
    expected: Dict[int, int] = {}
    inode_for: Dict[int, Inode] = {}
    for identity in pool.identities():
        inode = pool.peek(identity)
        assert inode is not None
        expected[id(inode)] = 1
        inode_for[id(inode)] = inode
    for index in indexes:
        for _, node in index.tree.iter_files():
            if id(node) in expected:
                expected[id(node)] += 1
    for key, count in expected.items():
        inode = inode_for[key]
        if inode.nlink != count:
            inode.nlink = count
            report.nlink_fixes += 1

    # 5. Writable diffs never hold stubs; a stub-marked entry there is a
    # torn copy-up and is dropped (the read path re-faults from level 2).
    for diff in diffs:
        for path, node in list(diff.iter_files()):
            report.diff_entries_scanned += 1
            if STUB_XATTR in node.meta.xattrs:
                diff.remove(path)
                report.diff_stubs_dropped += 1

    # 6. Pay for the pass, then compact the resolved journal.
    if disk is not None:
        ops = report.open_links + pool.file_count + report.inflight_cleared
        disk.read(report.verify_bytes, file_ops=max(1, ops), label="fsck-scan")
    if clock is not None:
        clock.advance(report.verify_bytes / VERIFY_BPS, "fsck-verify")
    report.compacted_records = journal.compact()
    if clock is not None:
        report.fsck_s = clock.now - start_s
    if fsck_span is not None:
        tracer.end(fsck_span.annotate(verify_bytes=report.verify_bytes))
    return report
