"""Gear files: content-addressed regular files."""

from __future__ import annotations

from dataclasses import dataclass

from repro.blob import Blob
from repro.blob.compressibility import blob_compressed_size


@dataclass(frozen=True)
class GearFile:
    """One regular file extracted from an image, named by its fingerprint.

    "These regular files are converted to Gear files by naming (or
    identifying) them by the fingerprints of the corresponding regular
    files" (§III-B).  ``identity`` is the MD5 fingerprint, or a unique ID
    when collision handling disabled dedup for this file.
    """

    identity: str
    blob: Blob

    @classmethod
    def from_blob(cls, blob: Blob) -> "GearFile":
        return cls(identity=blob.fingerprint, blob=blob)

    @property
    def size(self) -> int:
        return self.blob.size

    @property
    def compressed_size(self) -> int:
        """Stored size in the registry ("Gear files can be further
        compressed for higher space efficiency", §III-C)."""
        return blob_compressed_size(self.blob)

    def __repr__(self) -> str:
        return f"GearFile({self.identity[:12]}, {self.size}B)"
