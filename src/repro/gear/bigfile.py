"""Chunk-granular lazy reads for big files (the paper's future work).

§VII: "In the future, we plan to enable Gear to read big files on demand
in chunks to better accelerate containers that need to download big
files, such as AI containers with big models."

:class:`ChunkedGearFileViewer` extends the Gear File Viewer with a
``read_range`` path: files above ``big_file_threshold`` are fetched chunk
by chunk, so a container that touches only part of a big file (a model
header, an index page) downloads only those chunks.  Whole-file reads
of big files still work — they fetch all chunks — and small files use the
ordinary whole-file fault path untouched.

The chunk path carries the same fault-tolerance guarantees as the
whole-file path (DESIGN.md §15):

* **Per-chunk integrity.**  The registry's ``chunk_map`` response is a
  :class:`~repro.gear.registry.ChunkManifest` whose per-chunk
  fingerprints form a trusted root; every ``download_chunk`` response is
  verified against its manifest fingerprint before it is marked present.
  Bad chunks are quarantined (never stored) and re-fetched under the
  viewer's :class:`~repro.net.resilience.RetryPolicy`; exhausting the
  policy raises a typed
  :class:`~repro.common.errors.ChunkIntegrityError`.  Promotion to the
  shared pool re-verifies the assembled whole-file fingerprint.

* **Bounded-memory parallelism.**  Under a scheduler, chunks covering a
  range are fetched concurrently, bounded by an
  :class:`~repro.net.resilience.AdmissionGate` sized from
  ``chunk_buffer_bytes``.  A full gate degrades to the sequential path
  (counted, never an error).  Fetches are single-flight per
  ``(identity, chunk index)``: concurrent ``read_range`` callers wait on
  the in-flight fetch instead of duplicating wire bytes.

* **Crash consistency.**  Each chunk fetch is bracketed by
  ``chunk-begin`` / ``chunk-commit`` intent-journal records; partials
  live in the shared pool (:attr:`SharedFilePool.partials`) so recovery
  can salvage verified chunks and drop the one torn mid-fetch, and
  ``pool.clear()`` cannot leak them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.blob import DEFAULT_CHUNK_SIZE, chunk_fingerprint
from repro.blob.compressibility import chunk_compressed_size
from repro.common.clock import SimEvent
from repro.common.errors import (
    ChunkIntegrityError,
    GearError,
    IntegrityError,
    NotFoundError,
)
from repro.common.units import MiB
from repro.gear.gearfile import GearFile
from repro.gear.index import STUB_XATTR
from repro.gear.pool import PartialFile
from repro.gear.registry import ChunkManifest, GearRegistry
from repro.gear.viewer import GearFileViewer
from repro.net.faults import CrashPoint
from repro.net.resilience import AdmissionGate, RetryPolicy
from repro.obs.metrics import MetricSet

#: Default in-flight chunk buffer for the parallel pipeline: enough for
#: eight default-size chunks before the gate degrades to sequential.
DEFAULT_CHUNK_BUFFER_BYTES = 8 * DEFAULT_CHUNK_SIZE


@dataclass
class ChunkFetchStats(MetricSet):
    """Accounting for the chunk-granular path (metrics group ``chunk``)."""

    range_reads: int = 0
    chunks_fetched: int = 0
    chunk_bytes_fetched: int = 0
    whole_files_avoided: int = 0
    #: Chunks pre-marked present because an already-committed pool file
    #: holds identical content (chunk-level dedup, Table II).
    chunks_deduped: int = 0
    chunk_dedup_bytes: int = 0
    #: ``download_chunk`` responses that failed fingerprint verification.
    chunk_integrity_failures: int = 0
    #: Re-fetches issued after quarantining a corrupt chunk.
    chunk_refetches: int = 0
    #: Callers that waited on another caller's in-flight fetch.
    coalesced_waits: int = 0
    #: Wire fetches that completed for a chunk already present — zero
    #: whenever single-flight coalescing works.
    duplicate_chunk_fetches: int = 0
    #: Parallel dispatches degraded to inline fetches by a full gate.
    sequential_fallbacks: int = 0
    #: Chunks fetched by spawned pipeline workers.
    parallel_fetches: int = 0
    #: Completed partials promoted into the shared pool.
    promotions: int = 0


#: Backwards-compatible aliases: the stats group under its metrics name,
#: and the partial-file record now owned by the pool.
ChunkStats = ChunkFetchStats
_PartialFile = PartialFile


class ChunkedGearFileViewer(GearFileViewer):
    """A Gear File Viewer with partial-read support for big files."""

    def __init__(
        self,
        *args,
        big_file_threshold: int = 4 * MiB,
        chunk_retry: Optional[RetryPolicy] = None,
        chunk_buffer_bytes: int = DEFAULT_CHUNK_BUFFER_BYTES,
        chunk_stats: Optional[ChunkFetchStats] = None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if big_file_threshold <= 0:
            raise GearError("big_file_threshold must be positive")
        if chunk_buffer_bytes <= 0:
            raise GearError("chunk_buffer_bytes must be positive")
        self.big_file_threshold = big_file_threshold
        self.chunk_retry = (
            chunk_retry
            if chunk_retry is not None
            else RetryPolicy(seed="chunk-retry")
        )
        self.chunk_buffer_bytes = chunk_buffer_bytes
        #: In-flight buffer bound, in chunk slots: the pipeline never
        #: holds more unlinked chunk bytes than the buffer allows.
        self._gate = AdmissionGate(
            capacity=max(1, chunk_buffer_bytes // DEFAULT_CHUNK_SIZE)
        )
        #: Shared with every chunked viewer on the node when the driver
        #: passes its own instance (so the ``chunk`` metrics group sees
        #: node-wide traffic); per-mount otherwise.
        self.chunk_stats = (
            chunk_stats if chunk_stats is not None else ChunkFetchStats()
        )

    @property
    def _partials(self) -> Dict[str, PartialFile]:
        """Partial big files, owned by the pool (node lifecycle applies)."""
        return self.pool.partials

    # -- the partial-read path ------------------------------------------

    def read_range(self, path: str, offset: int, length: int) -> int:
        """Read ``length`` bytes at ``offset``; returns bytes now readable.

        Small files (or already-materialized ones) take the normal fault
        path.  Big stub files fetch only the chunks covering the range.
        """
        if offset < 0 or length < 0:
            raise ValueError("offset and length must be non-negative")
        node, resolved = self._resolve(path)
        if not node.is_file:
            raise GearError(f"{path!r} is not a regular file")
        index_path = "/" + "/".join(resolved)
        entry = self.index.entries.get(index_path)
        is_stub = STUB_XATTR in node.meta.xattrs
        if not is_stub or entry is None or entry.size < self.big_file_threshold:
            blob = self.read_blob(path)
            return min(length, max(0, blob.size - offset))

        identity = entry.identity
        with self._span(
            "range_read", fp=identity[:12], offset=offset, length=length
        ):
            self.chunk_stats.range_reads += 1
            partial = self._get_partial(identity)
            if partial is None:
                # A concurrent reader finished the whole file while we
                # waited for its manifest: serve it like any cached file.
                blob = self.read_blob(path)
                return min(length, max(0, blob.size - offset))
            self._fetch_span(identity, partial, offset, length)
            if partial.is_complete():
                self._promote(index_path, identity, partial)
            return min(length, max(0, partial.blob.size - offset))

    # -- manifest / partial bootstrap -----------------------------------

    def _get_partial(self, identity: str) -> Optional[PartialFile]:
        """The partial for ``identity``, creating it from the manifest.

        Manifest fetches are single-flight per identity; ``None`` means
        the file became fully resident while this caller waited.
        """
        map_key = f"chunk-map:{identity}"
        while True:
            partial = self.pool.partials.get(identity)
            if partial is not None:
                return partial
            if self.pool.contains(identity):
                return None
            pending = self.pool.inflight.get(map_key)
            if pending is None:
                break
            self.chunk_stats.coalesced_waits += 1
            pending.wait()
        announce: Optional[SimEvent] = None
        if self.clock is not None and self.clock.scheduler is not None:
            announce = SimEvent(self.clock)
            self.pool.inflight[map_key] = announce
        try:
            manifest = self._chunk_manifest(identity)
            partial = PartialFile(manifest.blob, manifest.fingerprints)
            self._dedup_present(partial)
            self.pool.partials[identity] = partial
            self.chunk_stats.whole_files_avoided += 1
            return partial
        finally:
            if announce is not None:
                if self.pool.inflight.get(map_key) is announce:
                    del self.pool.inflight[map_key]
                announce.fire()

    def _chunk_manifest(self, identity: str) -> ChunkManifest:
        if self.transport is None:
            raise NotFoundError(f"no registry transport for {identity!r}")
        # Chunk map request: tiny metadata describing the blob's chunks
        # plus the per-chunk fingerprints chunk verification trusts.  The
        # transport checksum protects it (corruption of framed metadata
        # is always detected and retried at the transport layer).
        return self.transport.call(
            GearRegistry.ENDPOINT_NAME,
            "chunk_map",
            identity,
            label=f"gear-chunkmap:{identity[:10]}",
        )

    def _dedup_present(self, partial: PartialFile) -> None:
        """Pre-mark chunks whose content a committed pool file already has.

        A version-chain neighbour of an already-deployed big file then
        pays the wire only for its changed chunks — the chunk-level dedup
        gap of Table II, applied to lazy loading.
        """
        for index, chunk in enumerate(partial.blob.chunks):
            if self.pool.has_chunk(chunk.token):
                partial.present.add(index)
                self.chunk_stats.chunks_deduped += 1
                self.chunk_stats.chunk_dedup_bytes += chunk.size

    # -- chunk fetching --------------------------------------------------

    def _covering_chunks(self, partial: PartialFile, offset: int, length: int) -> List[int]:
        wanted: List[int] = []
        position = 0
        end = offset + length
        for chunk_index, chunk in enumerate(partial.blob.chunks):
            chunk_start = position
            position += chunk.size
            if position <= offset or chunk_start >= end:
                continue
            wanted.append(chunk_index)
        return wanted

    def _fetch_span(
        self, identity: str, partial: PartialFile, offset: int, length: int
    ) -> None:
        missing = [
            index
            for index in self._covering_chunks(partial, offset, length)
            if index not in partial.present
        ]
        if not missing:
            return
        scheduler = self.clock.scheduler if self.clock is not None else None
        if scheduler is not None and len(missing) > 1:
            self._fetch_parallel(identity, partial, missing)
        else:
            for chunk_index in missing:
                self._fetch_chunk(identity, partial, chunk_index)

    def _fetch_parallel(
        self, identity: str, partial: PartialFile, missing: List[int]
    ) -> None:
        """The bounded pipeline: fetch range-covering chunks concurrently.

        Each chunk is claimed single-flight, admitted through the buffer
        gate, and fetched by a spawned worker; a full gate degrades that
        chunk to an inline sequential fetch (counted, never an error).
        """
        scheduler = self.clock.scheduler
        waits: List[SimEvent] = []
        errors: List[BaseException] = []
        for chunk_index in missing:
            if chunk_index in partial.present:
                continue
            pending = partial.inflight.get(chunk_index)
            if pending is not None:
                self.chunk_stats.coalesced_waits += 1
                waits.append(pending)
                continue
            self._chunk_crash_checkpoint(identity, partial, chunk_index)
            if not self._gate.try_enter():
                self.chunk_stats.sequential_fallbacks += 1
                self._fetch_chunk(
                    identity, partial, chunk_index, check_crash=False
                )
                continue
            announce = SimEvent(self.clock)
            partial.inflight[chunk_index] = announce
            waits.append(announce)
            scheduler.spawn(
                self._chunk_worker,
                identity,
                partial,
                chunk_index,
                announce,
                errors,
                name=f"chunk:{identity[:10]}:{chunk_index}",
            )
        for event in waits:
            event.wait()
        if errors:
            raise errors[0]
        # A fired event does not guarantee a landed chunk (the waited-on
        # fetch may have lost its node to ``pool.clear()``); anything
        # still missing is re-fetched inline.
        for chunk_index in missing:
            if chunk_index not in partial.present:
                self._fetch_chunk(identity, partial, chunk_index)

    def _chunk_worker(
        self,
        identity: str,
        partial: PartialFile,
        chunk_index: int,
        announce: SimEvent,
        errors: List[BaseException],
    ) -> None:
        try:
            self._fetch_chunk_claimed(identity, partial, chunk_index)
            self.chunk_stats.parallel_fetches += 1
        except BaseException as exc:  # noqa: BLE001 — relayed to caller
            errors.append(exc)
        finally:
            self._gate.exit()
            if partial.inflight.get(chunk_index) is announce:
                del partial.inflight[chunk_index]
            announce.fire()

    def _fetch_chunk(
        self,
        identity: str,
        partial: PartialFile,
        chunk_index: int,
        *,
        check_crash: bool = True,
    ) -> None:
        """Fetch one chunk inline, honouring single-flight claims."""
        while True:
            if chunk_index in partial.present:
                return
            pending = partial.inflight.get(chunk_index)
            if pending is None:
                break
            self.chunk_stats.coalesced_waits += 1
            pending.wait()
        announce: Optional[SimEvent] = None
        if self.clock is not None and self.clock.scheduler is not None:
            announce = SimEvent(self.clock)
            partial.inflight[chunk_index] = announce
        try:
            if check_crash:
                self._chunk_crash_checkpoint(identity, partial, chunk_index)
            self._fetch_chunk_claimed(identity, partial, chunk_index)
        finally:
            if announce is not None:
                if partial.inflight.get(chunk_index) is announce:
                    del partial.inflight[chunk_index]
                announce.fire()

    def _fetch_chunk_claimed(
        self, identity: str, partial: PartialFile, chunk_index: int
    ) -> None:
        """Download, verify, journal, and store one claimed chunk."""
        if chunk_index in partial.present:
            return
        if self.transport is None:
            raise NotFoundError(
                f"chunk {chunk_index} of {identity!r} not cached and no "
                f"registry transport"
            )
        chunk = partial.blob.chunks[chunk_index]
        expected = (
            partial.fingerprints[chunk_index]
            if chunk_index < len(partial.fingerprints)
            else None
        )
        policy = self.chunk_retry
        attempt = 1
        backoff: Optional[float] = None
        started_s = self.clock.now if self.clock is not None else 0.0
        if self.journal is not None:
            self.journal.chunk_begin(identity, chunk_index)
        while True:
            with self._span(
                "chunk_fetch", fp=identity[:12], chunk=chunk_index
            ):
                payload = self.transport.call(
                    GearRegistry.ENDPOINT_NAME,
                    "download_chunk",
                    identity,
                    chunk_index,
                    label=f"gear-chunk:{identity[:10]}:{chunk_index}",
                )
            if chunk_index in partial.present:
                # Single-flight failed us (should never happen): the wire
                # was paid twice for the same chunk.  Surface it in stats
                # rather than silently overwriting verified bytes.
                self.chunk_stats.duplicate_chunk_fetches += 1
                return
            self.chunk_stats.chunks_fetched += 1
            self.chunk_stats.chunk_bytes_fetched += chunk_compressed_size(
                payload
            )
            with self._span(
                "chunk_verify", fp=identity[:12], chunk=chunk_index
            ):
                verified = (
                    expected is None or chunk_fingerprint(payload) == expected
                )
            if verified:
                break
            # Corrupt chunk that slid past the wire checksum: quarantine
            # it (never store unverified bytes), tell an HA-aware
            # transport the replica lied, and re-fetch under the policy.
            self.chunk_stats.chunk_integrity_failures += 1
            notify = getattr(self.transport, "report_corrupt_payload", None)
            if notify is not None:
                notify(identity)
            elapsed_s = (
                self.clock.now - started_s if self.clock is not None else 0.0
            )
            give_up = attempt >= policy.max_attempts
            if policy.deadline_s is not None and elapsed_s >= policy.deadline_s:
                give_up = True
            if policy.budget_s is not None and policy.spent_s >= policy.budget_s:
                give_up = True
            if give_up:
                self.pool.quarantine(identity)
                self.pool.partials.pop(identity, None)
                raise ChunkIntegrityError(
                    f"chunk {chunk_index} of {identity!r} failed "
                    f"verification {attempt} time(s): content hashes to "
                    f"{chunk_fingerprint(payload)!r}, expected {expected!r}",
                    identity=identity,
                    chunk_index=chunk_index,
                )
            backoff = policy.next_backoff(backoff)
            policy.charge(backoff)
            if self.clock is not None:
                self.clock.advance(
                    backoff, f"chunk-backoff:{identity[:10]}:{chunk_index}"
                )
            attempt += 1
            self.chunk_stats.chunk_refetches += 1
        if self.disk is not None:
            self.disk.write(chunk.size, label="chunk-store")
        if self.journal is not None:
            self.journal.chunk_commit(identity, chunk_index)
        partial.torn.pop(chunk_index, None)
        partial.present.add(chunk_index)

    def _chunk_crash_checkpoint(
        self, identity: str, partial: PartialFile, chunk_index: int
    ) -> None:
        """Die mid-chunk if the armed crash plan says so.

        Reuses the whole-file ``MID_FETCH`` checkpoint (the crash sweep
        iterates the ``CrashPoint`` members; a chunk-only member would
        never fire on whole-file runs).  Charges ``partial_fraction`` of
        the chunk transfer and records the torn chunk on the partial so
        ``fsck`` drops exactly that chunk and salvages the rest.
        """
        crash = self.crash
        if crash is None or not crash.take(CrashPoint.MID_FETCH):
            return
        # The fetch intent hits the journal before any bytes move, so the
        # mid-wire death leaves an *open* chunk record for replay to see.
        if self.journal is not None:
            self.journal.chunk_begin(identity, chunk_index)
        chunk = partial.blob.chunks[chunk_index]
        partial_bytes = int(chunk.size * crash.plan.partial_fraction)
        if self.transport is not None and partial_bytes > 0:
            link = self.transport.link
            link.clock.advance(
                link.transfer_time(partial_bytes),
                f"crash-partial-chunk:{identity[:10]}:{chunk_index}",
            )
        partial.torn[chunk_index] = partial_bytes
        crash.fire(CrashPoint.MID_FETCH)

    # -- promotion --------------------------------------------------------

    def _promote(
        self, index_path: str, identity: str, partial: PartialFile
    ) -> None:
        """All chunks arrived: install the file like a whole-file fault.

        The assembled blob is re-verified against the whole-file
        fingerprint before pool admission — per-chunk verification plus a
        correct manifest makes this structural, but a wrong manifest must
        not let an unverified assembly into the *shared* cache.
        """
        if self.pool.partials.get(identity) is not partial:
            return  # a concurrent reader already promoted it
        gear_file = GearFile(identity=identity, blob=partial.blob)
        if not identity.startswith("uid-") and (
            gear_file.blob.fingerprint != identity
        ):
            self.pool.quarantine(identity)
            del self.pool.partials[identity]
            raise IntegrityError(
                f"assembled big file {identity!r} failed verification: "
                f"content hashes to {gear_file.blob.fingerprint!r}"
            )
        with self._span("promote", fp=identity[:12]):
            if self.journal is not None:
                self.journal.fetch_begin(identity)
            self.pool.prepare(gear_file)
            if self.journal is not None:
                self.journal.fetch_commit(identity)
            inode = self.pool.commit(identity)
            if self.journal is not None:
                self.journal.link_begin(
                    identity, index_path, self.index.reference
                )
            self.index.tree.link_inode(index_path, inode, replace=True)
            if self.disk is not None:
                self.disk.metadata_op(1, label="index-link", deferred=True)
            self.fault_stats.linked_bytes += inode.size
            if self.journal is not None:
                self.journal.link_commit(
                    identity, index_path, self.index.reference
                )
        del self.pool.partials[identity]
        self.chunk_stats.promotions += 1

    # -- accounting -------------------------------------------------------

    def partial_resident_bytes(self, identity: str) -> int:
        """Bytes of a partially-fetched big file currently resident."""
        partial = self.pool.partials.get(identity)
        if partial is None:
            return 0
        return partial.resident_bytes()
