"""Chunk-granular lazy reads for big files (the paper's future work).

§VII: "In the future, we plan to enable Gear to read big files on demand
in chunks to better accelerate containers that need to download big
files, such as AI containers with big models."

:class:`ChunkedGearFileViewer` extends the Gear File Viewer with a
``read_range`` path: files above ``big_file_threshold`` are fetched chunk
by chunk, so a container that touches only part of a big file (a model
header, an index page) downloads only those chunks.  Whole-file reads
of big files still work — they fetch all chunks — and small files use the
ordinary whole-file fault path untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Set, Tuple

from repro.blob import Blob
from repro.blob.compressibility import chunk_compressed_size
from repro.common.errors import GearError, NotFoundError
from repro.common.units import MiB
from repro.gear.gearfile import GearFile
from repro.gear.index import STUB_XATTR
from repro.gear.registry import GearRegistry
from repro.gear.viewer import GearFileViewer
from repro.vfs.inode import Inode


@dataclass
class ChunkFetchStats:
    """Accounting for the chunk-granular path."""

    range_reads: int = 0
    chunks_fetched: int = 0
    chunk_bytes_fetched: int = 0
    whole_files_avoided: int = 0


class _PartialFile:
    """A big file being fetched chunk by chunk."""

    __slots__ = ("blob", "present")

    def __init__(self, blob: Blob) -> None:
        self.blob = blob
        self.present: Set[int] = set()

    def is_complete(self) -> bool:
        return len(self.present) == len(self.blob.chunks)


class ChunkedGearFileViewer(GearFileViewer):
    """A Gear File Viewer with partial-read support for big files."""

    def __init__(self, *args, big_file_threshold: int = 4 * MiB, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if big_file_threshold <= 0:
            raise GearError("big_file_threshold must be positive")
        self.big_file_threshold = big_file_threshold
        self.chunk_stats = ChunkFetchStats()
        self._partials: Dict[str, _PartialFile] = {}

    # -- the partial-read path ------------------------------------------

    def read_range(self, path: str, offset: int, length: int) -> int:
        """Read ``length`` bytes at ``offset``; returns bytes now readable.

        Small files (or already-materialized ones) take the normal fault
        path.  Big stub files fetch only the chunks covering the range.
        """
        if offset < 0 or length < 0:
            raise ValueError("offset and length must be non-negative")
        node, resolved = self._resolve(path)
        if not node.is_file:
            raise GearError(f"{path!r} is not a regular file")
        index_path = "/" + "/".join(resolved)
        entry = self.index.entries.get(index_path)
        is_stub = STUB_XATTR in node.meta.xattrs
        if not is_stub or entry is None or entry.size < self.big_file_threshold:
            blob = self.read_blob(path)
            return min(length, max(0, blob.size - offset))

        self.chunk_stats.range_reads += 1
        partial = self._partials.get(entry.identity)
        if partial is None:
            blob = self._remote_blob(entry.identity)
            partial = _PartialFile(blob)
            self._partials[entry.identity] = partial
            self.chunk_stats.whole_files_avoided += 1
        self._fetch_span(entry.identity, partial, offset, length)
        if partial.is_complete():
            self._promote(index_path, entry.identity, partial)
        return min(length, max(0, partial.blob.size - offset))

    def _fetch_span(
        self, identity: str, partial: _PartialFile, offset: int, length: int
    ) -> None:
        position = 0
        end = offset + length
        for chunk_index, chunk in enumerate(partial.blob.chunks):
            chunk_start = position
            position += chunk.size
            if position <= offset or chunk_start >= end:
                continue
            if chunk_index in partial.present:
                continue
            if self.transport is None:
                raise NotFoundError(
                    f"chunk {chunk_index} of {identity!r} not cached and no "
                    f"registry transport"
                )
            self.transport.call(
                GearRegistry.ENDPOINT_NAME,
                "download_chunk",
                identity,
                chunk_index,
                label=f"gear-chunk:{identity[:10]}:{chunk_index}",
            )
            partial.present.add(chunk_index)
            self.chunk_stats.chunks_fetched += 1
            self.chunk_stats.chunk_bytes_fetched += chunk_compressed_size(chunk)
            if self.disk is not None:
                self.disk.write(chunk.size, label="chunk-store")

    def _promote(self, index_path: str, identity: str, partial: _PartialFile) -> None:
        """All chunks arrived: install the file like a whole-file fault."""
        gear_file = GearFile(identity=identity, blob=partial.blob)
        inode = self.pool.insert(gear_file)
        self.index.tree.link_inode(index_path, inode, replace=True)
        self.fault_stats.linked_bytes += inode.size
        del self._partials[identity]

    def _remote_blob(self, identity: str) -> Blob:
        if self.transport is None:
            raise NotFoundError(f"no registry transport for {identity!r}")
        # Chunk map request: tiny metadata describing the blob's chunks.
        blob = self.transport.call(
            GearRegistry.ENDPOINT_NAME,
            "chunk_map",
            identity,
            label=f"gear-chunkmap:{identity[:10]}",
        )
        return blob

    def partial_resident_bytes(self, identity: str) -> int:
        """Bytes of a partially-fetched big file currently resident."""
        partial = self._partials.get(identity)
        if partial is None:
            return 0
        return sum(
            partial.blob.chunks[index].size for index in partial.present
        )
