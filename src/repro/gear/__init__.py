"""The Gear image format and framework (the paper's contribution).

A **Gear image** is a :class:`~repro.gear.index.GearIndex` — the image's
directory tree with every regular file replaced by an MD5 fingerprint
entry — plus the set of :class:`~repro.gear.gearfile.GearFile` objects
those fingerprints name (§III-B).  The index travels as a single-layer
Docker image through the unmodified Docker path; Gear files live in a
content-addressed :class:`~repro.gear.registry.GearRegistry` and are
fetched on demand.

Components, mirroring Fig. 3:

* :class:`~repro.gear.converter.GearConverter` — builds Gear images from
  Docker images, registry-side;
* :class:`~repro.gear.registry.GearRegistry` — stores Gear files (query /
  upload / download);
* :class:`~repro.gear.driver.GearDriver` — client framework deploying Gear
  containers over the three-level storage structure (§III-D1);
* :class:`~repro.gear.viewer.GearFileViewer` — the Overlay2-based union
  mount that faults regular files in through the shared cache or the
  registry (§III-D2);
* :class:`~repro.gear.pool.SharedFilePool` — the level-1 shared cache with
  FIFO/LRU replacement.
"""

from repro.gear.converter import ConversionReport, GearConverter
from repro.gear.driver import GearContainer, GearDeployReport, GearDriver
from repro.gear.gearfile import GearFile
from repro.gear.index import GearFileEntry, GearIndex
from repro.gear.journal import IntentJournal, JournalRecord
from repro.gear.pool import EvictionPolicy, SharedFilePool
from repro.gear.recovery import RecoveryReport, fsck
from repro.gear.registry import GearRegistry
from repro.gear.viewer import GearFileViewer

__all__ = [
    "ConversionReport",
    "GearConverter",
    "GearContainer",
    "GearDeployReport",
    "GearDriver",
    "GearFile",
    "GearFileEntry",
    "GearIndex",
    "IntentJournal",
    "JournalRecord",
    "EvictionPolicy",
    "SharedFilePool",
    "RecoveryReport",
    "fsck",
    "GearRegistry",
    "GearFileViewer",
]
