"""Fingerprint collision analysis and handling.

§III-B: fingerprints are MD5 hashes of file contents.  The design assumes
collisions are practically impossible (eq. 1 bounds the probability below
disk-error rates), but provides a fallback: "we can detect the collision
by comparing file contents after a fingerprint match occurs during the
conversion phase.  Each file involved in a collision is assigned a unique
ID, which is used in the Gear index to take the place of the fingerprint."
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Tuple

from repro.blob import Blob
from repro.common.hashing import Fingerprint

#: Bits in an MD5 fingerprint (the ``m`` of eq. 1).
MD5_BITS = 128


def collision_probability_bound(n_files: int, bits: int = MD5_BITS) -> float:
    """Birthday-paradox bound of eq. 1: ``p <= n(n-1)/2 * 2^-m``.

    For the ~5e10 deduplicated files of a Docker-Hub-scale registry this
    is ~5e-18 — orders of magnitude below disk error rates (1e-12..1e-15).
    """
    if n_files < 0:
        raise ValueError(f"file count must be non-negative, got {n_files}")
    if bits <= 0:
        raise ValueError(f"bit width must be positive, got {bits}")
    return n_files * (n_files - 1) / 2.0 / 2.0**bits


class CollisionTracker:
    """Detects fingerprint collisions during conversion and issues IDs.

    On every (fingerprint, content) registration the tracker compares the
    new content's chunk identity against what the fingerprint already
    names.  A mismatch is a collision: both files receive unique IDs that
    replace the fingerprint in Gear indexes.  Disabling dedup for the
    colliding files "does not compromise the scheme's correctness".
    """

    def __init__(self) -> None:
        self._known: Dict[Fingerprint, Tuple[str, ...]] = {}
        self._unique_ids = itertools.count(1)
        self.collisions_detected = 0

    def register(self, blob: Blob) -> Tuple[str, bool]:
        """Register content; return ``(identity, collided)``.

        ``identity`` is the fingerprint normally, or a fresh unique ID
        when the content collides with different content already seen
        under the same fingerprint.
        """
        fingerprint = blob.fingerprint
        signature = tuple(blob.chunk_tokens())
        existing = self._known.get(fingerprint)
        if existing is None:
            self._known[fingerprint] = signature
            return fingerprint, False
        if existing == signature:
            return fingerprint, False
        self.collisions_detected += 1
        unique = f"uid-{next(self._unique_ids):08d}-{fingerprint.short(8)}"
        return unique, True

    @property
    def tracked_count(self) -> int:
        return len(self._known)
