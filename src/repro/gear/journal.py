"""A write-ahead intent journal for client-side Gear file admission.

The paper's three-level local store (§III-D1) assumes the client never
dies between "file fetched" and "file hard-linked into the index".
Production lazy loaders cannot: a node crash mid-deployment must leave a
store that is *classifiable* — every torn state distinguishable from a
healthy one — or recovery degenerates to wiping the cache.  This module
provides the classification substrate: a tiny append-only journal of
admission intents, written by the Gear File Viewer around each two-phase
pool insert and index hard-link.

Record grammar (two two-phase operations):

* ``fetch-begin identity`` / ``fetch-commit identity`` — bracket one
  admission into the shared file pool (download → staged → committed);
* ``link-begin identity path reference`` / ``link-commit …`` — bracket
  one hard-link of a pool file over an index stub;
* ``chunk-begin identity index`` / ``chunk-commit identity index`` —
  bracket one chunk-granular fetch into a partial big file (the chunk
  index rides in the record's ``path`` field as a decimal string).

Appends cost nothing on the virtual clock: journal records are tiny and
ride the same write stream as the data they describe, so the journaled
path is byte-identical in time to the unjournaled seed behaviour.  The
journal's value is purely at recovery time, when
:func:`repro.gear.recovery.fsck` replays it to classify every torn state
(DESIGN.md §9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.common.clock import SimClock
from repro.obs.metrics import MetricSet

#: Record type tags (the ``op`` field of a :class:`JournalRecord`).
FETCH_BEGIN = "fetch-begin"
FETCH_COMMIT = "fetch-commit"
LINK_BEGIN = "link-begin"
LINK_COMMIT = "link-commit"
CHUNK_BEGIN = "chunk-begin"
CHUNK_COMMIT = "chunk-commit"


@dataclass(frozen=True)
class JournalRecord:
    """One appended intent or commit record."""

    seq: int
    op: str
    identity: str
    at_s: float
    #: Index-tree path (link records only).
    path: Optional[str] = None
    #: Index reference the link belongs to (link records only).
    reference: Optional[str] = None


@dataclass
class JournalStats(MetricSet):
    """Journal write accounting (registrable with the metrics registry)."""

    #: Total records ever appended (survives compaction).
    appends: int = 0
    #: Completed compaction passes.
    compactions: int = 0


@dataclass
class JournalState:
    """The replayed view of a journal: what is open, what is promised."""

    #: Identities with a ``fetch-begin`` not followed by ``fetch-commit``,
    #: in first-begin order.
    open_fetches: List[str] = field(default_factory=list)
    #: Identities with at least one ``fetch-commit`` record.
    committed_fetches: Set[str] = field(default_factory=set)
    #: ``link-begin`` records with no matching ``link-commit`` (matched by
    #: ``(reference, path)``), in begin order.
    open_links: List[JournalRecord] = field(default_factory=list)
    #: ``(identity, chunk_index)`` pairs with a ``chunk-begin`` not
    #: followed by ``chunk-commit``, in first-begin order — the chunks a
    #: crash may have left torn inside a partial big file.
    open_chunks: List[Tuple[str, int]] = field(default_factory=list)
    #: identity → chunk indexes with at least one ``chunk-commit``.
    committed_chunks: Dict[str, Set[int]] = field(default_factory=dict)


class IntentJournal:
    """An append-only, replayable journal of admission intents.

    One journal per client node (the :class:`~repro.gear.driver.GearDriver`
    owns it); every viewer mounted on that node writes through it.  The
    journal survives the crash by construction — records are appended
    *before* the state transitions they describe — so
    :func:`~repro.gear.recovery.fsck` can always tell an interrupted
    admission from a completed one.
    """

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock
        self.records: List[JournalRecord] = []
        self.stats = JournalStats()
        self._seq = 0

    @property
    def appended(self) -> int:
        """Total records ever appended (survives :meth:`compact`)."""
        return self.stats.appends

    @property
    def compactions(self) -> int:
        """Completed compaction passes."""
        return self.stats.compactions

    # -- appends -----------------------------------------------------------

    def _append(
        self,
        op: str,
        identity: str,
        path: Optional[str] = None,
        reference: Optional[str] = None,
    ) -> JournalRecord:
        record = JournalRecord(
            seq=self._seq,
            op=op,
            identity=identity,
            at_s=self.clock.now if self.clock is not None else 0.0,
            path=path,
            reference=reference,
        )
        self._seq += 1
        self.stats.appends += 1
        self.records.append(record)
        return record

    def fetch_begin(self, identity: str) -> JournalRecord:
        """Record the intent to admit ``identity`` into the pool."""
        return self._append(FETCH_BEGIN, identity)

    def fetch_commit(self, identity: str) -> JournalRecord:
        """Record that ``identity``'s bytes are complete and verified."""
        return self._append(FETCH_COMMIT, identity)

    def link_begin(
        self, identity: str, path: str, reference: str
    ) -> JournalRecord:
        """Record the intent to hard-link ``identity`` over a stub."""
        return self._append(LINK_BEGIN, identity, path=path, reference=reference)

    def link_commit(
        self, identity: str, path: str, reference: str
    ) -> JournalRecord:
        """Record that the hard link at ``path`` is fully placed."""
        return self._append(LINK_COMMIT, identity, path=path, reference=reference)

    def chunk_begin(self, identity: str, chunk_index: int) -> JournalRecord:
        """Record the intent to fetch one chunk of a partial big file."""
        return self._append(CHUNK_BEGIN, identity, path=str(chunk_index))

    def chunk_commit(self, identity: str, chunk_index: int) -> JournalRecord:
        """Record that a chunk's bytes are on disk and verified."""
        return self._append(CHUNK_COMMIT, identity, path=str(chunk_index))

    # -- replay ------------------------------------------------------------

    def replay(self) -> JournalState:
        """Fold the record stream into open/committed/orphaned sets."""
        state = JournalState()
        fetch_open: Dict[str, bool] = {}
        links_open: Dict[Tuple[str, str], JournalRecord] = {}
        chunks_open: Dict[Tuple[str, int], bool] = {}
        for record in self.records:
            if record.op == FETCH_BEGIN:
                fetch_open[record.identity] = True
            elif record.op == FETCH_COMMIT:
                fetch_open[record.identity] = False
                state.committed_fetches.add(record.identity)
            elif record.op == LINK_BEGIN:
                assert record.reference is not None and record.path is not None
                links_open[(record.reference, record.path)] = record
            elif record.op == LINK_COMMIT:
                assert record.reference is not None and record.path is not None
                links_open.pop((record.reference, record.path), None)
            elif record.op == CHUNK_BEGIN:
                assert record.path is not None
                chunks_open[(record.identity, int(record.path))] = True
            elif record.op == CHUNK_COMMIT:
                assert record.path is not None
                key = (record.identity, int(record.path))
                chunks_open[key] = False
                state.committed_chunks.setdefault(record.identity, set()).add(
                    key[1]
                )
        state.open_fetches = [
            identity for identity, is_open in fetch_open.items() if is_open
        ]
        state.open_links = sorted(links_open.values(), key=lambda r: r.seq)
        state.open_chunks = [
            key for key, is_open in chunks_open.items() if is_open
        ]
        return state

    # -- maintenance -------------------------------------------------------

    def compact(self) -> int:
        """Drop every record (recovery resolved them all); return count.

        Called by :func:`~repro.gear.recovery.fsck` once every open
        intent has been rolled forward or rolled back — a compacted
        journal plus a clean store is the post-recovery steady state.
        """
        dropped = len(self.records)
        self.records.clear()
        self.stats.compactions += 1
        return dropped

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return (
            f"IntentJournal(records={len(self.records)}, "
            f"appended={self.appended})"
        )
