"""The Gear Driver: client-side deployment of Gear containers.

Implements the three-level storage structure of §III-D1:

* level 1 — a :class:`~repro.gear.pool.SharedFilePool` of Gear files
  shared by every image on the node;
* level 2 — live Gear index trees, one per deployed image;
* level 3 — per-container writable "diff" trees.

Deploying a container pulls only the (tiny) index image through the stock
Docker daemon, instantiates the index at level 2, and mounts a
:class:`~repro.gear.viewer.GearFileViewer` over it; Gear files arrive on
demand during the run phase.  "It decouples life cycles of container
instances, images, and Gear files": deleting a container drops only its
level-3 diff; deleting an image drops its level-2 index while its files
stay cached at level 1 for other images.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.clock import Process, SimClock
from repro.common.errors import GearError, NotFoundError, ReproError
from repro.gear.bigfile import ChunkedGearFileViewer, ChunkFetchStats
from repro.docker.container import ContainerState
from repro.docker.daemon import (
    CONTAINER_DESTROY_BASE_S,
    CONTAINER_START_COST_S,
    INODE_TEARDOWN_COST_S,
    DockerDaemon,
)
from repro.docker.image import Image
from repro.gear.gearfile import GearFile
from repro.gear.index import GearFileEntry, GearIndex, STUB_XATTR
from repro.gear.journal import IntentJournal
from repro.gear.pool import SharedFilePool
from repro.gear.prefetch import StartupProfile, replay_profile
from repro.gear.recovery import RecoveryReport, fsck
from repro.gear.viewer import GearFileViewer
from repro.net.faults import CrashInjector, CrashPlan
from repro.net.transport import RpcTransport
from repro.vfs.tree import FileSystemTree

_gear_container_ids = itertools.count(1)

#: Suffix the converter appends to index image names; the degraded path
#: strips it to find the original image in the Docker registry.
_GEAR_SUFFIX = ".gear"


@dataclass
class GearDeployReport:
    """Cost breakdown of one Gear container deployment.

    The degradation fields are filled in *after* deploy returns: lazy
    faults happen during the run phase, and the driver keeps the report
    per reference so the degraded path can record itself on it.
    """

    reference: str
    pull_s: float = 0.0
    index_bytes: int = 0
    index_reused: bool = False
    #: Virtual seconds from deploy start until the startup read set was
    #: fully satisfied (time-to-ready).  Filled in after the run phase —
    #: like the degradation fields, readiness happens while the task is
    #: already executing, so the bench helpers record it on the report
    #: the driver keeps per reference.
    ready_s: float = 0.0
    #: True once any file was served through the degraded path.
    degraded: bool = False
    #: Files served by falling back to a regular Docker layer pull.
    degraded_fetches: int = 0
    #: Virtual seconds spent pulling the original image for fallback.
    fallback_pull_s: float = 0.0
    #: True when an injected crash killed a deployment of this reference.
    crashed: bool = False
    #: Which crash point fired ("" when not crashed).
    crash_point: str = ""
    #: Virtual time of death.
    crash_at_s: float = 0.0
    #: True when this deployment ran against a recovered (post-fsck) store.
    resumed: bool = False
    #: Virtual seconds the recovery pass took before this deployment.
    recovery_s: float = 0.0
    #: Staged files recovery promoted without re-fetching (rolled forward
    #: plus salvaged).
    recovered_files: int = 0


class GearContainer:
    """A container whose root filesystem is a Gear File Viewer mount."""

    def __init__(self, index: GearIndex, viewer: GearFileViewer) -> None:
        self.id = f"gctr-{next(_gear_container_ids):06d}"
        self.index = index
        self.mount = viewer
        self.state = ContainerState.CREATED

    @property
    def config(self):
        return self.index.config

    @property
    def rootfs(self) -> GearFileViewer:
        return self.mount

    def start(self) -> None:
        if self.state not in (ContainerState.CREATED, ContainerState.STOPPED):
            raise GearError(f"cannot start container in state {self.state.value}")
        self.state = ContainerState.RUNNING

    def stop(self) -> None:
        if self.state is not ContainerState.RUNNING:
            raise GearError(f"cannot stop container in state {self.state.value}")
        self.state = ContainerState.STOPPED

    def __repr__(self) -> str:
        return f"GearContainer({self.id}, {self.index.reference!r}, {self.state.value})"


class GearDriver:
    """Deploys and manages Gear containers on one client node."""

    def __init__(
        self,
        clock: SimClock,
        daemon: DockerDaemon,
        transport: RpcTransport,
        *,
        pool: Optional[SharedFilePool] = None,
        journal: Optional[IntentJournal] = None,
    ) -> None:
        self.clock = clock
        self.daemon = daemon
        self.transport = transport
        self.pool = pool if pool is not None else SharedFilePool()
        #: The node's write-ahead intent journal; every viewer mounted by
        #: this driver records admissions through it (DESIGN.md §9).
        self.journal = journal if journal is not None else IntentJournal(clock)
        #: Armed crash injector (crash-consistency experiments only).
        self.crash: Optional[CrashInjector] = None
        #: Node-wide chunk-path accounting, shared by every chunked
        #: viewer this driver mounts (the ``chunk`` metrics group).
        self.chunk_stats = ChunkFetchStats()
        #: The report of the most recent :meth:`recover` pass.
        self.last_recovery: Optional[RecoveryReport] = None
        #: Level 2: one live index per deployed image reference.
        self._indexes: Dict[str, GearIndex] = {}
        self._containers: Dict[str, GearContainer] = {}
        #: Latest deploy report per reference (degradations land here).
        self._reports: Dict[str, GearDeployReport] = {}
        #: Flattened original-image trees pulled by the degraded path.
        self._fallback_trees: Dict[str, FileSystemTree] = {}

    # -- image-level operations ------------------------------------------

    def pull_index(self, reference: str) -> GearDeployReport:
        """Pull the index image and set up level 2 for it."""
        report = GearDeployReport(reference=reference)
        if reference in self._indexes:
            report.index_reused = True
            self._reports[reference] = report
            return report
        timer = self.clock.timer()
        with self.clock.span("pull_index", ref=reference) as span:
            pull = self.daemon.pull(reference)
            image = self.daemon.get_image(reference)
            if not image.gear_index:
                raise GearError(
                    f"{reference!r} is a regular image; use the Docker daemon "
                    f"to deploy it, or convert it to a Gear image first"
                )
            index = GearIndex.from_image(image)
            self._indexes[reference] = index
            span.annotate(bytes=pull.bytes_downloaded)
        report.pull_s = timer.elapsed()
        report.index_bytes = pull.bytes_downloaded
        self._reports[reference] = report
        return report

    def deploy_report(self, reference: str) -> Optional[GearDeployReport]:
        """The most recent deploy report for ``reference`` (if any)."""
        return self._reports.get(reference)

    def get_index(self, reference: str) -> GearIndex:
        try:
            return self._indexes[reference]
        except KeyError:
            raise NotFoundError(f"gear image not deployed: {reference!r}") from None

    def remove_image(self, reference: str) -> None:
        """Drop the level-2 index; cached files stay shareable at level 1.

        Unlinks the index's materialized files so the pool sees their
        ``nlink`` drop back — files "not linked to Gear indexes are
        candidates for replacement".
        """
        index = self._indexes.pop(reference, None)
        if index is None:
            raise NotFoundError(f"gear image not deployed: {reference!r}")
        for _, node in index.tree.iter_files():
            if STUB_XATTR not in node.meta.xattrs:
                node.nlink -= 1
        if self.daemon.has_image(reference):
            self.daemon.remove_image(reference)

    def images(self) -> List[str]:
        return sorted(self._indexes)

    # -- container-level operations -----------------------------------------

    def create_container(
        self,
        reference: str,
        *,
        chunked: bool = False,
        big_file_threshold: Optional[int] = None,
    ) -> GearContainer:
        """Mount a viewer over the image's index and a fresh diff.

        ``chunked=True`` mounts a
        :class:`~repro.gear.bigfile.ChunkedGearFileViewer` instead, so
        files above ``big_file_threshold`` fault in chunk by chunk
        through ``read_range``; its chunk counters land on the driver's
        shared :attr:`chunk_stats`.
        """
        index = self.get_index(reference)
        kwargs = dict(
            transport=self.transport,
            disk=self.daemon.disk,
            fallback=self._make_fallback(reference),
            journal=self.journal,
            crash=self.crash,
        )
        if chunked:
            if big_file_threshold is not None:
                kwargs["big_file_threshold"] = big_file_threshold
            viewer: GearFileViewer = ChunkedGearFileViewer(
                index, self.pool, chunk_stats=self.chunk_stats, **kwargs
            )
        else:
            viewer = GearFileViewer(index, self.pool, **kwargs)
        container = GearContainer(index, viewer)
        self._containers[container.id] = container
        return container

    # -- crash consistency -------------------------------------------------

    def arm_crash(self, plan: CrashPlan) -> CrashInjector:
        """Arm a crash plan: the next matching admission kills the client.

        Containers created while armed carry the injector; the crash
        surfaces as :class:`~repro.common.errors.ClientCrash` out of
        whatever read triggered the fatal fault, leaving pool, journal,
        and index state exactly as they were at that instant.
        """
        self.crash = CrashInjector(self.clock, plan)
        return self.crash

    def disarm_crash(self) -> Optional[CrashInjector]:
        """Detach the injector (fired or not); returns it for inspection."""
        injector, self.crash = self.crash, None
        return injector

    def recover(self) -> RecoveryReport:
        """The client restarted after a crash: fsck the local store.

        Running containers died with the process — they come back
        ``STOPPED``, keeping their level-3 diffs (which survive on disk
        and are audited by the pass).  The pool, the live indexes, their
        hard-link counts, and the journal are repaired in place; the
        returned report is also kept as :attr:`last_recovery` so deploy
        reports can cite it.
        """
        for container in self._containers.values():
            if container.state is ContainerState.RUNNING:
                container.stop()
        diffs = [
            container.mount.upper for container in self._containers.values()
        ]
        report = fsck(
            self.pool,
            list(self._indexes.values()),
            diffs,
            self.journal,
            clock=self.clock,
            disk=self.daemon.disk,
        )
        self.last_recovery = report
        return report

    # -- degraded mode -----------------------------------------------------

    def _make_fallback(self, reference: str):
        """Degraded-mode fetcher for viewers mounted from ``reference``.

        When the Gear registry is unreachable past the retry budget, the
        remaining files are pulled as a *regular layer pull* through the
        Docker registry (which the fault plan may leave healthy — the
        two registries are distinct services even when co-located).  The
        whole original image is pulled once, flattened, and then serves
        every later degraded fault locally; files already cached in the
        shared pool keep being served stale without any network at all.
        """
        base_reference = self._base_reference(reference)
        if base_reference is None:
            return None

        def fetch(entry: GearFileEntry) -> Optional[GearFile]:
            tree = self._fallback_trees.get(reference)
            if tree is None:
                timer = self.clock.timer()
                try:
                    self.daemon.pull(base_reference)
                    tree = self.daemon.get_image(base_reference).flatten()
                except ReproError:
                    # Docker registry is down too (or the original image
                    # was deleted after conversion): nothing we can do.
                    return None
                self._fallback_trees[reference] = tree
                report = self._reports.get(reference)
                if report is not None:
                    report.fallback_pull_s += timer.elapsed()
            try:
                blob = tree.read_blob(entry.path)
            except ReproError:
                return None
            report = self._reports.get(reference)
            if report is not None:
                report.degraded = True
                report.degraded_fetches += 1
            return GearFile(identity=entry.identity, blob=blob)

        return fetch

    @staticmethod
    def _base_reference(reference: str) -> Optional[str]:
        """Map an index reference back to its original image reference."""
        name, _, tag = reference.partition(":")
        if not name.endswith(_GEAR_SUFFIX) or not tag:
            return None
        return f"{name[: -len(_GEAR_SUFFIX)]}:{tag}"

    def start_container(self, container: GearContainer) -> None:
        # The label carries no container id: ids come from a global
        # counter, and id-bearing labels would break byte-identical
        # double runs (the trace-determinism gate).
        with self.clock.span("start", ref=container.index.reference):
            self.clock.advance(CONTAINER_START_COST_S, "container-start")
        container.start()

    def deploy(
        self,
        reference: str,
        *,
        profile: Optional[StartupProfile] = None,
        byte_budget: Optional[int] = None,
        chunked: bool = False,
        big_file_threshold: Optional[int] = None,
    ) -> "tuple[GearContainer, GearDeployReport]":
        """The full §III-D flow: pull index, mount, start.

        Gear files are *not* fetched here — that is the whole point; they
        fault in lazily as the workload touches them.  With a startup
        ``profile`` (and an active scheduler) a background prefetcher is
        spawned right after start, so profiled files stream in while the
        container's own workload runs.
        """
        report = self.pull_index(reference)
        container = self.create_container(
            reference, chunked=chunked, big_file_threshold=big_file_threshold
        )
        self.start_container(container)
        if profile is not None:
            self.spawn_prefetch(container, profile, byte_budget=byte_budget)
        return container, report

    def spawn_prefetch(
        self,
        container: GearContainer,
        profile: StartupProfile,
        *,
        byte_budget: Optional[int] = None,
    ) -> Process:
        """Replay ``profile`` through the container's mount concurrently.

        Requires a :class:`~repro.common.clock.SimScheduler` attached to
        the clock; returns the background process so callers can join it
        (its ``result`` is the :class:`~repro.gear.prefetch.PrefetchReport`).
        Downloads overlap the startup trace — concurrent faults on the
        same file coalesce through the pool's single-flight registry.
        """
        scheduler = self.clock.scheduler
        if scheduler is None:
            raise GearError(
                "spawn_prefetch needs an active SimScheduler on the clock; "
                "use Prefetcher.prefetch for the sequential (blocking) path"
            )
        if byte_budget is not None:
            profile = profile.head_by_bytes(byte_budget)
        return scheduler.spawn(
            replay_profile,
            container.mount,
            profile,
            name=f"prefetch:{container.index.reference}",
        )

    def destroy_container(self, container: GearContainer) -> float:
        """Stop and remove a container: only its level-3 diff dies.

        Teardown cost scales with *touched* inodes only — Gear "only
        needs to destroy the inode caches of required files" (§V-F).
        """
        if container.state is ContainerState.RUNNING:
            container.stop()
        teardown = (
            CONTAINER_DESTROY_BASE_S
            + container.mount.stats.inodes_touched * INODE_TEARDOWN_COST_S
        )
        self.clock.advance(teardown, "container-destroy")
        container.state = ContainerState.DELETED
        self._containers.pop(container.id, None)
        return teardown

    def containers(self) -> List[GearContainer]:
        return list(self._containers.values())

    def __repr__(self) -> str:
        return (
            f"GearDriver(images={len(self._indexes)}, "
            f"containers={len(self._containers)}, pool={self.pool!r})"
        )
