"""The Gear index.

"The Gear index is made up of metadata that contains the structure of the
entire directory tree and metadata of regular files which replace the
actual files in directories" (§III-B).  Concretely, the index is a
filesystem tree in which every regular file is replaced by a tiny *stub
file* whose content encodes the original file's fingerprint and size —
"In place of the index where an entry for a regular file should be
stored, we record the file's MD5 hash value."

Because the stub encoding lives in ordinary file content, the index
round-trips losslessly through the stock Docker machinery as a
single-layer image (§III-C), which is the compatibility claim of the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple
from weakref import WeakKeyDictionary

from repro.blob import Blob
from repro.common.errors import GearError
from repro.common.hashing import Digest, sha256_tokens
from repro.docker.image import Image, ImageConfig
from repro.vfs.inode import FileKind, Inode, Metadata
from repro.vfs.tar import LayerArchive
from repro.vfs.tree import FileSystemTree

#: Stub files start with this magic so a viewer (and the parser) can tell
#: fingerprint entries from genuine small files.
STUB_MAGIC = "gearfp:"

#: Extended attribute marking a stub inode in a live index tree.
STUB_XATTR = "gear.stub"

#: One-time parse templates for :meth:`GearIndex.from_image`, keyed by
#: the (immutable, digest-hashed) index layer archive.  Weak keys: the
#: template dies with the last registry/daemon reference to the archive.
_INDEX_TEMPLATES: "WeakKeyDictionary[LayerArchive, Tuple[FileSystemTree, Dict[str, GearFileEntry]]]" = (
    WeakKeyDictionary()
)


@dataclass(frozen=True)
class GearFileEntry:
    """Metadata the index keeps for one regular file."""

    path: str
    identity: str
    size: int
    mode: int

    def stub_content(self) -> str:
        return f"{STUB_MAGIC}{self.identity}:{self.size}\n"

    @classmethod
    def parse_stub(cls, path: str, content: str, mode: int) -> "GearFileEntry":
        if not content.startswith(STUB_MAGIC):
            raise GearError(f"not a Gear stub at {path!r}")
        body = content[len(STUB_MAGIC) :].strip()
        identity, _, size_text = body.rpartition(":")
        if not identity or not size_text.isdigit():
            raise GearError(f"malformed Gear stub at {path!r}: {content!r}")
        return cls(path=path, identity=identity, size=int(size_text), mode=mode)


class GearIndex:
    """A Gear image's index component."""

    def __init__(
        self,
        name: str,
        tag: str,
        tree: FileSystemTree,
        entries: Dict[str, GearFileEntry],
        config: Optional[ImageConfig] = None,
    ) -> None:
        self.name = name
        self.tag = tag
        #: The stub tree: directories and symlinks verbatim, regular files
        #: replaced by stub files.  Live deployments mutate it (stub →
        #: hard link to the cached Gear file), so it stays writable.
        self.tree = tree
        self.entries = entries
        self.config = config if config is not None else ImageConfig.make()

    @property
    def reference(self) -> str:
        return f"{self.name}:{self.tag}"

    # -- construction -----------------------------------------------------

    @classmethod
    def from_tree(
        cls,
        name: str,
        tag: str,
        root: FileSystemTree,
        *,
        config: Optional[ImageConfig] = None,
        identity_for: Optional[Dict[int, str]] = None,
    ) -> "GearIndex":
        """Build an index from a flattened image root filesystem.

        ``identity_for`` optionally maps inode number → identity for files
        whose fingerprints were replaced by unique IDs (collision
        handling); everything else uses the blob fingerprint.
        """
        tree = FileSystemTree()
        entries: Dict[str, GearFileEntry] = {}
        for path, node in root.walk("/"):
            if node.is_dir:
                created = tree.mkdir(path, parents=True, exist_ok=True)
                created.meta = node.meta.copy()
                created.opaque = node.opaque
            elif node.is_symlink:
                assert node.symlink_target is not None
                tree.symlink(path, node.symlink_target, meta=node.meta.copy())
            elif node.is_file:
                assert node.blob is not None
                identity = (identity_for or {}).get(
                    node.ino, node.blob.fingerprint
                )
                entry = GearFileEntry(
                    path=path,
                    identity=identity,
                    size=node.blob.size,
                    mode=node.meta.mode,
                )
                entries[path] = entry
                meta = node.meta.copy()
                meta.xattrs[STUB_XATTR] = "1"
                tree.write_file(
                    path, Blob.from_text(entry.stub_content()), meta=meta,
                    parents=True,
                )
        return cls(name, tag, tree, entries, config)

    @classmethod
    def from_image(cls, image: Image) -> "GearIndex":
        """Parse an index back out of its single-layer Docker image.

        The parse is pure in the layer archive's content, so the stub
        tree and entry table are built once per archive digest and every
        subsequent call (every other node in a fleet pulling the same
        index) receives an independent clone of that template — the
        same result a re-parse would produce, minus the re-parse.
        """
        if not image.gear_index:
            raise GearError(f"{image.reference!r} is not a Gear index image")
        if len(image.layers) != 1:
            raise GearError(
                f"Gear index image {image.reference!r} must have exactly one "
                f"layer, found {len(image.layers)}"
            )
        archive = image.layers[0].archive
        template = _INDEX_TEMPLATES.get(archive)
        if template is None:
            template = cls._parse_archive(archive)
            _INDEX_TEMPLATES[archive] = template
        tree, entries = template
        return cls(
            image.name, image.tag, tree.clone(), dict(entries), image.config
        )

    @staticmethod
    def _parse_archive(
        archive: "LayerArchive",
    ) -> Tuple[FileSystemTree, Dict[str, GearFileEntry]]:
        """One-time stub-tree parse of an index layer archive."""
        root = archive.extract()
        tree = FileSystemTree()
        entries: Dict[str, GearFileEntry] = {}
        for path, node in root.walk("/"):
            if node.is_dir:
                created = tree.mkdir(path, parents=True, exist_ok=True)
                created.meta = node.meta.copy()
            elif node.is_symlink:
                assert node.symlink_target is not None
                tree.symlink(path, node.symlink_target, meta=node.meta.copy())
            elif node.is_file:
                assert node.blob is not None
                text = node.blob.materialize().decode("utf-8", errors="replace")
                entry = GearFileEntry.parse_stub(path, text, node.meta.mode)
                entries[path] = entry
                meta = node.meta.copy()
                meta.xattrs[STUB_XATTR] = "1"
                tree.write_file(path, node.blob, meta=meta, parents=True)
        return tree, entries

    # -- packaging ------------------------------------------------------------

    def to_image(self) -> Image:
        """Package as a single-layer Docker image (§III-C).

        Live index trees may contain *materialized* entries (stubs the
        viewer replaced with hard links to cached Gear files); a published
        index must carry stubs only, so those are re-encoded here.
        """
        from repro.docker.builder import image_from_tree

        return image_from_tree(
            self.name, self.tag, self.stub_tree(), config=self.config,
            gear_index=True,
        )

    def stub_tree(self) -> FileSystemTree:
        """A copy of the index tree with every entry as a pristine stub."""
        tree = self.tree.clone()
        for path, entry in self.entries.items():
            node = tree.stat(path, follow_symlinks=False)
            if STUB_XATTR in node.meta.xattrs:
                continue
            meta = node.meta.copy()
            meta.xattrs[STUB_XATTR] = "1"
            tree.write_file(path, Blob.from_text(entry.stub_content()), meta=meta)
        return tree

    # -- queries ----------------------------------------------------------------

    @property
    def file_count(self) -> int:
        return len(self.entries)

    @property
    def represented_bytes(self) -> int:
        """Total size of the regular files the index points to."""
        return sum(entry.size for entry in self.entries.values())

    @property
    def index_bytes(self) -> int:
        """Serialized size of the index itself (it should be tiny —
        "usually less than 1 MB", §I)."""
        return self.to_image().layers[0].uncompressed_size

    def identities(self) -> Iterator[str]:
        """Distinct Gear file identities this index references."""
        seen = set()
        for entry in self.entries.values():
            if entry.identity not in seen:
                seen.add(entry.identity)
                yield entry.identity

    def digest(self) -> Digest:
        """Identity of the index content (used in tests for round-trips)."""
        tokens: List[str] = []
        for path in sorted(self.entries):
            entry = self.entries[path]
            tokens.append(f"{path}|{entry.identity}|{entry.size}|{entry.mode:o}")
        return sha256_tokens(tokens)

    def __repr__(self) -> str:
        return (
            f"GearIndex({self.reference!r}, files={self.file_count}, "
            f"bytes={self.represented_bytes})"
        )
