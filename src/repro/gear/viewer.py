"""The Gear File Viewer.

"We develop Gear File Viewer based on Overlay2 to provide the root file
system views for containers" (§III-D2).  The viewer union-mounts the
read-only index (level 2) under a writable diff (level 3).  Irregular
files — directories, symlinks — are served straight from the index.  A
read of a regular file whose index entry is still a fingerprint stub
triggers a *fault*:

1. look the fingerprint up in the shared cache (level 1); on a hit, the
   cached file is hard-linked into the index and the stub is gone, so
   subsequent reads "can serve the following requests for the same file
   from the index without searching the first layer again";
2. on a miss, download the Gear file from the Gear Registry (paying
   simulated network costs), insert it into the cache, and link it.

This mirrors the prototype's modified ``ovl_lookup_single()`` that pauses
on a fingerprint file and asks a user-mode helper to make the target
readable (§IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.blob import Blob
from repro.common.clock import NULL_SPAN, SimClock, SimEvent
from repro.common.errors import (
    GearError,
    IntegrityError,
    NotFoundError,
    TimeoutError,
    UnavailableError,
)
from repro.docker.daemon import DECOMPRESS_BPS
from repro.gear.gearfile import GearFile
from repro.gear.index import GearFileEntry, GearIndex, STUB_XATTR
from repro.gear.journal import IntentJournal
from repro.gear.pool import SharedFilePool
from repro.gear.registry import GearRegistry
from repro.net.faults import CrashInjector, CrashPoint
from repro.net.transport import RpcTransport
from repro.obs.metrics import MetricSet
from repro.storage.disk import Disk
from repro.vfs.inode import Inode
from repro.vfs.overlay import OverlayMount
from repro.vfs.tree import FileSystemTree

#: A degraded-mode supplier of Gear files when the registry is out of
#: reach: given the index entry, return a verified file or ``None``.
FallbackFetcher = Callable[[GearFileEntry], Optional[GearFile]]


@dataclass
class FaultStats(MetricSet):
    """What lazy retrieval did for one mount."""

    faults: int = 0
    cache_hits: int = 0
    remote_fetches: int = 0
    remote_bytes: int = 0
    linked_bytes: int = 0
    #: Downloads whose content failed fingerprint verification.
    integrity_failures: int = 0
    #: Re-downloads issued after quarantining a corrupt payload.
    refetches: int = 0
    #: Files served through the degraded path (registry unreachable).
    degraded_fetches: int = 0

    @property
    def total_faulted_bytes(self) -> int:
        return self.linked_bytes


class GearFileViewer(OverlayMount):
    """An overlay mount whose lower layer is a Gear index."""

    #: How many times a corrupt download is quarantined and re-fetched
    #: before the fault is surfaced as an :class:`IntegrityError`.
    INTEGRITY_REFETCH_LIMIT = 2

    def __init__(
        self,
        index: GearIndex,
        pool: SharedFilePool,
        *,
        transport: Optional[RpcTransport] = None,
        upper: Optional[FileSystemTree] = None,
        disk: Optional[Disk] = None,
        fallback: Optional[FallbackFetcher] = None,
        integrity_refetch_limit: Optional[int] = None,
        journal: Optional[IntentJournal] = None,
        crash: Optional[CrashInjector] = None,
    ) -> None:
        super().__init__([index.tree], upper)
        self.index = index
        self.pool = pool
        self.transport = transport
        self.disk = disk
        self.fallback = fallback
        self.journal = journal
        self.crash = crash
        self.integrity_refetch_limit = (
            integrity_refetch_limit
            if integrity_refetch_limit is not None
            else self.INTEGRITY_REFETCH_LIMIT
        )
        self.fault_stats = FaultStats()
        #: The clock fault spans are recorded on (offline mounts — no
        #: transport, no disk — have none and trace nothing).
        self.clock: Optional[SimClock] = (
            transport.link.clock
            if transport is not None
            else (disk.clock if disk is not None else None)
        )

    def _span(self, name: str, **labels):
        if self.clock is None:
            return NULL_SPAN
        return self.clock.span(name, **labels)

    # -- the fault path ----------------------------------------------------

    def _materialize(self, node: Inode, resolved: Sequence[str]) -> Inode:
        if STUB_XATTR not in node.meta.xattrs:
            return node
        path = "/" + "/".join(resolved)
        entry = self.index.entries.get(path)
        if entry is None:
            raise GearError(f"stub at {path!r} has no index entry")
        self.fault_stats.faults += 1
        inode = self.pool.get(entry.identity)
        if inode is None:
            # Another process (a concurrent prefetcher or a sibling
            # container) may already be downloading this identity; wait
            # for its fetch to land rather than duplicating the bytes.
            inflight = self.pool.inflight.get(entry.identity)
            if inflight is not None:
                with self._span("fetch_wait", fp=entry.identity[:12]):
                    inflight.wait()
                inode = self.pool.get(entry.identity)
        if inode is not None:
            self.fault_stats.cache_hits += 1
            if self.clock is not None:
                self.clock.instant("cache_hit", fp=entry.identity[:12])
        else:
            with self._span("fetch_file", fp=entry.identity[:12]) as span:
                inode = self._fault_in(entry)
                span.annotate(bytes=inode.size)
        # Hard-link the real file over the stub so the index serves it
        # directly from now on.  Two-phase: the link intent is journaled
        # before the physical link, the commit record after — a crash
        # between the halves leaves a classifiable open-link record.
        with self._span("link", fp=entry.identity[:12]):
            if self.journal is not None:
                self.journal.link_begin(
                    entry.identity, path, self.index.reference
                )
            inode.meta.mode = entry.mode
            self.index.tree.link_inode(path, inode, replace=True)
            self._crash_checkpoint(CrashPoint.MID_LINK)
            if self.disk is not None:
                self.disk.metadata_op(1, label="index-link", deferred=True)
            self.fault_stats.linked_bytes += inode.size
            if self.journal is not None:
                self.journal.link_commit(
                    entry.identity, path, self.index.reference
                )
        return inode

    def _fault_in(self, entry: GearFileEntry) -> Inode:
        """Download, verify, and cache one Gear file (single-flight).

        Under a scheduler the fetch is registered in the pool's inflight
        table so concurrent faults on the same identity wait for this
        download instead of re-paying the wire; sequentially the table
        is never consulted mid-call and behaviour is byte-identical.
        """
        announce: Optional[SimEvent] = None
        clock = self.transport.link.clock if self.transport is not None else None
        if clock is not None and clock.scheduler is not None:
            announce = SimEvent(clock)
            self.pool.inflight[entry.identity] = announce
        try:
            if self.journal is not None:
                self.journal.fetch_begin(entry.identity)
            self._crash_checkpoint(CrashPoint.MID_FETCH, entry=entry)
            gear_file = self._fetch_remote(entry)
            inode = self.pool.prepare(gear_file)
            self._crash_checkpoint(CrashPoint.POST_FETCH)
            if self.journal is not None:
                self.journal.fetch_commit(entry.identity)
            self._crash_checkpoint(CrashPoint.MID_COMMIT)
            inode = self.pool.commit(entry.identity)
            self.fault_stats.remote_fetches += 1
            self.fault_stats.remote_bytes += gear_file.compressed_size
            # Gear files travel compressed (§III-C): decompress, then
            # store into the level-1 cache — one combined clock advance
            # (same total virtual cost, half the scheduler suspensions).
            if self.disk is not None:
                self.disk.write(
                    gear_file.size,
                    file_ops=1,
                    extra_s=gear_file.size / DECOMPRESS_BPS,
                    label="gear-gunzip+pool-store",
                    deferred=True,
                )
            return inode
        finally:
            if announce is not None:
                if self.pool.inflight.get(entry.identity) is announce:
                    del self.pool.inflight[entry.identity]
                announce.fire()

    def _crash_checkpoint(
        self, point: CrashPoint, entry: Optional[GearFileEntry] = None
    ) -> None:
        """Die here if the armed crash plan says so.

        A ``MID_FETCH`` crash lands partway through the wire transfer:
        it charges ``partial_fraction`` of the nominal transfer time and
        stages the torn partial temp file (junk bytes that cannot hash to
        the identity) exactly as an interrupted download leaves one on a
        real client — that is what recovery's re-verification must drop.
        """
        crash = self.crash
        if crash is None or not crash.take(point):
            return
        if point is CrashPoint.MID_FETCH and entry is not None:
            partial = int(entry.size * crash.plan.partial_fraction)
            if self.transport is not None and partial > 0:
                link = self.transport.link
                link.clock.advance(
                    link.transfer_time(partial),
                    f"crash-partial-fetch:{entry.identity[:12]}",
                )
            torn = _torn_payload(entry.identity, partial)
            self.pool.prepare(
                GearFile(identity=entry.identity, blob=torn), verified=False
            )
        crash.fire(point)

    def _fetch_remote(self, entry: GearFileEntry) -> GearFile:
        identity = entry.identity
        if self.transport is None:
            raise NotFoundError(
                f"gear file {identity!r} not cached and no registry transport"
            )
        refetches_left = self.integrity_refetch_limit
        while True:
            try:
                gear_file = self.transport.call(
                    GearRegistry.ENDPOINT_NAME,
                    "download",
                    identity,
                    label=f"gear-fetch:{identity[:12]}",
                )
            except (TimeoutError, UnavailableError):
                # The registry is past the retry budget; try the
                # degraded path before surfacing the outage.
                degraded = self._fetch_degraded(entry)
                if degraded is None:
                    raise
                return degraded
            # Content addressing doubles as an integrity check: a fetched
            # file must hash to the name it was requested by.  Unique IDs
            # (collision-handled files, "uid-…") opted out of fingerprint
            # naming and are exempt (§III-B).
            if identity.startswith("uid-") or (
                gear_file.blob.fingerprint == identity
            ):
                return gear_file
            # Corrupt payload: quarantine it (never cache poison) and
            # re-fetch rather than failing the read outright.  An
            # HA-aware transport also wants to know — wrong bytes that
            # passed the wire checksum mean the *replica* is lying, so
            # it demotes the server that sent them before the re-fetch
            # picks a target.
            self.fault_stats.integrity_failures += 1
            notify = getattr(self.transport, "report_corrupt_payload", None)
            if notify is not None:
                notify(identity)
            self.pool.quarantine(identity)
            if refetches_left <= 0:
                raise IntegrityError(
                    f"gear file {identity!r} failed verification "
                    f"{self.fault_stats.integrity_failures} time(s): content "
                    f"hashes to {gear_file.blob.fingerprint!r}"
                )
            refetches_left -= 1
            self.fault_stats.refetches += 1

    def _fetch_degraded(self, entry: GearFileEntry) -> Optional[GearFile]:
        """Last resort when the Gear registry is unreachable."""
        if self.fallback is None:
            return None
        gear_file = self.fallback(entry)
        if gear_file is None:
            return None
        if not entry.identity.startswith("uid-") and (
            gear_file.blob.fingerprint != entry.identity
        ):
            raise IntegrityError(
                f"degraded fetch for {entry.identity!r} failed verification"
            )
        self.fault_stats.degraded_fetches += 1
        return gear_file

    # -- helpers --------------------------------------------------------------

    def file_size(self, path: str) -> int:
        """Size of the regular file at ``path`` without faulting it in.

        Stat-like operations must not trigger downloads; the index holds
        the true size in its entry metadata.
        """
        node, resolved = self._resolve(path)
        if STUB_XATTR in node.meta.xattrs:
            entry = self.index.entries.get("/" + "/".join(resolved))
            if entry is not None:
                return entry.size
        return node.size

    def prefetch(self, path: str) -> None:
        """Fault a file in without reading it (warm-up helper)."""
        node, resolved = self._resolve(path)
        if node.is_file:
            self._materialize(node, resolved)

    def resident_bytes(self) -> int:
        """Bytes of index files already materialized (non-stub)."""
        total = 0
        for file_path, node in self.index.tree.iter_files():
            if STUB_XATTR not in node.meta.xattrs:
                total += node.size
        return total

    def __repr__(self) -> str:
        return f"GearFileViewer({self.index.reference!r})"


def _torn_payload(identity: str, size: int) -> Blob:
    """Deterministic junk standing in for a half-downloaded file."""
    if size <= 0:
        return Blob.from_bytes(b"")
    stamp = f"torn:{identity}:".encode()
    return Blob.from_bytes((stamp * (size // len(stamp) + 1))[:size])
