"""Registry-side garbage collection of Gear files.

The Gear design decouples file and image life cycles: deleting an image
leaves its Gear files in the storage pool because other indexes may
reference them (§III-D1), and "the original Docker image can be removed
if the managers want to save storage space" (§IV).  Eventually the
registry accumulates files no surviving index references; this module
implements the mark-and-sweep a registry operator runs to reclaim them.

Mark: parse every Gear-index manifest in the Docker registry and collect
the identities its entries reference.  Sweep: delete unreferenced files
from the Gear registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from repro.docker.image import Image
from repro.docker.registry import DockerRegistry
from repro.gear.index import GearIndex
from repro.gear.registry import GearRegistry


@dataclass
class GcReport:
    """What one collection pass found and freed."""

    indexes_scanned: int = 0
    live_files: int = 0
    deleted_files: int = 0
    deleted_bytes: int = 0
    deleted_identities: List[str] = field(default_factory=list)
    #: Unreferenced files uploaded *after* the mark phase began — spared
    #: this pass because their referencing index may still be in flight.
    skipped_recent: int = 0


def live_identities(docker_registry: DockerRegistry) -> Set[str]:
    """Mark phase: every identity referenced by any published index."""
    live: Set[str] = set()
    for reference in docker_registry.references():
        manifest = docker_registry.get_manifest(reference)
        if not manifest.gear_index:
            continue
        layer = docker_registry.get_layer(manifest.layer_digests[0])
        index = GearIndex.from_image(
            Image(manifest.name, manifest.tag, [layer], manifest.config,
                  gear_index=True)
        )
        live.update(index.identities())
    return live


def collect_garbage(
    docker_registry: DockerRegistry,
    gear_registry: GearRegistry,
    *,
    dry_run: bool = False,
) -> GcReport:
    """Mark-and-sweep unreferenced Gear files.

    With ``dry_run`` the report is produced but nothing is deleted —
    operators preview reclaimable space before committing.

    The sweep sizes dead files from the store's metadata records
    (:meth:`~repro.gear.registry.GearRegistry.stat`) rather than
    downloading every candidate — a collection pass must cost metadata
    reads, not a full mirror of the garbage.  The upload epoch snapshot
    taken before the mark phase guards the push/GC race: a client pushes
    Gear files *before* the index that references them (§III-C), so a
    file uploaded after marking began may be referenced by an index the
    mark never saw.  Such files are skipped, never swept.
    """
    report = GcReport()
    mark_epoch = gear_registry.upload_epoch
    live = live_identities(docker_registry)
    report.indexes_scanned = sum(
        1
        for reference in docker_registry.references()
        if docker_registry.get_manifest(reference).gear_index
    )
    report.live_files = len(live)
    for identity in list(gear_registry.identities()):
        if identity in live:
            continue
        record = gear_registry.stat(identity)
        if record.seq >= mark_epoch:
            report.skipped_recent += 1
            continue
        report.deleted_files += 1
        report.deleted_bytes += record.stored_size
        report.deleted_identities.append(identity)
        if not dry_run:
            gear_registry.delete(identity)
    return report
