"""Trace-driven prefetching of Gear files.

Gear's design is purely demand-driven: files travel when a read faults
(§III-D2).  That minimizes bytes but serializes fetch latency into the
container's critical path.  A registry that has seen a container start
before knows which files it will need — the startup trace — so a client
can overlap fetching with container startup.

This module implements that extension with the paper's own primitives:

* :class:`TraceRecorder` turns a deployment's fault sequence into a
  stored profile (what the registry side would accumulate);
* :class:`Prefetcher` replays a profile against a viewer, warming the
  shared cache through the ordinary fault path so all sharing/dedup
  semantics are preserved.

The ablation benchmark compares cold, prefetch-all, and prefetch-top-N
strategies; the interesting trade-off is wasted bytes (profile entries
the container never reads) versus first-read latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.clock import NULL_SPAN
from repro.gear.viewer import GearFileViewer


@dataclass(frozen=True)
class StartupProfile:
    """The remembered startup behaviour of one image."""

    reference: str
    #: (path, size) in first-access order.
    entries: Tuple[Tuple[str, int], ...]

    @property
    def total_bytes(self) -> int:
        return sum(size for _, size in self.entries)

    def head_by_bytes(self, byte_budget: int) -> "StartupProfile":
        """The prefix of the profile fitting a byte budget."""
        picked: List[Tuple[str, int]] = []
        spent = 0
        for path, size in self.entries:
            if spent + size > byte_budget and picked:
                break
            picked.append((path, size))
            spent += size
        return StartupProfile(reference=self.reference, entries=tuple(picked))


class TraceRecorder:
    """Collects per-image startup profiles from live deployments."""

    def __init__(self) -> None:
        self._profiles: Dict[str, StartupProfile] = {}

    def record(self, reference: str, viewer: GearFileViewer) -> StartupProfile:
        """Snapshot the files a mount has touched so far, in index order.

        Called after a container's startup task completes; subsequent
        deployments of ``reference`` can prefetch this set.
        """
        entries: List[Tuple[str, int]] = []
        for path, entry in viewer.index.entries.items():
            node = viewer.index.tree.stat(path, follow_symlinks=False)
            from repro.gear.index import STUB_XATTR

            if STUB_XATTR not in node.meta.xattrs:
                entries.append((path, entry.size))
        profile = StartupProfile(reference=reference, entries=tuple(entries))
        self._profiles[reference] = profile
        return profile

    def profile_for(self, reference: str) -> Optional[StartupProfile]:
        return self._profiles.get(reference)

    def __len__(self) -> int:
        return len(self._profiles)


@dataclass
class PrefetchReport:
    """What one prefetch pass moved."""

    reference: str
    files_prefetched: int = 0
    bytes_prefetched: int = 0
    cache_hits: int = 0


def replay_profile(
    viewer: GearFileViewer, profile: StartupProfile
) -> PrefetchReport:
    """Fault every profiled file in through ``viewer``'s ordinary path.

    Cache sharing, hard linking, and network accounting behave exactly
    as demand fetches do — prefetching only *moves* the cost off the
    critical path.  Run it as a scheduler process (see
    :meth:`GearDriver.spawn_prefetch <repro.gear.driver.GearDriver.spawn_prefetch>`)
    and it overlaps the startup trace instead of preceding it: the
    single-flight pool registry makes a prefetcher racing the task wait
    for in-flight downloads rather than duplicating them.
    """
    report = PrefetchReport(reference=profile.reference)
    span = (
        viewer.clock.span("prefetch", ref=profile.reference)
        if viewer.clock is not None
        else NULL_SPAN
    )
    with span as s:
        for path, size in profile.entries:
            if not viewer.exists(path):
                continue
            hits_before = viewer.fault_stats.cache_hits
            viewer.prefetch(path)
            report.files_prefetched += 1
            report.bytes_prefetched += size
            if viewer.fault_stats.cache_hits > hits_before:
                report.cache_hits += 1
        s.annotate(
            files=report.files_prefetched, bytes=report.bytes_prefetched
        )
    return report


class Prefetcher:
    """Warms a viewer's cache from a startup profile."""

    def __init__(self, recorder: TraceRecorder) -> None:
        self.recorder = recorder

    def prefetch(
        self,
        reference: str,
        viewer: GearFileViewer,
        *,
        byte_budget: Optional[int] = None,
    ) -> PrefetchReport:
        """Fault the profiled files in ahead of demand."""
        profile = self.recorder.profile_for(reference)
        if profile is None:
            return PrefetchReport(reference=reference)
        if byte_budget is not None:
            profile = profile.head_by_bytes(byte_budget)
        return replay_profile(viewer, profile)
