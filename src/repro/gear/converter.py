"""The Gear Converter.

"Gear Converter is responsible for automatically building a Gear image
from a Docker image.  It is in Docker Registry.  When a regular image
arrives, Gear Converter first retrieves the manifest of the image to
obtain information about the image's layers.  Since a Docker image is
stored as compressed tarballs, the converter decompresses and then saves
the layers starting from the bottom layer to the top layer.  Finally, the
converter traverses the re-constructed file system, and builds the Gear
index and Gear files." (§III-B)

Cost model (drives Fig. 6): registry-disk reads of the compressed layers,
writes of the unpacked tree, a per-node traversal cost, re-reads of file
contents for MD5 fingerprinting, and writes of the new (deduplicated)
Gear files.  Per-file operations dominate for container images because
"files are usually small (less than 1 MB)", which is exactly why the
paper finds conversion time proportional to image size/file count, and
why SSDs cut it sharply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.clock import SimClock
from repro.docker.image import Image
from repro.docker.registry import DockerRegistry
from repro.gear.fingerprint import CollisionTracker
from repro.gear.gearfile import GearFile
from repro.gear.index import GearIndex
from repro.gear.registry import GearRegistry
from repro.storage.disk import Disk


@dataclass
class ConversionReport:
    """Outcome and cost breakdown of one image conversion."""

    reference: str
    duration_s: float
    image_bytes: int
    file_count: int
    node_count: int
    gear_files_new: int
    gear_files_deduped: int
    index_bytes: int
    collisions: int


class GearConverter:
    """Converts Docker images to Gear images, registry-side."""

    def __init__(
        self,
        clock: SimClock,
        docker_registry: DockerRegistry,
        gear_registry: GearRegistry,
        *,
        disk: Optional[Disk] = None,
    ) -> None:
        self.clock = clock
        self.docker_registry = docker_registry
        self.gear_registry = gear_registry
        self.disk = disk if disk is not None else Disk(clock)
        self.collision_tracker = CollisionTracker()

    def convert(
        self,
        reference: str,
        *,
        keep_original: bool = True,
        index_suffix: str = "",
    ) -> Tuple[GearIndex, ConversionReport]:
        """Convert the referenced image; store index + files registry-side.

        The conversion "is performed only once … in advance", so its cost
        never lands on a client's deployment path.  ``keep_original=False``
        models the manager removing the regular image afterwards to save
        space (§IV).
        """
        timer = self.clock.timer()
        manifest = self.docker_registry.get_manifest(reference)
        image = Image(
            manifest.name,
            manifest.tag,
            [self.docker_registry.get_layer(d) for d in manifest.layer_digests],
            manifest.config,
        )

        # 1. Read the compressed layer tarballs off the registry disk and
        #    unpack them bottom-up.
        self.disk.read(
            image.compressed_size,
            file_ops=len(image.layers),
            label="read-layers",
        )
        tree = image.flatten()
        node_count = tree.count_nodes()
        self.disk.write(
            image.uncompressed_size, file_ops=node_count, label="unpack-layers"
        )

        # 2. Traverse the reconstructed filesystem: fingerprint every
        #    regular file (reading its content) and collect Gear files.
        identity_for: Dict[int, str] = {}
        gear_files: Dict[str, GearFile] = {}
        file_count = 0
        file_bytes = 0
        for _, node in tree.iter_files():
            assert node.blob is not None
            file_count += 1
            file_bytes += node.blob.size
            identity, _ = self.collision_tracker.register(node.blob)
            identity_for[node.ino] = identity
            if identity not in gear_files:
                gear_files[identity] = GearFile(identity=identity, blob=node.blob)
        self.disk.read(file_bytes, file_ops=file_count, label="fingerprint-scan")

        # 3. Store new Gear files (deduplicated against the registry pool).
        new_files = 0
        deduped = 0
        new_bytes = 0
        for gear_file in gear_files.values():
            if self.gear_registry.upload(gear_file):
                new_files += 1
                new_bytes += gear_file.size
            else:
                deduped += 1
        self.disk.write(new_bytes, file_ops=new_files, label="store-gear-files")

        # 4. Build the index and publish it as a single-layer image.
        index = GearIndex.from_tree(
            _index_name(image.name, index_suffix),
            image.tag,
            tree,
            config=image.config,
            identity_for=identity_for,
        )
        index_image = index.to_image()
        index_bytes = index_image.uncompressed_size
        self.disk.write(index_bytes, file_ops=1, label="store-index")
        self.docker_registry.push_image(index_image)

        if not keep_original:
            self.docker_registry.delete_manifest(reference)

        report = ConversionReport(
            reference=reference,
            duration_s=timer.elapsed(),
            image_bytes=image.uncompressed_size,
            file_count=file_count,
            node_count=node_count,
            gear_files_new=new_files,
            gear_files_deduped=deduped,
            index_bytes=index_bytes,
            collisions=self.collision_tracker.collisions_detected,
        )
        return index, report


def _index_name(image_name: str, suffix: str) -> str:
    """Name under which the index image is published.

    A suffix keeps index references distinct from the original image when
    both live in the same Docker registry (``keep_original=True``).
    """
    return f"{image_name}{suffix}" if suffix else f"{image_name}.gear"
