"""The Gear Registry: a content-addressed file server.

"Gear Registry runs a file server to store Gear files.  A Gear file can
be found through its name (i.e., the fingerprint of the corresponding
file)" (§III-C).  Three interfaces, as in §IV: query, upload, download.
Deployed "on the same node" as the Docker registry; the reproduction
mirrors that by binding both endpoints on the same transport.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

from repro.blob import Blob, chunk_fingerprint
from repro.common.errors import IntegrityError, NotFoundError
from repro.gear.gearfile import GearFile
from repro.net.transport import RpcEndpoint
from repro.storage.objectstore import ObjectStore, StoredObject


@dataclass(frozen=True)
class ChunkManifest:
    """The ``chunk_map`` response: chunk layout plus integrity names.

    ``fingerprints[i]`` is the content fingerprint the *i*-th
    ``download_chunk`` response must hash to before the client marks it
    present.  The manifest itself is tiny framed metadata — the
    transport checksum always catches damage to it
    (:meth:`~repro.net.faults.FaultyLink.tamper` returns ``None`` for
    non-content payloads) — so the fingerprints form a trusted root for
    per-chunk verification.
    """

    identity: str
    blob: Blob
    fingerprints: Tuple[str, ...]

    @classmethod
    def for_gear_file(cls, gear_file: GearFile) -> "ChunkManifest":
        return cls(
            identity=gear_file.identity,
            blob=gear_file.blob,
            fingerprints=tuple(
                chunk_fingerprint(chunk) for chunk in gear_file.blob.chunks
            ),
        )

    @property
    def chunks(self):
        """The chunk layout (duck-compatible with the blob it describes)."""
        return self.blob.chunks

    @property
    def wire_bytes(self) -> int:
        """Response framing: offset table plus one 16-byte MD5 per chunk."""
        return 64 + 32 * len(self.blob.chunks)


class GearRegistry:
    """Stores Gear files, deduplicated by identity."""

    ENDPOINT_NAME = "gear-registry"

    def __init__(self, *, compress: bool = True) -> None:
        self._store = ObjectStore(name="gear-files")
        self._compress = compress

    # -- the three verbs -------------------------------------------------

    def query(self, identity: str) -> bool:
        """Does the registry already hold this Gear file?"""
        return self._store.query(identity)

    def upload(self, gear_file: GearFile) -> bool:
        """Store a Gear file; duplicate identities are deduplicated."""
        stored_size = (
            gear_file.compressed_size if self._compress else gear_file.size
        )
        return self._store.upload(
            gear_file.identity,
            gear_file,
            size=gear_file.size,
            stored_size=stored_size,
        )

    def download(self, identity: str) -> GearFile:
        try:
            _, payload = self._store.download(identity)
        except NotFoundError:
            raise NotFoundError(f"gear file not found: {identity!r}") from None
        # A typed check, not an assert: asserts vanish under ``python -O``
        # and would silently hand back whatever the store held.
        if not isinstance(payload, GearFile):
            raise IntegrityError(
                f"object stored under {identity!r} is not a Gear file "
                f"(got {type(payload).__name__})"
            )
        return payload

    # -- bulk helpers ------------------------------------------------------

    def upload_many(self, gear_files: Iterable[GearFile]) -> Tuple[int, int]:
        """Upload files; returns ``(stored, deduplicated)``."""
        stored = 0
        deduped = 0
        for gear_file in gear_files:
            if self.upload(gear_file):
                stored += 1
            else:
                deduped += 1
        return stored, deduped

    def missing(self, identities: Iterable[str]) -> List[str]:
        """Identities not present (client-side push planning, §III-C)."""
        return [identity for identity in identities if not self.query(identity)]

    def delete(self, identity: str) -> None:
        """Remove a Gear file (used by registry garbage collection)."""
        self._store.delete(identity)

    def stat(self, identity: str) -> StoredObject:
        """Size/admission metadata without touching the payload.

        Garbage collection sizes its sweep from this record instead of
        downloading every dead file.
        """
        return self._store.stat(identity)

    @property
    def upload_epoch(self) -> int:
        """The admission number the next uploaded file will receive."""
        return self._store.upload_epoch

    # -- fault/loss injection (tests, resilience experiments) ---------------

    def corrupt(self, identity: str, gear_file: GearFile) -> None:
        """Replace the stored payload for ``identity`` with ``gear_file``.

        A public hook for failure-injection experiments: models silent
        registry-side bit rot (same name, different bytes).  The
        replacement keeps the original identity key so clients notice
        only through content verification.
        """
        if not self.query(identity):
            raise NotFoundError(f"gear file not found: {identity!r}")
        self._store.delete(identity)
        self._store.upload(
            identity,
            gear_file,
            size=gear_file.size,
            stored_size=(
                gear_file.compressed_size if self._compress else gear_file.size
            ),
        )

    # -- accounting ---------------------------------------------------------

    @property
    def file_count(self) -> int:
        return self._store.object_count

    @property
    def stored_bytes(self) -> int:
        """On-disk footprint (compressed when compression is on)."""
        return self._store.total_stored_size

    @property
    def logical_bytes(self) -> int:
        return self._store.total_size

    def identities(self) -> Iterator[str]:
        return self._store.keys()

    # -- RPC surface ------------------------------------------------------------

    def endpoint(self) -> RpcEndpoint:
        """Bind query/upload/download over the transport.

        Downloads cost the stored (compressed) size on the wire; queries
        cost a small fixed response; upload payload bytes are charged on
        the request side by the transport.
        """
        endpoint = RpcEndpoint(self.ENDPOINT_NAME)
        endpoint.register("query", lambda identity: (self.query(identity), 16))
        endpoint.register(
            "upload", lambda gear_file: (self.upload(gear_file), 16)
        )

        def _download(identity: str):
            gear_file = self.download(identity)
            wire = gear_file.compressed_size if self._compress else gear_file.size
            return gear_file, wire

        endpoint.register("download", _download)

        def _chunk_map(identity: str):
            # The chunk layout of a Gear file plus per-chunk fingerprints:
            # tiny metadata (an offset/digest table), used by the big-file
            # partial-read extension to verify every chunk it fetches.
            gear_file = self.download(identity)
            manifest = ChunkManifest.for_gear_file(gear_file)
            return manifest, manifest.wire_bytes

        endpoint.register("chunk_map", _chunk_map)

        def _download_chunk(identity: str, chunk_index: int):
            from repro.blob.compressibility import chunk_compressed_size

            gear_file = self.download(identity)
            chunks = gear_file.blob.chunks
            if not 0 <= chunk_index < len(chunks):
                raise NotFoundError(
                    f"chunk {chunk_index} out of range for {identity!r}"
                )
            chunk = chunks[chunk_index]
            wire = chunk_compressed_size(chunk) if self._compress else chunk.size
            return chunk, wire

        endpoint.register("download_chunk", _download_chunk)
        return endpoint

    def __repr__(self) -> str:
        return (
            f"GearRegistry(files={self.file_count}, "
            f"stored={self.stored_bytes})"
        )
