"""Baselines the paper compares against.

* Vanilla Docker deployment is :mod:`repro.docker` used directly (full
  image pull, then run) — helpers in :mod:`repro.bench.deploy`.
* :mod:`repro.baselines.slacker` reimplements the behaviour of Slacker
  (Harter et al., FAST'16) as the paper describes it: block-level lazy
  pulls from an NFS-backed per-container device, with no cross-container
  sharing (§V-E2, Fig. 10).
"""

from repro.baselines.duphunter import DupHunterRegistry
from repro.baselines.layerpack import PackedLayout, pack_layers
from repro.baselines.slacker import SlackerDriver, SlackerMount

__all__ = [
    "DupHunterRegistry",
    "PackedLayout",
    "pack_layers",
    "SlackerDriver",
    "SlackerMount",
]
