"""A DupHunter-style deduplicating registry baseline.

§VI-A: Zhao et al.'s DupHunter does "file-level deduplication after
decompressing the layers and hide[s] the overhead caused by
reconstructing the compressed layers via a content-aware cache."  The
paper's argument against this family: "existing deduplication methods
neither reduce bandwidth demands nor accelerate the deployment of a
container, because … an entire image still has to be reconstructed and
downloaded."

This baseline makes that argument measurable.  The registry stores
unique files once (storage ≈ Gear's), but a pull must *reconstruct* each
layer — reading every member file and re-compressing — and then ship the
full compressed layer to the client.  Reconstruction cost can be hidden
by a layer cache (the content-aware cache), which trades the saved space
back for hot layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.common.clock import SimClock
from repro.common.errors import NotFoundError
from repro.common.hashing import Digest
from repro.docker.image import Image, Layer, Manifest
from repro.storage.disk import Disk

#: Re-compressing a reconstructed layer (single-threaded gzip).
RECOMPRESS_BPS = 90e6


@dataclass
class DupHunterStats:
    """Registry-side work accounting."""

    reconstructions: int = 0
    reconstructed_bytes: int = 0
    cache_hits: int = 0


class DupHunterRegistry:
    """File-deduplicated layer storage with on-demand reconstruction."""

    def __init__(
        self,
        clock: SimClock,
        *,
        disk: Optional[Disk] = None,
        layer_cache_bytes: int = 0,
    ) -> None:
        self.clock = clock
        self.disk = disk if disk is not None else Disk(clock)
        self.layer_cache_bytes = layer_cache_bytes
        self._manifests: Dict[str, Manifest] = {}
        self._layers: Dict[Digest, Layer] = {}
        #: Unique file store: fingerprint → (size, compressed size).
        self._files: Dict[str, Tuple[int, int]] = {}
        #: Which layers are currently cached pre-reconstructed.
        self._layer_cache: Dict[Digest, int] = {}
        self._layer_cache_used = 0
        self.stats = DupHunterStats()

    # -- push ---------------------------------------------------------------

    def push_image(self, image: Image) -> None:
        """Store the image with per-file dedup (layers are decomposed)."""
        for layer in image.layers:
            if layer.digest in self._layers:
                continue
            self._layers[layer.digest] = layer
            for entry in layer.archive:
                if entry.blob is None:
                    continue
                fingerprint = entry.blob.fingerprint
                if fingerprint not in self._files:
                    from repro.blob.compressibility import blob_compressed_size

                    self._files[fingerprint] = (
                        entry.blob.size,
                        blob_compressed_size(entry.blob),
                    )
        self._manifests[image.reference] = image.manifest()

    # -- pull -----------------------------------------------------------------

    def get_manifest(self, reference: str) -> Manifest:
        try:
            return self._manifests[reference]
        except KeyError:
            raise NotFoundError(f"no such image: {reference!r}") from None

    def serve_layer(self, digest: Digest) -> Tuple[Layer, int]:
        """Serve one layer, reconstructing it unless cached.

        Returns the layer and the wire payload size (the *compressed
        full layer*, which is the point: dedup does not shrink what the
        client downloads).
        """
        layer = self._layers.get(digest)
        if layer is None:
            raise NotFoundError(f"no such layer: {digest.short()}")
        if digest in self._layer_cache:
            self.stats.cache_hits += 1
        else:
            # Reconstruct: read every member file from the dedup store,
            # write the assembled tarball, re-compress it.
            self.disk.read(
                layer.uncompressed_size,
                file_ops=len(layer.archive),
                label=f"duphunter-reassemble:{digest.short()}",
            )
            self.clock.advance(
                layer.uncompressed_size / RECOMPRESS_BPS,
                f"duphunter-recompress:{digest.short()}",
            )
            self.stats.reconstructions += 1
            self.stats.reconstructed_bytes += layer.uncompressed_size
            self._cache_layer(digest, layer.compressed_size)
        return layer, layer.compressed_size

    def _cache_layer(self, digest: Digest, compressed_size: int) -> None:
        if self.layer_cache_bytes <= 0:
            return
        if compressed_size > self.layer_cache_bytes:
            return
        while self._layer_cache_used + compressed_size > self.layer_cache_bytes:
            victim, size = next(iter(self._layer_cache.items()))
            del self._layer_cache[victim]
            self._layer_cache_used -= size
        self._layer_cache[digest] = compressed_size
        self._layer_cache_used += compressed_size

    # -- accounting ---------------------------------------------------------------

    @property
    def stored_bytes(self) -> int:
        """Dedup store + manifests + whatever the layer cache holds."""
        files = sum(compressed for _, compressed in self._files.values())
        manifests = sum(m.size_bytes for m in self._manifests.values())
        return files + manifests + self._layer_cache_used

    @property
    def unique_file_count(self) -> int:
        return len(self._files)

    def __repr__(self) -> str:
        return (
            f"DupHunterRegistry(images={len(self._manifests)}, "
            f"files={len(self._files)}, bytes={self.stored_bytes})"
        )
