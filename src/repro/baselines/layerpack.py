"""A layer-restructuring baseline (greedy overlap maximization).

§VI-A: Skourtis et al. "argue that Docker image layers in the registry
should be reorganized to maximize their overlap and reduce storage
consumption … [with] a greedy algorithm."  The idea: instead of storing
each image's historical layers, regroup the corpus's *files* into a
small set of shared layers such that images are expressible as unions of
those layers, deduplicating common content at layer granularity.

This module implements a faithful simplification of that greedy scheme:

1. every unique file (by fingerprint) is annotated with the set of
   images containing it;
2. files with identical image-sets are grouped — each group becomes one
   synthesized layer (content shared by exactly those images);
3. groups smaller than ``min_layer_bytes`` are folded into per-image
   residual layers (real systems cap layer-count per image; unbounded
   grouping would explode the layer count).

The result keeps Docker's pull model (whole layers travel) while closing
much of the storage gap to file-level dedup — at the cost of a rebuild
whenever the corpus changes, which is the flexibility argument the Gear
paper makes against restructuring approaches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.blob.compressibility import blob_compressed_size
from repro.docker.image import Image


@dataclass(frozen=True)
class PackedLayout:
    """Outcome of restructuring a corpus into shared layers."""

    shared_layer_count: int
    residual_layer_count: int
    stored_bytes: int
    #: Per-image layer counts after packing (pull-path complexity).
    layers_per_image: Tuple[int, ...]
    #: Compressed bytes a cold client downloads for each image (all the
    #: packed layers that image references).
    bytes_per_image: Tuple[int, ...]

    @property
    def total_layers(self) -> int:
        return self.shared_layer_count + self.residual_layer_count

    @property
    def mean_layers_per_image(self) -> float:
        if not self.layers_per_image:
            return 0.0
        return sum(self.layers_per_image) / len(self.layers_per_image)


def pack_layers(
    images: Sequence[Image],
    *,
    min_layer_bytes: int = 4 * 1024 * 1024,
) -> PackedLayout:
    """Greedily regroup corpus files into maximally-shared layers."""
    if min_layer_bytes <= 0:
        raise ValueError("min_layer_bytes must be positive")

    # 1. fingerprint → (compressed size, set of image indices).
    occupancy: Dict[str, Tuple[int, set]] = {}
    for index, image in enumerate(images):
        tree = image.flatten()
        for _, node in tree.iter_files():
            assert node.blob is not None
            fingerprint = node.blob.fingerprint
            record = occupancy.get(fingerprint)
            if record is None:
                occupancy[fingerprint] = (
                    blob_compressed_size(node.blob),
                    {index},
                )
            else:
                record[1].add(index)

    # 2. group by identical image-set.
    groups: Dict[FrozenSet[int], int] = {}
    for compressed, members in occupancy.values():
        key = frozenset(members)
        groups[key] = groups.get(key, 0) + compressed

    shared_layers = 0
    residual_bytes_per_image: Dict[int, int] = {}
    stored = 0
    image_layer_counts: Dict[int, int] = {i: 0 for i in range(len(images))}
    image_bytes: Dict[int, int] = {i: 0 for i in range(len(images))}
    for members, group_bytes in groups.items():
        if group_bytes >= min_layer_bytes and len(members) > 1:
            # One shared layer serving every member image.
            shared_layers += 1
            stored += group_bytes
            for member in members:
                image_layer_counts[member] += 1
                image_bytes[member] += group_bytes
        else:
            # Folded into each member's residual layer.  Content shared
            # by the group's members is *duplicated* into each residual —
            # the granularity loss restructuring cannot avoid.
            for member in members:
                residual_bytes_per_image[member] = (
                    residual_bytes_per_image.get(member, 0) + group_bytes
                )

    residual_layers = 0
    for index, residual in residual_bytes_per_image.items():
        if residual > 0:
            residual_layers += 1
            stored += residual
            image_layer_counts[index] += 1
            image_bytes[index] += residual

    return PackedLayout(
        shared_layer_count=shared_layers,
        residual_layer_count=residual_layers,
        stored_bytes=stored,
        layers_per_image=tuple(
            image_layer_counts[i] for i in range(len(images))
        ),
        bytes_per_image=tuple(image_bytes[i] for i in range(len(images))),
    )
