"""A Slacker-style block-level lazy-pull baseline.

Slacker stores each container's root filesystem as a snapshot of a
shared-storage block device (LVM over NFS) and fetches blocks lazily as
the container touches them.  The properties the paper leans on (§II-D,
§V-E2):

* **fast provisioning** — starting a container only clones a snapshot, so
  the pull phase is nearly free;
* **block granularity** — a file read pulls every filesystem block backing
  it, plus metadata blocks (inode, directory, indirect blocks), and blocks
  travel *uncompressed*; "the number of blocks to be pulled by Slacker is
  much more than the number of files to be pulled by Gear";
* **no sharing** — each container gets its own virtual device, so
  identical blocks are re-fetched for every container and version
  ("Slacker's time shows little change due to the absence of [a] sharing
  mechanism", Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set

from repro.common.clock import SimClock
from repro.common.errors import NotFoundError
from repro.docker.daemon import CONTAINER_START_COST_S
from repro.net.link import Link
from repro.vfs.inode import Inode
from repro.vfs.overlay import OverlayMount
from repro.vfs.tree import FileSystemTree
from repro.workloads.corpus import GeneratedImage

#: ext4 block size on the virtual device.
FS_BLOCK_SIZE = 4096

#: NFS read transfer unit (rsize); contiguous blocks coalesce into
#: requests of this size.
NFS_RSIZE = 64 * 1024

#: Filesystem metadata read amplification: inode tables, directory
#: blocks, extent trees fetched alongside data.
META_BLOCKS_PER_FILE = 3

#: Cloning a device snapshot and registering the container (the part of
#: Slacker that is genuinely fast).
SNAPSHOT_CLONE_COST_S = 0.18


@dataclass
class SlackerStats:
    """Per-container lazy-pull accounting."""

    files_fetched: int = 0
    blocks_fetched: int = 0
    requests: int = 0
    bytes_fetched: int = 0


class SlackerMount(OverlayMount):
    """A container filesystem backed by a lazily-populated block device."""

    def __init__(
        self,
        image_tree: FileSystemTree,
        link: Link,
        *,
        upper: Optional[FileSystemTree] = None,
    ) -> None:
        super().__init__([image_tree], upper)
        self.link = link
        self.slacker_stats = SlackerStats()
        self._resident: Set[int] = set()

    def _materialize(self, node: Inode, resolved: Sequence[str]) -> Inode:
        if node.ino in self._resident:
            return node
        # First touch: pull the file's data blocks plus metadata blocks
        # over NFS, uncompressed, coalesced into rsize-unit requests.
        assert node.blob is not None
        data_blocks = -(-max(node.blob.size, 1) // FS_BLOCK_SIZE)
        total_blocks = data_blocks + META_BLOCKS_PER_FILE
        payload = total_blocks * FS_BLOCK_SIZE
        requests = -(-payload // NFS_RSIZE)
        for index in range(requests):
            piece = min(NFS_RSIZE, payload - index * NFS_RSIZE)
            self.link.transfer(piece, label="slacker-block-read")
        self._resident.add(node.ino)
        self.slacker_stats.files_fetched += 1
        self.slacker_stats.blocks_fetched += total_blocks
        self.slacker_stats.requests += requests
        self.slacker_stats.bytes_fetched += payload
        return node


class SlackerDriver:
    """Deploys containers from per-container lazy block devices."""

    def __init__(self, clock: SimClock, link: Link) -> None:
        self.clock = clock
        self.link = link
        #: Flattened image trees standing in for the shared-storage device
        #: images (provisioned out-of-band, like Slacker's NFS server).
        self._device_images: Dict[str, FileSystemTree] = {}

    def provision_image(self, generated: GeneratedImage) -> None:
        """Place an image on the shared storage server (out-of-band)."""
        self._device_images[generated.reference] = (
            generated.image.flatten().freeze()
        )

    def has_image(self, reference: str) -> bool:
        return reference in self._device_images

    def deploy(self, reference: str) -> SlackerMount:
        """Clone a snapshot and start a container (the pull phase)."""
        tree = self._device_images.get(reference)
        if tree is None:
            raise NotFoundError(f"image not provisioned: {reference!r}")
        # Snapshot clone + container start; no image data moves yet, and
        # nothing is shared with previously-deployed containers.
        self.clock.advance(SNAPSHOT_CLONE_COST_S, "slacker-clone")
        self.clock.advance(CONTAINER_START_COST_S, "slacker-start")
        return SlackerMount(tree, self.link)
