"""Deterministic compression model for virtual content.

Real registries store layers as compressed tarballs (§II-B) and Gear files
"can be further compressed" (§III-C).  We cannot gzip content we never
materialize, so each chunk gets a *compressibility ratio* derived
deterministically from its seed: ratio 0.2 means the chunk compresses to
20% of its size.  The distribution is tuned to container-image reality —
a mix of already-compressed payloads (ratio ≈ 1.0), binaries (≈ 0.45), and
text/config (≈ 0.25) — giving corpus-wide tarball ratios near the 3.54×
layer-compression factor Docker reports (§II-B cites 3.54× combined with
layer dedup).

Crucially the model preserves the paper's key observation about
compression and dedup (§VI-A): identical chunks always compress to
identical sizes, but a tarball of *similar* layers compresses as the sum
of its parts — two near-identical compressed layers are still distinct
objects, which is why registry-side dedup must operate on uncompressed
content.
"""

from __future__ import annotations

from functools import lru_cache

from repro.blob.blob import Blob, Chunk
from repro.common.hashing import stable_unit_interval

#: Minimum bytes a non-empty chunk can compress to (header overhead).
_MIN_COMPRESSED = 16

#: Weight, low, high of each content class in the compressibility mixture.
_CLASSES = (
    (0.15, 0.92, 1.00),  # already compressed (archives, images, .gz)
    (0.50, 0.35, 0.60),  # binaries, shared objects
    (0.35, 0.12, 0.35),  # text, config, scripts, locale data
)


@lru_cache(maxsize=65536)
def chunk_compressibility(seed: str) -> float:
    """Compressibility ratio in (0, 1] for the chunk with this seed.

    Pure in ``seed`` (two stable hashes), so it is memoized: archive
    sizing revisits the same corpus chunks once per node in a fleet.
    """
    class_point = stable_unit_interval("compress-class", seed)
    cumulative = 0.0
    for weight, lo, hi in _CLASSES:
        cumulative += weight
        if class_point <= cumulative:
            spread = stable_unit_interval("compress-ratio", seed)
            return lo + (hi - lo) * spread
    # Floating point slack: behave like the final class.
    __, lo, hi = _CLASSES[-1]
    return lo + (hi - lo) * stable_unit_interval("compress-ratio", seed)


def chunk_compressed_size(chunk: Chunk) -> int:
    """Compressed size of one chunk, deterministic in its identity."""
    if chunk.size == 0:
        return 0
    ratio = chunk_compressibility(chunk.seed)
    return max(_MIN_COMPRESSED, min(chunk.size, round(chunk.size * ratio)))


def blob_compressed_size(blob: Blob) -> int:
    """Compressed size of a whole blob (sum of its chunks).

    Cached on the (immutable) blob: registry sizing and wire accounting
    ask for the same blobs once per node in a fleet.
    """
    cached = blob._compressed_size
    if cached is None:
        cached = sum(chunk_compressed_size(chunk) for chunk in blob.chunks)
        blob._compressed_size = cached
    return cached
