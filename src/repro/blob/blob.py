"""Chunked virtual blobs."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.common.hashing import Fingerprint, fingerprint_bytes, fingerprint_tokens

#: Chunk granularity used throughout the reproduction.  The paper's
#: chunk-level deduplication experiment (Table II) uses 128 KB chunks.
DEFAULT_CHUNK_SIZE: int = 128 * 1024


@dataclass(frozen=True)
class Chunk:
    """One fixed-position piece of a blob's content.

    ``seed`` determines the chunk's bytes; ``size`` is its length.  Two
    chunks are content-identical iff their ``(seed, size)`` pairs are equal.
    ``literal`` carries the actual bytes when the blob was created from
    real data (tests, committed container files); synthetic corpus chunks
    leave it ``None`` and materialize bytes deterministically from the seed.
    """

    seed: str
    size: int
    literal: Optional[bytes] = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"chunk size must be non-negative, got {self.size}")
        if self.literal is not None and len(self.literal) != self.size:
            raise ValueError(
                f"literal length {len(self.literal)} does not match size {self.size}"
            )

    @property
    def token(self) -> str:
        """Canonical identity token used in fingerprints and dedup keys."""
        return f"{self.seed}:{self.size}"

    def materialize(self) -> bytes:
        """Return the chunk's bytes.

        Literal chunks return their stored bytes.  Synthetic chunks expand
        a SHA-256 keystream of the seed to ``size`` bytes; the expansion is
        pure, so repeated calls return identical data.
        """
        if self.literal is not None:
            return self.literal
        if self.size == 0:
            return b""
        out = bytearray()
        counter = 0
        while len(out) < self.size:
            block = hashlib.sha256(f"{self.seed}:{counter}".encode()).digest()
            out.extend(block)
            counter += 1
        return bytes(out[: self.size])


def chunk_fingerprint(chunk: Chunk) -> Fingerprint:
    """Content fingerprint of one chunk (the per-chunk integrity name).

    Fingerprints the canonical identity token rather than materialized
    bytes: two chunks share a token iff they share content, so the token
    fingerprint is content-addressed without expanding synthetic
    keystreams.  The registry's ``chunk_map`` ships these alongside the
    chunk layout; the chunk-granular read path verifies every
    ``download_chunk`` response against them before marking it present.
    """
    return fingerprint_tokens((chunk.token,))


class Blob:
    """The content of one regular file, as an ordered chunk sequence."""

    __slots__ = ("_chunks", "_size", "_fingerprint", "_compressed_size")

    def __init__(self, chunks: Sequence[Chunk]) -> None:
        self._chunks: Tuple[Chunk, ...] = tuple(chunks)
        self._size = sum(chunk.size for chunk in self._chunks)
        self._fingerprint: Optional[Fingerprint] = None
        # Lazily filled by repro.blob.compressibility; blobs are
        # immutable, so the modelled compressed size never changes.
        self._compressed_size: Optional[int] = None

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_bytes(cls, data: bytes, chunk_size: int = DEFAULT_CHUNK_SIZE) -> "Blob":
        """Build a blob from literal bytes, split at ``chunk_size``.

        The chunk seed is the MD5 of the chunk's own bytes, so identical
        literal content always produces identical chunk identities — the
        same property synthetic blobs get from shared seeds.
        """
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        if not data:
            return cls([Chunk(seed=fingerprint_bytes(b""), size=0, literal=b"")])
        chunks: List[Chunk] = []
        for offset in range(0, len(data), chunk_size):
            piece = data[offset : offset + chunk_size]
            chunks.append(
                Chunk(seed=fingerprint_bytes(piece), size=len(piece), literal=piece)
            )
        return cls(chunks)

    @classmethod
    def from_text(cls, text: str) -> "Blob":
        """Build a blob from a UTF-8 string (convenience for tests)."""
        return cls.from_bytes(text.encode("utf-8"))

    @classmethod
    def synthetic(
        cls, seed: str, size: int, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> "Blob":
        """Build a virtual blob of ``size`` bytes from a seed.

        Chunk seeds are ``{seed}/{index}``, so two synthetic blobs share
        chunks only when built from the same seed (or explicitly derived
        via :meth:`mutate`).
        """
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        if size == 0:
            return cls([Chunk(seed=f"{seed}/0", size=0)])
        chunks = []
        index = 0
        remaining = size
        while remaining > 0:
            piece = min(chunk_size, remaining)
            chunks.append(Chunk(seed=f"{seed}/{index}", size=piece))
            index += 1
            remaining -= piece
        return cls(chunks)

    # -- identity -------------------------------------------------------

    @property
    def size(self) -> int:
        """Total content length in bytes."""
        return self._size

    @property
    def chunks(self) -> Tuple[Chunk, ...]:
        """The ordered chunk sequence."""
        return self._chunks

    @property
    def fingerprint(self) -> Fingerprint:
        """MD5 fingerprint of the blob's content.

        Literal single-chunk blobs shorter than the chunk size fingerprint
        their actual bytes (so tests can compare against ``hashlib.md5``);
        everything else fingerprints the canonical chunk-token sequence.
        """
        if self._fingerprint is None:
            if len(self._chunks) == 1 and self._chunks[0].literal is not None:
                self._fingerprint = fingerprint_bytes(self._chunks[0].literal)
            else:
                self._fingerprint = fingerprint_tokens(
                    chunk.token for chunk in self._chunks
                )
        return self._fingerprint

    def chunk_tokens(self) -> Iterator[str]:
        """Yield each chunk's identity token (for chunk-level dedup)."""
        for chunk in self._chunks:
            yield chunk.token

    # -- content --------------------------------------------------------

    def materialize(self) -> bytes:
        """Return the blob's full byte content."""
        return b"".join(chunk.materialize() for chunk in self._chunks)

    def mutate(
        self,
        mutation_seed: str,
        fraction: float,
        *,
        size_delta: int = 0,
    ) -> "Blob":
        """Derive a new blob that shares most chunks with this one.

        ``fraction`` of the chunks (at least one, deterministically chosen
        from ``mutation_seed``) are replaced with fresh chunks; the rest
        are inherited verbatim.  This models a file changing between image
        versions: file-level dedup sees a brand-new file, chunk-level dedup
        still shares the untouched chunks — exactly the gap between the
        file and chunk columns of Table II.

        ``size_delta`` grows (or shrinks, if negative) the final chunk.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        from repro.common.rng import rng_for

        rng = rng_for("blob-mutate", mutation_seed, self.fingerprint)
        chunks = list(self._chunks)
        count = max(1, round(len(chunks) * fraction))
        count = min(count, len(chunks))
        for position in rng.sample(range(len(chunks)), count):
            old = chunks[position]
            chunks[position] = Chunk(
                seed=f"{mutation_seed}/{position}", size=old.size
            )
        if size_delta:
            last = chunks[-1]
            new_size = max(0, last.size + size_delta)
            chunks[-1] = Chunk(seed=f"{mutation_seed}/tail", size=new_size)
        return Blob(chunks)

    # -- dunder ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Blob):
            return NotImplemented
        return self.fingerprint == other.fingerprint

    def __hash__(self) -> int:
        return hash(self.fingerprint)

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        return (
            f"Blob(size={self._size}, chunks={len(self._chunks)}, "
            f"fp={self.fingerprint.short()})"
        )
