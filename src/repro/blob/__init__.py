"""Virtual file content.

A :class:`Blob` is the content of one regular file, represented as an
ordered sequence of chunks.  Chunks are identified by a *seed* string and a
size; bytes are only materialized on demand (tests, small files), so a
multi-gigabyte corpus costs a few integers per file.

Identity properties the rest of the system relies on:

* two blobs with the same chunk sequence have the same MD5 fingerprint
  (file-level dedup, Gear file naming);
* two chunks with the same ``(seed, size)`` are identical (chunk-level
  dedup, Table II; partial-update modelling for version chains);
* compressed sizes are deterministic functions of chunk seeds, so layer
  compression and Gear-file compression are reproducible.
"""

from repro.blob.blob import Blob, Chunk, DEFAULT_CHUNK_SIZE, chunk_fingerprint
from repro.blob.compressibility import chunk_compressed_size, chunk_compressibility

__all__ = [
    "Blob",
    "Chunk",
    "DEFAULT_CHUNK_SIZE",
    "chunk_compressed_size",
    "chunk_compressibility",
    "chunk_fingerprint",
]
