"""Virtual-time span tracing over the simulated clock.

A :class:`SpanTracer` records nestable spans (``deploy`` →
``pull_index`` / ``fetch_file`` / ``link`` / ``hedge`` / ``fsck`` …)
against a duck-typed clock (anything with ``.now`` and ``.scheduler``).
Recording costs *zero virtual time* — spans only read the clock — and
wall-clock overhead is a couple of list operations per span, so the
instrumentation stays always-on in the code and is literally free when
no tracer is attached (the clock returns a shared null span then).

Concurrency model: one *track* per scheduler process (plus track 0 for
the main/sequential activity).  Each track keeps its own stack of open
spans, so concurrent fleet clients interleave correctly instead of
nesting into each other.  When a process is spawned, the spawner's
innermost open span becomes the new track's base parent — a hedged
attempt process, for example, parents under the ``hedge`` span that
launched it.  Track indexes and span ids are assigned in creation order,
which is deterministic under the ``(time, seq)``-ordered scheduler, so
identical runs produce byte-identical exports.

This module imports nothing from the rest of :mod:`repro`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple


class Span:
    """One recorded interval on a track.

    ``end_s`` is ``None`` while the span is open; exporters and the
    critical-path analysis only consider finished spans.
    """

    __slots__ = ("id", "parent_id", "track", "name", "start_s", "end_s", "labels")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        track: int,
        name: str,
        start_s: float,
        labels: Dict[str, Any],
    ) -> None:
        self.id = span_id
        self.parent_id = parent_id
        self.track = track
        self.name = name
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.labels = labels

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def annotate(self, **labels: Any) -> "Span":
        """Attach labels discovered mid-span (bytes moved, outcome, …)."""
        self.labels.update(labels)
        return self

    def __repr__(self) -> str:
        end = f"{self.end_s:.6f}" if self.end_s is not None else "open"
        return (
            f"Span({self.name!r}, id={self.id}, track={self.track}, "
            f"[{self.start_s:.6f}, {end}])"
        )


class Instant:
    """A point event (clock advance labels, cache hits, cancellations)."""

    __slots__ = ("at_s", "name", "track", "labels")

    def __init__(
        self, at_s: float, name: str, track: int, labels: Dict[str, Any]
    ) -> None:
        self.at_s = at_s
        self.name = name
        self.track = track
        self.labels = labels

    def __repr__(self) -> str:
        return f"Instant({self.name!r}, t={self.at_s:.6f})"


class _Track:
    """Per-process span stack."""

    __slots__ = ("index", "name", "stack", "base_parent_id")

    def __init__(
        self, index: int, name: str, base_parent_id: Optional[int]
    ) -> None:
        self.index = index
        self.name = name
        #: Open spans, innermost last.
        self.stack: List[Span] = []
        #: Parent inherited from the spawning process's innermost span.
        self.base_parent_id = base_parent_id

    def current_parent_id(self) -> Optional[int]:
        if self.stack:
            return self.stack[-1].id
        return self.base_parent_id


class _OpenSpan:
    """Context manager pairing one ``begin`` with its ``end``."""

    __slots__ = ("_tracer", "_name", "_labels", "span")

    def __init__(
        self, tracer: "SpanTracer", name: str, labels: Dict[str, Any]
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._labels = labels
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        self.span = self._tracer.begin(self._name, **self._labels)
        return self.span

    def __exit__(self, *exc_info: object) -> bool:
        if self.span is not None:
            self._tracer.end(self.span)
        return False


class SpanTracer:
    """Records spans and instants against a simulated clock.

    Attach to a clock with ``clock.attach_tracer(tracer)`` (or construct
    the clock with ``trace=True``); every ``clock.span(...)`` /
    ``clock.instant(...)`` call then lands here.  The tracer never
    advances the clock.
    """

    __slots__ = (
        "clock",
        "spans",
        "instants",
        "_tracks",
        "_tracks_by_index",
        "_next_id",
    )

    def __init__(self, clock: Any) -> None:
        self.clock = clock
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self._tracks: Dict[Any, _Track] = {}
        #: Same tracks, addressable by ``track.index`` without a scan.
        self._tracks_by_index: List[_Track] = []
        self._next_id = 1
        self._track_for(None)  # track 0: the main/sequential activity

    # -- track bookkeeping -------------------------------------------------

    def _current_key(self) -> Any:
        scheduler = getattr(self.clock, "scheduler", None)
        if scheduler is None:
            return None
        # ``current_process`` also reports a generator process being
        # stepped on the loop thread; fall back for schedulers predating
        # generator support.
        getter = getattr(scheduler, "current_process", None)
        if getter is not None:
            return getter()
        return scheduler._running_process()

    def _track_for(self, key: Any) -> _Track:
        track = self._tracks.get(key)
        if track is None:
            name = "main" if key is None else getattr(key, "name", str(key))
            track = _Track(len(self._tracks), name, None)
            self._tracks[key] = track
            self._tracks_by_index.append(track)
        return track

    def on_spawn(self, process: Any) -> None:
        """Scheduler hook: a new process inherits the spawner's span.

        Called from the spawning activity's own thread, so the *current*
        track is the spawner's — its innermost open span becomes the new
        process track's base parent.
        """
        spawner = self._track_for(self._current_key())
        track = self._track_for(process)
        track.base_parent_id = spawner.current_parent_id()

    def tracks(self) -> List[_Track]:
        """Every track in creation order (deterministic)."""
        return list(self._tracks_by_index)

    # -- recording ---------------------------------------------------------

    def span(self, name: str, **labels: Any) -> _OpenSpan:
        """A context manager opening a span on entry, closing on exit."""
        return _OpenSpan(self, name, labels)

    def begin(self, name: str, **labels: Any) -> Span:
        track = self._track_for(self._current_key())
        span = Span(
            self._next_id,
            track.current_parent_id(),
            track.index,
            name,
            self.clock.now,
            labels,
        )
        self._next_id += 1
        track.stack.append(span)
        self.spans.append(span)
        return span

    def end(self, span: Span) -> Span:
        span.end_s = self.clock.now
        stack = self._tracks_by_index[span.track].stack
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:
            # Normally the innermost; tolerate out-of-order ends
            # (an exception unwinding through nested withs).
            stack.remove(span)
        return span

    def instant(self, name: str, **labels: Any) -> Instant:
        track = self._track_for(self._current_key())
        event = Instant(self.clock.now, name, track.index, labels)
        self.instants.append(event)
        return event

    # -- views -------------------------------------------------------------

    def finished_spans(self) -> List[Span]:
        """Spans with both endpoints, in begin order."""
        return [span for span in self.spans if span.end_s is not None]

    def compat_trace(self) -> List[Tuple[float, str]]:
        """The legacy ``SimClock.trace`` view: ``(timestamp, label)``."""
        return [(event.at_s, event.name) for event in self.instants]

    def clear(self) -> None:
        """Drop every recording; tracks reset to just the main track."""
        self.spans.clear()
        self.instants.clear()
        self._tracks.clear()
        self._tracks_by_index.clear()
        self._next_id = 1
        self._track_for(None)

    def __repr__(self) -> str:
        return (
            f"SpanTracer(spans={len(self.spans)}, "
            f"instants={len(self.instants)}, tracks={len(self._tracks)})"
        )
