"""Declarative service-level objectives with windowed burn rates.

The readiness/SLO plane's judgement half: a wave produces scalar
observations (``ready_p99_s``, ``deploy_p99_s``, ``degraded``,
``poisoned_commits``) and, when a :class:`~repro.obs.timeline.
TimelineSampler` rode along, per-event series (each deployment's
readiness latency at the instant it became ready).  An
:class:`Objective` declares what "healthy" means for one observation;
:func:`evaluate` checks every objective and, where a series is named,
computes *windowed burn rates*: the series is cut into fixed
virtual-time windows and each window's violating fraction is divided by
the objective's error budget.  A burn rate of 1.0 means the window
consumed its budget exactly; above 1.0 the objective is burning faster
than budget and the objective fails even if the end-of-run scalar
squeaked under the threshold — the standard SRE alerting shape, on
virtual time.

Everything here is pure arithmetic over already-recorded numbers: no
clocks, no RNGs, byte-deterministic outputs (``as_dict`` under
``dump_json``).  This module imports nothing from the rest of
:mod:`repro` beyond its own package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.timeline import TimelineSampler, TimeSeries

#: Supported comparators: ``<=`` for latency/utilization ceilings,
#: ``==`` for exact invariants (``degraded == 0``).
_COMPARATORS = ("<=", "==")


@dataclass(frozen=True)
class Objective:
    """One declarative objective over a wave's observations."""

    #: Key into the observed-values mapping (e.g. ``ready_p99_s``).
    name: str
    threshold: float
    comparator: str = "<="
    #: Timeline series to burn-rate against (None = scalar-only check).
    series: Optional[str] = None
    #: Window width for burn-rate computation, virtual seconds.
    window_s: float = 2.0
    #: Error budget: tolerated violating fraction per window.
    budget: float = 0.05

    def __post_init__(self) -> None:
        if self.comparator not in _COMPARATORS:
            raise ValueError(
                f"objective {self.name!r}: comparator must be one of "
                f"{_COMPARATORS}, got {self.comparator!r}"
            )
        if self.series is not None and self.window_s <= 0:
            raise ValueError(
                f"objective {self.name!r}: window_s must be positive"
            )
        if self.series is not None and not 0.0 < self.budget <= 1.0:
            raise ValueError(
                f"objective {self.name!r}: budget must be in (0, 1]"
            )

    def violates(self, value: float) -> bool:
        """Does one observation break the objective?"""
        if self.comparator == "==":
            return value != self.threshold
        return value > self.threshold


@dataclass(frozen=True)
class ObjectiveOutcome:
    """One evaluated objective: observation, verdict, burn accounting."""

    name: str
    comparator: str
    threshold: float
    observed: float
    ok: bool
    #: Scalar burn: fraction of the threshold consumed (``<=``) or a
    #: 0/1 violation flag (``==``); with a series, the *worst window's*
    #: violating-fraction / budget ratio.
    burn_rate: float
    #: Number of burn windows evaluated (0 when no series was wired).
    windows: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "comparator": self.comparator,
            "threshold": self.threshold,
            "observed": self.observed,
            "ok": self.ok,
            "burn_rate": self.burn_rate,
            "windows": self.windows,
        }


@dataclass(frozen=True)
class SloReport:
    """Every objective's outcome for one wave."""

    outcomes: Tuple[ObjectiveOutcome, ...]

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    def violated(self) -> List[str]:
        return [outcome.name for outcome in self.outcomes if not outcome.ok]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "violated": self.violated(),
            "objectives": [outcome.as_dict() for outcome in self.outcomes],
        }


def window_burn_rates(
    series: TimeSeries, objective: Objective
) -> List[float]:
    """Per-window burn rates of ``series`` against ``objective``.

    The series' span ``[t_first, t_last]`` is cut into consecutive
    ``window_s``-wide windows anchored at the first point.  Each
    window's burn is its violating fraction over the objective's
    budget: 0.0 = clean window, 1.0 = budget exactly consumed, above
    1.0 = burning faster than budget.  Empty series yield no windows.
    """
    if not series.points:
        return []
    t0 = series.points[0][0]
    buckets: Dict[int, List[float]] = {}
    for at_s, value in series.points:
        buckets.setdefault(int((at_s - t0) / objective.window_s), []).append(
            value
        )
    rates: List[float] = []
    for index in sorted(buckets):
        values = buckets[index]
        bad = sum(1 for value in values if objective.violates(value))
        rates.append((bad / len(values)) / objective.budget)
    return rates


def _scalar_burn(objective: Objective, observed: float) -> float:
    """Budget consumption of the end-of-run scalar alone."""
    if objective.comparator == "==":
        return 0.0 if not objective.violates(observed) else 1.0
    if objective.threshold > 0:
        return observed / objective.threshold
    return 0.0 if not objective.violates(observed) else 1.0


def evaluate(
    objectives: Sequence[Objective],
    observed: Mapping[str, float],
    sampler: Optional[TimelineSampler] = None,
) -> SloReport:
    """Check every objective against ``observed`` (+ optional timeline).

    Missing observations are hard errors — an SLO silently evaluating
    against nothing would report vacuous health.  When an objective
    names a series and the sampler recorded it, the objective must
    *also* keep every burn window at or under 1.0.
    """
    outcomes: List[ObjectiveOutcome] = []
    for objective in objectives:
        if objective.name not in observed:
            raise KeyError(
                f"objective {objective.name!r} has no observed value; "
                f"have {sorted(observed)}"
            )
        value = float(observed[objective.name])
        ok = not objective.violates(value)
        burn = _scalar_burn(objective, value)
        windows = 0
        if objective.series is not None and sampler is not None:
            series = sampler.series.get(objective.series)
            if series is not None:
                rates = window_burn_rates(series, objective)
                windows = len(rates)
                if rates:
                    burn = max(rates)
                    ok = ok and burn <= 1.0
        outcomes.append(
            ObjectiveOutcome(
                name=objective.name,
                comparator=objective.comparator,
                threshold=objective.threshold,
                observed=value,
                ok=ok,
                burn_rate=burn,
                windows=windows,
            )
        )
    return SloReport(outcomes=tuple(outcomes))
