"""Critical-path analysis over a deploy's span tree.

Given a root span (typically ``deploy``), attribute every microsecond
of its makespan to exactly one phase using *exclusive time*: a span's
duration minus the durations of its direct same-track children.  Since
the children of a serial activity tile their parent's interval, the
exclusive times of the root and all its same-track descendants sum to
the root's duration *by construction* — the per-phase table always adds
up to the deploy total, and whatever the instrumentation did not cover
shows up honestly as the root's own exclusive time (reported as
``coverage``, the fraction of the makespan inside child spans).

The *blocking chain* is the greedy walk from the root through the
longest same-track child at each level — the serialized sequence a
latency optimisation would have to shorten (e.g. "73% of makespan is
serialized fetches of 4 large files").

Spans on other tracks (spawned processes: hedged attempts, prefetch)
overlap the parent in virtual time, so their durations cannot be added
to the parent's without double counting; they are excluded from the
attribution and listed separately as concurrent work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.trace import Span, SpanTracer


@dataclass
class ChainStep:
    """One link of the blocking chain."""

    name: str
    duration_s: float
    share: float  # fraction of the root makespan


@dataclass
class CriticalPathReport:
    """Per-phase latency attribution for one root span."""

    root_name: str
    total_s: float
    #: Exclusive seconds per phase name, descending; sums to ``total_s``.
    phases: Dict[str, float] = field(default_factory=dict)
    #: Spans per phase name (to report counts alongside totals).
    phase_counts: Dict[str, int] = field(default_factory=dict)
    #: Greedy longest-child walk from the root.
    chain: List[ChainStep] = field(default_factory=list)
    #: Fraction of the makespan covered by child spans.
    coverage: float = 0.0
    #: Seconds of overlapping work on spawned tracks (not in ``phases``).
    concurrent_s: float = 0.0

    def phase_sum(self) -> float:
        return sum(self.phases.values())

    def table(self) -> List[Tuple[str, float, int, float]]:
        """Rows of ``(phase, seconds, spans, share)`` for printing."""
        rows = []
        for name, seconds in self.phases.items():
            share = seconds / self.total_s if self.total_s > 0 else 0.0
            rows.append((name, seconds, self.phase_counts.get(name, 0), share))
        return rows


def _root_span(tracer: SpanTracer, root_name: str) -> Optional[Span]:
    for span in tracer.finished_spans():
        if span.name == root_name:
            return span
    return None


def critical_path(
    tracer: SpanTracer, root: object = "deploy"
) -> Optional[CriticalPathReport]:
    """Analyse the span tree under ``root`` (a name or a ``Span``).

    Returns ``None`` when no finished span matches.
    """
    if isinstance(root, Span):
        root_span: Optional[Span] = root
    else:
        root_span = _root_span(tracer, str(root))
    if root_span is None or root_span.end_s is None:
        return None

    finished = tracer.finished_spans()
    children: Dict[int, List[Span]] = {}
    for span in finished:
        if span.parent_id is not None:
            children.setdefault(span.parent_id, []).append(span)

    report = CriticalPathReport(
        root_name=root_span.name, total_s=root_span.duration_s
    )

    # Exclusive-time attribution over the same-track subtree.
    phases: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    concurrent = 0.0
    stack = [root_span]
    while stack:
        span = stack.pop()
        exclusive = span.duration_s
        for child in children.get(span.id, ()):
            if child.track == span.track:
                exclusive -= child.duration_s
                stack.append(child)
            else:
                concurrent += _subtree_duration(child, children)
        phases[span.name] = phases.get(span.name, 0.0) + exclusive
        counts[span.name] = counts.get(span.name, 0) + 1
    report.phases = dict(
        sorted(phases.items(), key=lambda kv: (-kv[1], kv[0]))
    )
    report.phase_counts = counts
    report.concurrent_s = concurrent

    if report.total_s > 0:
        root_exclusive = phases.get(root_span.name, 0.0)
        report.coverage = 1.0 - root_exclusive / report.total_s

    # Blocking chain: greedy longest same-track child.
    cursor = root_span
    while True:
        same_track = [
            c for c in children.get(cursor.id, ()) if c.track == cursor.track
        ]
        if not same_track:
            break
        cursor = max(same_track, key=lambda c: (c.duration_s, -c.id))
        share = (
            cursor.duration_s / report.total_s if report.total_s > 0 else 0.0
        )
        report.chain.append(
            ChainStep(cursor.name, cursor.duration_s, share)
        )
    return report


def _subtree_duration(span: Span, children: Dict[int, List[Span]]) -> float:
    """A spawned subtree's own duration (children overlap; don't add)."""
    return span.duration_s


def format_report(report: CriticalPathReport) -> str:
    """Human-readable per-phase table + blocking chain."""
    lines = [
        f"critical path of {report.root_name!r}: "
        f"total {report.total_s:.6f}s, coverage {report.coverage:.1%}"
    ]
    lines.append(f"{'phase':<16} {'seconds':>12} {'spans':>6} {'share':>7}")
    for name, seconds, count, share in report.table():
        lines.append(f"{name:<16} {seconds:>12.6f} {count:>6} {share:>6.1%}")
    lines.append(
        f"{'(sum)':<16} {report.phase_sum():>12.6f}"
    )
    if report.concurrent_s > 0:
        lines.append(
            f"concurrent work on spawned tracks: {report.concurrent_s:.6f}s"
        )
    if report.chain:
        chain = " -> ".join(
            f"{step.name}[{step.share:.0%}]" for step in report.chain
        )
        lines.append(f"blocking chain: {report.root_name} -> {chain}")
    return "\n".join(lines)
