"""Byte-deterministic exporters: Chrome ``trace_event`` JSON + metrics.

:func:`chrome_trace` renders a :class:`~repro.obs.trace.SpanTracer`'s
recording in the Chrome ``trace_event`` format (the ``traceEvents``
array flavour), which both ``chrome://tracing`` and Perfetto load
directly: one ``M`` thread-name metadata record per track, one ``X``
complete event per finished span, and one ``i`` instant per point
event.  Virtual seconds map to microseconds (the format's native unit).

All JSON is serialized with sorted keys and no whitespace, so two
identical simulation runs produce byte-identical files — the property
``scripts/check.sh`` diffs against.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import TimelineSampler, chrome_counter_events
from repro.obs.trace import SpanTracer

#: Virtual seconds → trace_event microseconds.
_US = 1_000_000.0


def chrome_trace(
    tracer: SpanTracer, sampler: Optional[TimelineSampler] = None
) -> Dict[str, Any]:
    """The tracer's recording as a Chrome ``trace_event`` object.

    Pass a :class:`~repro.obs.timeline.TimelineSampler` to append its
    gauge series as counter tracks (``ph: "C"``) after the span and
    instant events — Perfetto renders them as per-name counter plots
    under the same process.
    """
    events: List[Dict[str, Any]] = []
    for track in tracer.tracks():
        events.append(
            {
                "args": {"name": track.name},
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": track.index,
            }
        )
    for span in tracer.finished_spans():
        args: Dict[str, Any] = {"span_id": span.id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        for key, value in span.labels.items():
            args[key] = value
        events.append(
            {
                "args": args,
                "dur": span.duration_s * _US,
                "name": span.name,
                "ph": "X",
                "pid": 1,
                "tid": span.track,
                "ts": span.start_s * _US,
            }
        )
    for instant in tracer.instants:
        events.append(
            {
                "args": dict(instant.labels),
                "name": instant.name,
                "ph": "i",
                "pid": 1,
                "s": "t",
                "tid": instant.track,
                "ts": instant.at_s * _US,
            }
        )
    if sampler is not None:
        events.extend(chrome_counter_events(sampler))
    return {"displayTimeUnit": "ms", "traceEvents": events}


def metrics_snapshot(registry: MetricsRegistry) -> Dict[str, Any]:
    """The registry's flat snapshot (alias kept for export symmetry)."""
    return registry.snapshot()


def dump_json(obj: Any) -> str:
    """Canonical JSON: sorted keys, no whitespace → byte-deterministic."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def trace_json(tracer: SpanTracer) -> str:
    """:func:`chrome_trace` serialized canonically."""
    return dump_json(chrome_trace(tracer))
