"""Labeled metrics: counters, gauges, fixed-bucket histograms, registry.

Two complementary halves:

* **Instruments** — :class:`Counter`, :class:`Gauge`, and
  :class:`Histogram`, created on demand through the registry and keyed
  by ``(name, labels)``;
* **Stat groups** — the tree's existing stats dataclasses (RPC, pool,
  HA, faults, journal) subclass :class:`MetricSet` and register with the
  same registry, so one :meth:`MetricsRegistry.reset` zeroes *every*
  counter in the system and one :meth:`MetricsRegistry.snapshot` dumps
  them all under a flat, deterministic naming scheme::

      name{label=value,...}            counters and gauges
      name.field{label=value,...}      stat-group fields
      name.le_<bound> / .sum / .count  histogram components

:class:`MetricSet.reset` works by rebuilding a pristine instance and
copying its state over — no per-field reflection — so a newly added
counter field can never be silently left out of a reset path, which is
the drift the earlier reflection helper existed to prevent.

This module imports nothing from the rest of :mod:`repro`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def snapshot_into(self, key: str, out: Dict[str, Any]) -> None:
        out[key] = self.value


class Gauge:
    """A value that can move in either direction."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def reset(self) -> None:
        self.value = 0.0

    def snapshot_into(self, key: str, out: Dict[str, Any]) -> None:
        out[key] = self.value


def _format_bound(bound: float) -> str:
    return f"{bound:g}"


class Histogram:
    """A fixed-bucket histogram with inclusive upper bounds.

    ``bounds`` are ascending upper edges; a value ``v`` lands in the
    first bucket with ``v <= bound`` (so a value exactly on a boundary
    counts in that bucket), and values above the last bound land in the
    implicit ``+inf`` overflow bucket.  Cumulative ``sum`` and ``count``
    ride along for mean computation.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Sequence[float]) -> None:
        ordered = tuple(float(b) for b in bounds)
        if not ordered:
            raise ValueError("a histogram needs at least one bucket bound")
        if any(b >= a for b, a in zip(ordered, ordered[1:])):
            raise ValueError(f"bucket bounds must be ascending: {ordered}")
        self.bounds = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def quantile(self, q: float) -> float:
        """Nearest-bucket upper-edge estimate of the ``q``-quantile.

        Walks the cumulative counts to the nearest-rank observation and
        returns that bucket's *upper edge* — a conservative (never
        under-reporting) tail estimate, which is the right bias for SLO
        checks.  An empty histogram reports 0.0 (the wave-report empty
        sentinel); a rank landing in the ``+inf`` overflow bucket
        reports ``inf``, making "the tail escaped the instrumented
        range" impossible to mistake for health.

        Rank semantics match :func:`repro.common.stats.percentile`
        (nearest rank, with the ceil taken against the intended decimal
        value of ``q`` rather than its binary float representation, so
        q=0.999 over 1000 observations is rank 999, not 1000).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile wants q in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        scaled = q * self.count
        nearest = round(scaled)
        if abs(scaled - nearest) <= 1e-9 * max(1.0, nearest):
            rank = nearest
        else:
            rank = int(scaled) + 1
        rank = max(1, min(rank, self.count))
        cumulative = 0
        for index, bound in enumerate(self.bounds):
            cumulative += self.counts[index]
            if cumulative >= rank:
                return bound
        return float("inf")

    def bucket_counts(self) -> Dict[str, int]:
        """Per-bucket counts keyed by formatted bound (plus ``inf``)."""
        out = {
            _format_bound(bound): self.counts[index]
            for index, bound in enumerate(self.bounds)
        }
        out["inf"] = self.counts[-1]
        return out

    def snapshot_into(self, key: str, out: Dict[str, Any]) -> None:
        base, _, labels = key.partition("{")
        suffix = f"{{{labels}" if labels else ""
        for bound, count in self.bucket_counts().items():
            out[f"{base}.le_{bound}{suffix}"] = count
        out[f"{base}.sum{suffix}"] = self.sum
        out[f"{base}.count{suffix}"] = self.count


class MetricSet:
    """Mixin giving a stats object uniform reset/snapshot behaviour.

    Subclasses are plain (data)classes whose numeric attributes are the
    metrics.  ``reset`` rebuilds a default-constructed instance and
    copies its attribute dict over, so *every* field — present and
    future — returns to its declared default without any field
    enumeration to forget one.
    """

    def reset(self) -> None:
        self.__dict__.update(type(self)().__dict__)

    def metrics(self) -> Dict[str, Any]:
        """Public numeric attributes, in declaration order."""
        return {
            name: value
            for name, value in vars(self).items()
            if not name.startswith("_")
            and isinstance(value, (int, float))
            and not isinstance(value, bool)
        }


#: A callback group: ``snapshot()`` returns ``field → value``; ``reset``
#: is optional (derived/externally-owned values skip it).
_Callback = Tuple[Callable[[], Dict[str, Any]], Optional[Callable[[], None]]]


def _label_suffix(labels: Dict[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{{{inner}}}"


class MetricsRegistry:
    """One reset and one snapshot for every metric in the system.

    Instruments are get-or-create by ``(name, labels)``; stat groups and
    callbacks register under the same key space with *replace* semantics
    (a fresh client re-registers its pool and journal over the old
    ones).  :meth:`snapshot` returns a flat ``key → number`` dict with
    deterministically sorted keys, ready for JSON dumping.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}
        self._groups: Dict[str, MetricSet] = {}
        self._callbacks: Dict[str, _Callback] = {}

    # -- instruments -------------------------------------------------------

    def _instrument(
        self, cls: type, name: str, labels: Dict[str, Any], *args: Any
    ) -> Any:
        key = name + _label_suffix(labels)
        existing = self._instruments.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {key!r} already registered as "
                    f"{type(existing).__name__}, not {cls.__name__}"
                )
            return existing
        instrument = cls(*args)
        self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._instrument(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._instrument(Gauge, name, labels)

    def histogram(
        self, name: str, *, buckets: Sequence[float], **labels: Any
    ) -> Histogram:
        histogram = self._instrument(Histogram, name, labels, buckets)
        if histogram.bounds != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {name!r} already registered with buckets "
                f"{histogram.bounds}"
            )
        return histogram

    # -- stat groups -------------------------------------------------------

    def register(self, name: str, group: MetricSet, **labels: Any) -> MetricSet:
        """Adopt a stat group (replacing any previous one at this key)."""
        if not isinstance(group, MetricSet):
            raise TypeError(
                f"register() wants a MetricSet, got {type(group).__name__}; "
                f"use register_callback for ad-hoc sources"
            )
        self._groups[name + _label_suffix(labels)] = group
        return group

    def register_callback(
        self,
        name: str,
        snapshot: Callable[[], Dict[str, Any]],
        *,
        reset: Optional[Callable[[], None]] = None,
        **labels: Any,
    ) -> None:
        """Adopt an external metric source (breaker trips, retry spend).

        ``reset=None`` marks a derived/externally-owned value that a
        registry reset must not touch (e.g. circuit-breaker trip counts,
        which belong to the breaker's lifecycle, not the experiment's).
        """
        self._callbacks[name + _label_suffix(labels)] = (snapshot, reset)

    def groups(self) -> List[str]:
        return sorted(self._groups)

    # -- the single reset / snapshot protocol ------------------------------

    def reset(self) -> None:
        """Zero every instrument, group, and resettable callback."""
        for instrument in self._instruments.values():
            instrument.reset()
        for group in self._groups.values():
            group.reset()
        for _, reset in self._callbacks.values():
            if reset is not None:
                reset()

    def snapshot(self) -> Dict[str, Any]:
        """Flat ``key → number`` view of everything, keys sorted."""
        out: Dict[str, Any] = {}
        for key, instrument in self._instruments.items():
            instrument.snapshot_into(key, out)
        for key, group in self._groups.items():
            base, _, labels = key.partition("{")
            suffix = f"{{{labels}" if labels else ""
            for field, value in group.metrics().items():
                out[f"{base}.{field}{suffix}"] = value
        for key, (snapshot, _) in self._callbacks.items():
            base, _, labels = key.partition("{")
            suffix = f"{{{labels}" if labels else ""
            for field, value in snapshot().items():
                out[f"{base}.{field}{suffix}"] = value
        return dict(sorted(out.items()))

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(instruments={len(self._instruments)}, "
            f"groups={len(self._groups)}, callbacks={len(self._callbacks)})"
        )
