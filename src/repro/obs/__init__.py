"""Simulation-native telemetry: spans, metrics, exporters, critical path.

The observability plane the evaluation figures lean on.  Four pieces:

* :mod:`repro.obs.trace` — nestable virtual-time spans with parent ids
  and per-process tracks, recorded at zero virtual-time cost;
* :mod:`repro.obs.metrics` — labeled counters, gauges, and fixed-bucket
  histograms behind one ``reset()``/``snapshot()`` registry that also
  adopts the existing stats dataclasses (RPC, pool, HA, faults);
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (Perfetto) and
  a flat metrics-JSON dump, both byte-deterministic;
* :mod:`repro.obs.critical` — critical-path analysis over a deploy's
  span tree (per-phase latency attribution that sums to the total).

This package imports nothing from the rest of :mod:`repro`, so every
layer (the clock included) may depend on it without cycles.
"""

from repro.obs.critical import CriticalPathReport, critical_path, format_report
from repro.obs.export import (
    chrome_trace,
    dump_json,
    metrics_snapshot,
    trace_json,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricSet,
    MetricsRegistry,
)
from repro.obs.trace import Span, SpanTracer

__all__ = [
    "Counter",
    "CriticalPathReport",
    "Gauge",
    "Histogram",
    "MetricSet",
    "MetricsRegistry",
    "Span",
    "SpanTracer",
    "chrome_trace",
    "critical_path",
    "dump_json",
    "format_report",
    "metrics_snapshot",
    "trace_json",
]
