"""Simulation-native telemetry: spans, metrics, exporters, critical path.

The observability plane the evaluation figures lean on.  Six pieces:

* :mod:`repro.obs.trace` — nestable virtual-time spans with parent ids
  and per-process tracks, recorded at zero virtual-time cost;
* :mod:`repro.obs.metrics` — labeled counters, gauges, and fixed-bucket
  histograms behind one ``reset()``/``snapshot()`` registry that also
  adopts the existing stats dataclasses (RPC, pool, HA, faults);
* :mod:`repro.obs.timeline` — a deterministic virtual-time sampler
  process recording gauge series over a wave (spawned only when
  attached, so the detached path is byte-identical);
* :mod:`repro.obs.slo` — declarative objectives with windowed
  burn-rate evaluation over a wave's series;
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (Perfetto,
  counter tracks included) and a flat metrics-JSON dump, both
  byte-deterministic;
* :mod:`repro.obs.critical` — critical-path analysis over a deploy's
  span tree (per-phase latency attribution that sums to the total).

This package imports nothing from the rest of :mod:`repro`, so every
layer (the clock included) may depend on it without cycles.
"""

from repro.obs.critical import CriticalPathReport, critical_path, format_report
from repro.obs.export import (
    chrome_trace,
    dump_json,
    metrics_snapshot,
    trace_json,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricSet,
    MetricsRegistry,
)
from repro.obs.slo import (
    Objective,
    ObjectiveOutcome,
    SloReport,
    evaluate,
    window_burn_rates,
)
from repro.obs.timeline import (
    NULL_TIMELINE,
    NullTimelineSampler,
    TimeSeries,
    TimelineSampler,
    TimelineStats,
    chrome_counter_events,
)
from repro.obs.trace import Span, SpanTracer

__all__ = [
    "Counter",
    "CriticalPathReport",
    "Gauge",
    "Histogram",
    "MetricSet",
    "MetricsRegistry",
    "NULL_TIMELINE",
    "NullTimelineSampler",
    "Objective",
    "ObjectiveOutcome",
    "SloReport",
    "Span",
    "SpanTracer",
    "TimeSeries",
    "TimelineSampler",
    "TimelineStats",
    "chrome_counter_events",
    "chrome_trace",
    "critical_path",
    "dump_json",
    "evaluate",
    "format_report",
    "metrics_snapshot",
    "trace_json",
    "window_burn_rates",
]
