"""Deterministic virtual-time time-series sampling (the SLO plane's eyes).

The span tracer answers "where did *one* deploy's virtual time go"; this
module answers "what did the *system* look like over virtual time while
a wave ran".  A :class:`TimelineSampler` is a generator process spawned
inside a wave's scheduler: at a seeded-jittered cadence it wakes, reads
every registered probe (in-flight fetches, pool/tier cache bytes,
admission-gate depth, per-link utilization, breaker states, journal
length — whatever callables the caller wires in), and appends one point
per probe to an append-only :class:`TimeSeries`.

Discipline mirrors :class:`~repro.obs.trace.SpanTracer`'s null-object
contract, with one sharpening: *detached means no process exists at
all*.  Even a pure sleeper would consume scheduler sequence numbers and
shift ``events_processed``, so the wave helpers only spawn the sampler
when one is passed — the detached code path is byte-for-byte the
pre-sampler code path.  When attached, the sampler reads shared state
but never advances the clock outside its own sleeps and never touches
any other component's RNG stream, so client virtual times are identical
with and without it (``scripts/check.sh`` double-runs certify the
export bytes).

Exports are canonical JSON (:meth:`TimelineSampler.as_dict` under
``dump_json``) plus Chrome ``trace_event`` counter tracks (``ph: "C"``)
via :func:`chrome_counter_events`, so Perfetto renders the gauge series
under the span timeline.

This module imports nothing from the rest of :mod:`repro`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.obs.metrics import MetricSet

#: Virtual seconds → trace_event microseconds (kept in lockstep with
#: :mod:`repro.obs.export`).
_US = 1_000_000.0


class TimeSeries:
    """An append-only series of ``(virtual_time_s, value)`` points."""

    __slots__ = ("name", "points")

    def __init__(self, name: str) -> None:
        self.name = name
        self.points: List[Tuple[float, float]] = []

    def append(self, at_s: float, value: float) -> None:
        self.points.append((at_s, float(value)))

    def __len__(self) -> int:
        return len(self.points)

    def times(self) -> List[float]:
        return [at_s for at_s, _ in self.points]

    def values(self) -> List[float]:
        return [value for _, value in self.points]

    def last(self) -> Optional[float]:
        return self.points[-1][1] if self.points else None

    def as_list(self) -> List[List[float]]:
        """JSON-ready ``[[t, v], ...]`` in append order."""
        return [[at_s, value] for at_s, value in self.points]

    def __repr__(self) -> str:
        return f"TimeSeries({self.name!r}, points={len(self.points)})"


@dataclass
class TimelineStats(MetricSet):
    """Sampler accounting, registered as the ``timeline`` metrics group."""

    #: Sampler wakes that recorded a row of gauge points.
    samples: int = 0
    #: Individual gauge points appended across all sampled series.
    points: int = 0
    #: Event points recorded through :meth:`TimelineSampler.record`.
    events: int = 0


class NullTimelineSampler:
    """The detached sampler: every operation is a free no-op.

    The same null-object discipline as ``NULL_SPAN`` — wave code can
    call ``sampler.record(...)`` unconditionally and pay nothing when
    detached.  It deliberately has no ``run``: detached also means no
    process is ever spawned, so the scheduler's event stream is
    untouched.
    """

    __slots__ = ()

    attached = False

    def sample(self) -> None:
        return None

    def record(self, name: str, at_s: float, value: float) -> None:
        return None

    def stop(self) -> None:
        return None


#: Shared detached sampler (allocation-free, like ``NULL_SPAN``).
NULL_TIMELINE = NullTimelineSampler()


class TimelineSampler:
    """Samples gauge probes into time series at a seeded-jittered cadence.

    ``period_s`` is the base cadence; each sleep is jittered by up to
    ``±jitter`` (fractional) from a dedicated seeded RNG, so samples do
    not phase-lock with periodic simulation activity yet remain fully
    deterministic run to run.  Spawn :meth:`run` as a scheduler process
    (``scheduler.spawn(sampler.run, name="timeline")``), and call
    :meth:`stop` once the observed work is done; the sampler exits on
    its next wake without recording further rows.
    """

    attached = True

    def __init__(
        self,
        clock: Any,
        *,
        period_s: float = 0.25,
        jitter: float = 0.2,
        seed: str = "timeline",
        stats: Optional[TimelineStats] = None,
    ) -> None:
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.clock = clock
        self.period_s = float(period_s)
        self.jitter = float(jitter)
        self.seed = str(seed)
        self._rng = random.Random(f"timeline:{seed}")
        self._probes: List[Tuple[str, Callable[[], float]]] = []
        self.series: Dict[str, TimeSeries] = {}
        self.stats = stats if stats is not None else TimelineStats()
        self._stopped = False

    # -- wiring ------------------------------------------------------------

    def add_probe(self, name: str, probe: Callable[[], float]) -> TimeSeries:
        """Register a gauge probe; every sample appends one point."""
        if any(existing == name for existing, _ in self._probes):
            raise ValueError(f"probe {name!r} already registered")
        self._probes.append((name, probe))
        return self.series_for(name)

    def series_for(self, name: str) -> TimeSeries:
        """Get-or-create the named series (probe or event)."""
        series = self.series.get(name)
        if series is None:
            series = TimeSeries(name)
            self.series[name] = series
        return series

    # -- recording ---------------------------------------------------------

    def sample(self) -> None:
        """Read every probe once, appending points at the current time."""
        at_s = self.clock.now
        for name, probe in self._probes:
            self.series[name].append(at_s, probe())
        self.stats.samples += 1
        self.stats.points += len(self._probes)

    def record(self, name: str, at_s: float, value: float) -> None:
        """Append one event point (e.g. a deployment's readiness latency,
        timestamped at the instant it became ready)."""
        self.series_for(name).append(at_s, value)
        self.stats.events += 1

    def next_delay(self) -> float:
        """The next seeded-jittered sleep (one RNG draw per wake)."""
        if not self.jitter:
            return self.period_s
        return self.period_s * (
            1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        )

    def run(self) -> Iterator[float]:
        """Generator-process body: sleep, sample, repeat until stopped."""
        while True:
            yield self.next_delay()
            if self._stopped:
                return
            self.sample()

    def stop(self) -> None:
        """Ask the sampler to exit on its next wake (no further rows)."""
        self._stopped = True

    # -- export ------------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready summary; canonical under ``dump_json``."""
        return {
            "period_s": self.period_s,
            "jitter": self.jitter,
            "seed": self.seed,
            "samples": self.stats.samples,
            "series": {
                name: series.as_list()
                for name, series in sorted(self.series.items())
            },
        }

    def __repr__(self) -> str:
        return (
            f"TimelineSampler(probes={len(self._probes)}, "
            f"series={len(self.series)}, samples={self.stats.samples})"
        )


def chrome_counter_events(sampler: TimelineSampler) -> List[Dict[str, Any]]:
    """The sampler's series as Chrome ``trace_event`` counter records.

    One ``ph: "C"`` event per point, all on ``tid`` 0 — Perfetto draws
    each named counter as its own track under the process.  Event order
    (series name, then append order) is deterministic, so the export is
    byte-stable across identical runs.
    """
    events: List[Dict[str, Any]] = []
    for name in sorted(sampler.series):
        for at_s, value in sampler.series[name].points:
            events.append(
                {
                    "args": {"value": value},
                    "name": name,
                    "ph": "C",
                    "pid": 1,
                    "tid": 0,
                    "ts": at_s * _US,
                }
            )
    return events
