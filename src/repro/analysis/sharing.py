"""File-sharing statistics across deployments.

§V-D quantifies why the local cache works: "different containers in a
common image series access some common files during deployment and the
proportion of the common files reaches 44.4% of the total accessed
files."  This module computes that statistic — and its byte-weighted
variant — over any set of corpus images.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.common.hashing import Fingerprint
from repro.workloads.corpus import GeneratedImage


@dataclass(frozen=True)
class SharingStats:
    """Common-file statistics over a deployment sequence."""

    deployments: int
    accessed_files: int
    common_files: int
    accessed_bytes: int
    common_bytes: int

    @property
    def common_file_fraction(self) -> float:
        """Fraction of accessed files already fetched by an earlier
        deployment (the paper's 44.4%)."""
        if self.accessed_files == 0:
            return 0.0
        return self.common_files / self.accessed_files

    @property
    def common_byte_fraction(self) -> float:
        if self.accessed_bytes == 0:
            return 0.0
        return self.common_bytes / self.accessed_bytes


def deployment_sharing(images: Sequence[GeneratedImage]) -> SharingStats:
    """Replay the images' startup traces in order, counting repeats.

    A file is *common* when its content fingerprint was already accessed
    by an earlier deployment in the sequence — exactly the accesses a
    shared level-1 cache turns into hits.
    """
    seen: Set[Fingerprint] = set()
    accessed_files = 0
    common_files = 0
    accessed_bytes = 0
    common_bytes = 0
    for generated in images:
        tree = generated.image.flatten()
        for path, size in generated.trace.accesses:
            fingerprint = tree.read_blob(path).fingerprint
            accessed_files += 1
            accessed_bytes += size
            if fingerprint in seen:
                common_files += 1
                common_bytes += size
            else:
                seen.add(fingerprint)
    return SharingStats(
        deployments=len(images),
        accessed_files=accessed_files,
        common_files=common_files,
        accessed_bytes=accessed_bytes,
        common_bytes=common_bytes,
    )


def per_series_sharing(
    by_series: Dict[str, List[GeneratedImage]]
) -> Dict[str, SharingStats]:
    """Sharing statistics within each series' version sequence."""
    return {
        series: deployment_sharing(images)
        for series, images in by_series.items()
    }
