"""Figure 2: redundancy of necessary data within image series.

"We study the redundancy among sets of the necessary files required to
launch containers from images in a common image series … On average, the
redundancy ratio is 39.9%", with Database (56.0%) and Application
Platform (57.4%) highest (§II-D).  A high ratio means a local file cache
lets later deployments of the series skip most downloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from repro.common.hashing import Fingerprint
from repro.workloads.corpus import Corpus, GeneratedImage


@dataclass(frozen=True)
class SeriesRedundancy:
    """Necessary-data redundancy within one image series."""

    series: str
    category: str
    total_necessary_bytes: int
    unique_necessary_bytes: int

    @property
    def redundancy_ratio(self) -> float:
        """The redundant share of all necessary bytes across versions."""
        if self.total_necessary_bytes == 0:
            return 0.0
        return 1.0 - self.unique_necessary_bytes / self.total_necessary_bytes


def series_redundancy(images: Sequence[GeneratedImage]) -> SeriesRedundancy:
    """Redundancy over one series' startup traces, deduped by content.

    Unique bytes are counted by true file fingerprint (the image's blob at
    the trace path), matching what a content-addressed local cache would
    deduplicate.
    """
    if not images:
        raise ValueError("series_redundancy requires at least one image")
    total = 0
    seen: Set[Fingerprint] = set()
    unique = 0
    for generated in images:
        tree = generated.image.flatten()
        for path, size in generated.trace.accesses:
            total += size
            blob = tree.read_blob(path)
            if blob.fingerprint not in seen:
                seen.add(blob.fingerprint)
                unique += blob.size
    return SeriesRedundancy(
        series=images[0].spec.name,
        category=images[0].category,
        total_necessary_bytes=total,
        unique_necessary_bytes=unique,
    )


def category_redundancy(corpus: Corpus) -> Dict[str, float]:
    """Average per-series redundancy ratio per category, plus 'Average'.

    Fig. 2 reports one bar per category and an overall average.
    """
    per_series: List[SeriesRedundancy] = [
        series_redundancy(images) for images in corpus.by_series.values()
    ]
    by_category: Dict[str, List[float]] = {}
    for result in per_series:
        by_category.setdefault(result.category, []).append(result.redundancy_ratio)
    summary = {
        category: sum(ratios) / len(ratios)
        for category, ratios in by_category.items()
    }
    all_ratios = [r.redundancy_ratio for r in per_series]
    summary["Average"] = sum(all_ratios) / len(all_ratios)
    return summary
