"""Corpus analyses backing the motivation section (Table II, Fig. 2)."""

from repro.analysis.dedup_table import DedupTable, compute_dedup_table
from repro.analysis.redundancy import (
    SeriesRedundancy,
    category_redundancy,
    series_redundancy,
)

__all__ = [
    "DedupTable",
    "compute_dedup_table",
    "SeriesRedundancy",
    "series_redundancy",
    "category_redundancy",
]
