"""Table II: storage usage and object counts per dedup granularity."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.dedup.engines import (
    DedupReport,
    chunk_level_dedup,
    file_level_dedup,
    layer_level_dedup,
    no_dedup,
)
from repro.docker.image import Image


@dataclass(frozen=True)
class DedupTable:
    """The four columns of Table II."""

    none: DedupReport
    layer: DedupReport
    file: DedupReport
    chunk: DedupReport

    def rows(self) -> Sequence[tuple]:
        """(granularity, storage bytes, object count) rows in paper order."""
        return [
            ("No", self.none.storage_bytes, self.none.object_count),
            ("Layer-level", self.layer.storage_bytes, self.layer.object_count),
            ("File-level", self.file.storage_bytes, self.file.object_count),
            ("Chunk-level", self.chunk.storage_bytes, self.chunk.object_count),
        ]

    def reduction_vs_none(self) -> Dict[str, float]:
        """Fractional space reduction relative to no dedup (§II-D quotes
        74% / 87% / 88% for layer / file / chunk)."""
        return {
            "layer": self.layer.saving_vs(self.none),
            "file": self.file.saving_vs(self.none),
            "chunk": self.chunk.saving_vs(self.none),
        }

    @property
    def chunk_object_blowup(self) -> float:
        """Unique-object growth of chunk- over file-level dedup (16.4×
        in the paper)."""
        if self.file.object_count == 0:
            return 0.0
        return self.chunk.object_count / self.file.object_count


def compute_dedup_table(images: Sequence[Image]) -> DedupTable:
    """Run all four dedup passes over a corpus."""
    return DedupTable(
        none=no_dedup(images),
        layer=layer_level_dedup(images),
        file=file_level_dedup(images),
        chunk=chunk_level_dedup(images),
    )
