"""A minimal request/response RPC layer over simulated links.

All Gear components "communicate with each other via HTTP" (§IV).  The
reproduction's equivalent is :class:`RpcTransport`: named endpoints
register handlers; calls pay link costs for the request and the response
payload, then execute the handler synchronously.  This keeps the system
architecture honest (registries are *services*, not in-process objects the
client pokes at) while remaining deterministic.

When the underlying link is a :class:`~repro.net.faults.FaultyLink` the
transport becomes the resilience layer real lazy loaders need: attempts
that time out, hit an outage, or deliver a corrupt payload are retried
under the configured :class:`~repro.net.resilience.RetryPolicy`, with
backoff charged to the virtual clock and every failure accounted in the
endpoint's :class:`RpcStats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.common.errors import CorruptPayloadError, TransportError
from repro.net.faults import FaultyLink
from repro.net.link import Link
from repro.net.resilience import RetryPolicy
from repro.obs.metrics import MetricSet

Handler = Callable[..., Tuple[Any, int]]
"""An RPC handler returns ``(result, response_payload_bytes)``."""


@dataclass
class RpcStats(MetricSet):
    """Per-endpoint call accounting.

    ``calls`` counts *successful* calls (the historical meaning);
    ``errors`` counts failed attempts of any kind — transport faults and
    handler exceptions alike — so benchmarks cannot under-report traffic
    by only looking at successes.  ``retries`` counts the re-attempts the
    retry policy issued and ``giveups`` the calls that exhausted it.

    ``reset()``/``metrics()`` come from :class:`MetricSet`, so the group
    plugs into the :class:`~repro.obs.metrics.MetricsRegistry` protocol.
    """

    calls: int = 0
    request_bytes: int = 0
    response_bytes: int = 0
    errors: int = 0
    retries: int = 0
    giveups: int = 0


class RpcEndpoint:
    """A named service exposing methods over a link."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._methods: Dict[str, Handler] = {}
        self.stats = RpcStats()

    def register(self, method: str, handler: Handler) -> None:
        """Expose ``handler`` as ``method`` (overwriting is an error)."""
        if method in self._methods:
            raise TransportError(
                f"method {method!r} already registered on {self.name!r}"
            )
        self._methods[method] = handler

    def handle(self, method: str, *args: Any, **kwargs: Any) -> Tuple[Any, int]:
        handler = self._methods.get(method)
        if handler is None:
            raise TransportError(f"{self.name!r} has no method {method!r}")
        return handler(*args, **kwargs)

    def methods(self) -> Tuple[str, ...]:
        return tuple(sorted(self._methods))


class RpcTransport:
    """Routes calls from a client to named endpoints over a link."""

    #: Approximate bytes of request framing (method name, small args).
    REQUEST_FRAME_BYTES = 256

    def __init__(
        self, link: Link, *, retry_policy: Optional[RetryPolicy] = None
    ) -> None:
        self.link = link
        self.retry_policy = retry_policy
        self._endpoints: Dict[str, RpcEndpoint] = {}

    def bind(self, endpoint: RpcEndpoint) -> RpcEndpoint:
        if endpoint.name in self._endpoints:
            raise TransportError(f"endpoint {endpoint.name!r} already bound")
        self._endpoints[endpoint.name] = endpoint
        return endpoint

    def endpoint(self, name: str) -> RpcEndpoint:
        endpoint = self._endpoints.get(name)
        if endpoint is None:
            raise TransportError(f"no endpoint named {name!r}")
        return endpoint

    def reset_stats(self) -> None:
        """Reset every bound endpoint's call accounting."""
        for endpoint in self._endpoints.values():
            endpoint.stats.reset()

    def has_endpoint(self, name: str) -> bool:
        """Whether an endpoint named ``name`` is bound to this transport.

        The supported existence probe — callers must not catch
        :class:`~repro.common.errors.TransportError` from
        :meth:`endpoint` to test for presence, since that class also
        covers wire faults.
        """
        return name in self._endpoints

    def call(
        self,
        endpoint_name: str,
        method: str,
        *args: Any,
        request_payload_bytes: int = 0,
        label: Optional[str] = None,
        **kwargs: Any,
    ) -> Any:
        """Invoke ``method`` on the named endpoint, paying link costs.

        ``request_payload_bytes`` covers uploads (e.g. pushing a Gear
        file); the handler's declared response size covers downloads.

        Transport faults (timeouts, outages, corrupt payloads) are
        retried under :attr:`retry_policy`; handler exceptions propagate
        immediately.  Retries re-execute the handler, which is safe
        because every service verb here is idempotent (content-addressed
        stores deduplicate re-uploads, downloads are pure reads).
        """
        endpoint = self.endpoint(endpoint_name)
        tag = label or f"{endpoint_name}.{method}"
        policy = self.retry_policy
        faulty = self.link if isinstance(self.link, FaultyLink) else None
        start = self.link.clock.now
        attempt = 1
        previous_backoff: Optional[float] = None
        while True:
            try:
                result, response_bytes = self._attempt(
                    endpoint, method, tag, faulty,
                    request_payload_bytes, args, kwargs,
                )
            except TransportError as error:
                endpoint.stats.errors += 1
                elapsed = self.link.clock.now - start
                if policy is None or not policy.should_retry(
                    error, attempt=attempt, elapsed_s=elapsed
                ):
                    if policy is not None and policy.is_retryable(error):
                        endpoint.stats.giveups += 1
                    raise
                backoff = policy.next_backoff(previous_backoff)
                policy.charge(backoff)
                self.link.clock.advance(backoff, f"{tag}:backoff")
                endpoint.stats.retries += 1
                previous_backoff = backoff
                attempt += 1
                continue
            except Exception:
                # Handler failure (NotFound, Integrity, …): not a wire
                # problem, never retried, but the traffic still happened.
                endpoint.stats.errors += 1
                raise
            endpoint.stats.calls += 1
            endpoint.stats.request_bytes += request_payload_bytes
            endpoint.stats.response_bytes += response_bytes
            return result

    def _attempt(
        self,
        endpoint: RpcEndpoint,
        method: str,
        tag: str,
        faulty: Optional[FaultyLink],
        request_payload_bytes: int,
        args: Tuple[Any, ...],
        kwargs: Dict[str, Any],
    ) -> Tuple[Any, int]:
        """One wire round-trip: request, handler, response, checksum."""
        if faulty is not None:
            faulty.begin_call(endpoint.name)
        try:
            self.link.transfer(
                self.REQUEST_FRAME_BYTES + request_payload_bytes,
                label=f"{tag}:request",
            )
            result, response_bytes = endpoint.handle(method, *args, **kwargs)
            if response_bytes:
                self.link.transfer(response_bytes, label=f"{tag}:response")
            if faulty is not None:
                verdict = faulty.roll_corruption()
                if verdict is not None:
                    tampered = (
                        faulty.tamper(result)
                        if verdict == "undetected"
                        else None
                    )
                    if tampered is None:
                        raise CorruptPayloadError(
                            f"response for {tag!r} failed its framing checksum"
                        )
                    result = tampered
            return result, response_bytes
        finally:
            if faulty is not None:
                faulty.end_call()
