"""A minimal request/response RPC layer over simulated links.

All Gear components "communicate with each other via HTTP" (§IV).  The
reproduction's equivalent is :class:`RpcTransport`: named endpoints
register handlers; calls pay link costs for the request and the response
payload, then execute the handler synchronously.  This keeps the system
architecture honest (registries are *services*, not in-process objects the
client pokes at) while remaining deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.common.errors import TransportError
from repro.net.link import Link

Handler = Callable[..., Tuple[Any, int]]
"""An RPC handler returns ``(result, response_payload_bytes)``."""


@dataclass
class RpcStats:
    """Per-endpoint call accounting."""

    calls: int = 0
    request_bytes: int = 0
    response_bytes: int = 0


class RpcEndpoint:
    """A named service exposing methods over a link."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._methods: Dict[str, Handler] = {}
        self.stats = RpcStats()

    def register(self, method: str, handler: Handler) -> None:
        """Expose ``handler`` as ``method`` (overwriting is an error)."""
        if method in self._methods:
            raise TransportError(
                f"method {method!r} already registered on {self.name!r}"
            )
        self._methods[method] = handler

    def handle(self, method: str, *args: Any, **kwargs: Any) -> Tuple[Any, int]:
        handler = self._methods.get(method)
        if handler is None:
            raise TransportError(f"{self.name!r} has no method {method!r}")
        return handler(*args, **kwargs)

    def methods(self) -> Tuple[str, ...]:
        return tuple(sorted(self._methods))


class RpcTransport:
    """Routes calls from a client to named endpoints over a link."""

    #: Approximate bytes of request framing (method name, small args).
    REQUEST_FRAME_BYTES = 256

    def __init__(self, link: Link) -> None:
        self.link = link
        self._endpoints: Dict[str, RpcEndpoint] = {}

    def bind(self, endpoint: RpcEndpoint) -> RpcEndpoint:
        if endpoint.name in self._endpoints:
            raise TransportError(f"endpoint {endpoint.name!r} already bound")
        self._endpoints[endpoint.name] = endpoint
        return endpoint

    def endpoint(self, name: str) -> RpcEndpoint:
        endpoint = self._endpoints.get(name)
        if endpoint is None:
            raise TransportError(f"no endpoint named {name!r}")
        return endpoint

    def call(
        self,
        endpoint_name: str,
        method: str,
        *args: Any,
        request_payload_bytes: int = 0,
        label: Optional[str] = None,
        **kwargs: Any,
    ) -> Any:
        """Invoke ``method`` on the named endpoint, paying link costs.

        ``request_payload_bytes`` covers uploads (e.g. pushing a Gear
        file); the handler's declared response size covers downloads.
        """
        endpoint = self.endpoint(endpoint_name)
        tag = label or f"{endpoint_name}.{method}"
        self.link.transfer(
            self.REQUEST_FRAME_BYTES + request_payload_bytes,
            label=f"{tag}:request",
        )
        result, response_bytes = endpoint.handle(method, *args, **kwargs)
        if response_bytes:
            self.link.transfer(response_bytes, label=f"{tag}:response")
        endpoint.stats.calls += 1
        endpoint.stats.request_bytes += request_payload_bytes
        endpoint.stats.response_bytes += response_bytes
        return result
