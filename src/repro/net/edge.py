"""Multi-tier edge/P2P distribution of Gear files.

Gear's lazy file-granular pull concentrates every fetch on the registry
tier.  This module models the topology edge deployments actually use
(EdgePier-style P2P across sites, Lambda-style multi-tier caches):

    registry ←WAN→ edge site ←LAN→ nodes

Nodes that already hold a Gear file serve it to site neighbours over the
LAN.  A per-site **tracker** maps fingerprints to the peers that held
them at the last gossip round; fetch resolution walks a failover chain —

    seeded peer selection → site shared cache → registry fallback

— under per-peer :class:`~repro.net.ha.CircuitBreaker`\\ s and the fabric
:class:`~repro.net.resilience.RetryPolicy`, so a dead, stale, or slow
peer costs one bounded round, never a failed deploy.

Robustness semantics:

* **Stale tracker entries** (peer departed or evicted the file after the
  last gossip) are discovered on contact, demoted immediately, and the
  chain falls over to the next tier.
* **Churn** is a seeded join/leave schedule (:class:`ChurnSchedule`)
  replayed by a :class:`ChurnDriver` process during waves.
* **Peer crash mid-serve** reuses :class:`~repro.net.faults.CrashPlan`:
  the in-flight LAN transfer aborts after a partial payload, the peer
  goes offline, and the requester fails over.
* **Byzantine peers** serve well-formed but wrong bytes.  The viewer's
  fingerprint verification quarantines the payload and calls the
  transport's ``report_corrupt_payload`` hook; the fabric attributes the
  payload to the serving peer, blacklists it (breaker forced open,
  tracker entries dropped), and the refetch takes the next tier —
  committed bytes are never poisoned.

Determinism: peer selection, gossip jitter, and churn schedules all draw
from :func:`~repro.common.rng.rng_for` streams, and tracker/cache
bookkeeping charges zero virtual time — with no peers and an empty site
cache the chain degenerates to exactly the single-tier registry call,
byte- and time-identical to :func:`repro.bench.environment.make_testbed`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.common.clock import Process, SimClock
from repro.common.errors import (
    ClientCrash,
    NotFoundError,
    UnavailableError,
)
from repro.common.rng import rng_for
from repro.net.faults import CrashInjector, CrashPlan, CrashPoint
from repro.net.ha import GEAR_ENDPOINT, CircuitBreaker
from repro.net.link import Link
from repro.net.resilience import RETRYABLE_ERRORS, RetryPolicy
from repro.obs.metrics import MetricSet


@dataclass
class EdgeStats(MetricSet):
    """Fleet-wide accounting for the edge distribution fabric.

    One shared instance per fabric (like :class:`~repro.net.ha.HAStats`):
    wave reports diff :meth:`as_dict` snapshots taken before/after.
    """

    #: Gear-file fetches that reached the edge chain (viewer pool misses).
    fetches: int = 0
    #: Fetches served by a site neighbour over the LAN.
    peer_hits: int = 0
    #: Fetches served from the site shared cache.
    site_hits: int = 0
    #: Fetches that fell through to the registry over the WAN.
    registry_fetches: int = 0
    #: Compressed bytes served by peers.
    peer_bytes: int = 0
    #: Compressed bytes served from site caches.
    site_bytes: int = 0
    #: WAN bytes the peer/site tiers absorbed (the egress the registry
    #: would have served in a single-tier topology).
    egress_saved_bytes: int = 0
    #: Tracker entries that turned out wrong on contact (peer gone or
    #: file evicted since the last gossip); each is demoted on the spot.
    stale_resolutions: int = 0
    #: Peer attempts that failed and fell over to the next candidate/tier.
    failovers: int = 0
    #: Whole-chain retry rounds that slept under the fabric RetryPolicy.
    backoffs: int = 0
    #: Chains that exhausted the retry policy.
    giveups: int = 0
    #: Candidates skipped because their breaker was open.
    breaker_skips: int = 0
    #: Peers blacklisted for serving corrupt bytes.
    blacklists: int = 0
    #: Peers that crashed mid-serve (CrashPlan fired).
    peer_crashes: int = 0
    #: Churn events applied.
    joins: int = 0
    leaves: int = 0
    #: Tracker refresh rounds across all sites.
    gossip_rounds: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.metrics())


class EdgePeer:
    """One node's serving side: its shared file pool, exported to the site.

    ``online`` flips with churn; ``byzantine`` makes the peer serve
    deterministic junk under the requested identity; an armed
    :class:`~repro.net.faults.CrashInjector` (``MID_FETCH``) kills the
    peer partway through its *n*-th serve.
    """

    def __init__(self, name: str, pool: Any, *, byzantine: bool = False) -> None:
        self.name = name
        self.pool = pool
        self.online = True
        self.byzantine = byzantine
        self.breaker = CircuitBreaker()
        self.crash: Optional[CrashInjector] = None
        #: Shared fabric stats, wired in by :meth:`EdgeSite.add_peer`.
        self.stats: Optional[EdgeStats] = None
        self.serves = 0
        self.served_bytes = 0

    def arm_crash(self, clock: SimClock, plan: CrashPlan) -> CrashInjector:
        self.crash = CrashInjector(clock, plan)
        return self.crash

    def holds(self, identity: str) -> bool:
        return self.online and self.pool.contains(identity)

    def serve(self, identity: str, link: Link, tag: str) -> Tuple[Any, int]:
        """Serve ``identity`` over ``link``; returns ``(gear_file, wire)``.

        Raises :class:`UnavailableError` when the peer is offline (the
        probe frame still crosses the LAN) or crashes mid-serve, and
        :class:`NotFoundError` when the tracker entry is stale (the file
        was evicted since registration).
        """
        from repro.net.transport import RpcTransport

        link.transfer(RpcTransport.REQUEST_FRAME_BYTES, label=f"{tag}:peer-request")
        if not self.online:
            raise UnavailableError(f"peer {self.name!r} is offline")
        inode = self.pool.peek(identity)
        if inode is None or inode.blob is None:
            raise NotFoundError(f"peer {self.name!r} no longer holds {identity!r}")
        from repro.gear.gearfile import GearFile

        gear_file = GearFile(identity=identity, blob=inode.blob)
        wire = gear_file.compressed_size
        if self.crash is not None and self.crash.take(CrashPoint.MID_FETCH):
            partial = int(wire * self.crash.plan.partial_fraction)
            if partial > 0:
                link.transfer(partial, label=f"{tag}:peer-aborted")
            self.online = False
            if self.stats is not None:
                self.stats.peer_crashes += 1
            try:
                self.crash.fire(CrashPoint.MID_FETCH)
            except ClientCrash:
                pass  # the *peer* died; the requester sees an aborted serve
            raise UnavailableError(f"peer {self.name!r} crashed mid-serve")
        if self.byzantine:
            from repro.blob import Blob

            junk = Blob.from_bytes(
                f"byzantine:{self.name}:{identity}".encode("utf-8")
            )
            link.transfer(wire, label=f"{tag}:peer-payload")
            return GearFile(identity=identity, blob=junk), wire
        link.transfer(wire, label=f"{tag}:peer-payload")
        self.serves += 1
        self.served_bytes += wire
        return gear_file, wire

    def __repr__(self) -> str:
        state = "online" if self.online else "offline"
        return f"EdgePeer({self.name}, {state}, serves={self.serves})"


class SiteTracker:
    """Fingerprint → peer-names map, refreshed by gossip rounds.

    The published view is only as fresh as the last round: peers that
    departed or evicted files since then leave *stale* entries behind,
    which the fetch path discovers on contact and demotes immediately.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, Tuple[str, ...]] = {}

    def publish(self, holdings: Dict[str, Sequence[str]]) -> int:
        """Replace the view with ``peer → identities`` announcements."""
        entries: Dict[str, List[str]] = {}
        for peer_name, identities in holdings.items():
            for identity in identities:
                entries.setdefault(identity, []).append(peer_name)
        self._entries = {
            identity: tuple(names) for identity, names in entries.items()
        }
        return len(self._entries)

    def resolve(self, identity: str) -> Tuple[str, ...]:
        return self._entries.get(identity, ())

    def drop_entry(self, identity: str, peer_name: str) -> None:
        names = self._entries.get(identity)
        if not names or peer_name not in names:
            return
        remaining = tuple(name for name in names if name != peer_name)
        if remaining:
            self._entries[identity] = remaining
        else:
            del self._entries[identity]

    def drop_peer(self, peer_name: str) -> None:
        for identity in list(self._entries):
            self.drop_entry(identity, peer_name)

    def identities(self) -> Tuple[str, ...]:
        return tuple(sorted(self._entries))

    def __len__(self) -> int:
        return len(self._entries)


class EdgeSite:
    """One edge site: a LAN, its peers, a shared cache, and a tracker.

    The site cache is write-through for *verified* registry fetches only
    (peer-served bytes never enter it, so a byzantine peer cannot poison
    the shared tier).  Tracker and cache bookkeeping charge zero virtual
    time; only LAN transfers and WAN calls advance the clock.
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        link: Link,
        *,
        stats: EdgeStats,
        seed: str = "edge",
        gossip_interval_s: float = 0.25,
    ) -> None:
        self.name = name
        self.clock = clock
        self.link = link
        self.stats = stats
        self.gossip_interval_s = gossip_interval_s
        self.peers: List[EdgePeer] = []
        self.cache: Dict[str, Any] = {}
        self.tracker = SiteTracker()
        self.blacklisted: Set[str] = set()
        self._peers_by_name: Dict[str, EdgePeer] = {}
        self._select_rng = rng_for("edge-select", seed, name)
        self._gossip_rng = rng_for("edge-gossip", seed, name)
        self._last_served: Dict[str, EdgePeer] = {}
        self._stop = True
        self.gossip_process: Optional[Process] = None

    # -- membership ----------------------------------------------------

    def add_peer(self, peer: EdgePeer) -> EdgePeer:
        if peer.name in self._peers_by_name:
            raise ValueError(f"peer {peer.name!r} already on site {self.name!r}")
        peer.stats = self.stats
        self.peers.append(peer)
        self._peers_by_name[peer.name] = peer
        return peer

    def peer(self, name: str) -> EdgePeer:
        return self._peers_by_name[name]

    # -- gossip --------------------------------------------------------

    def gossip(self) -> int:
        """One tracker refresh: online peers re-announce their holdings.

        Full re-announce keeps the protocol trivially deterministic; a
        freshly fetched file becomes peer-servable only after the next
        round, and entries for departed/evicted holdings are pruned here
        (until then they are the *stale* entries the chain demotes).
        """
        holdings = {
            peer.name: tuple(peer.pool.identities())
            for peer in self.peers
            if peer.online and peer.name not in self.blacklisted
        }
        published = self.tracker.publish(holdings)
        self.stats.gossip_rounds += 1
        return published

    def start_gossip(self, scheduler: Any) -> Process:
        """Run periodic gossip as a scheduler process (wave mode)."""
        self._stop = False
        self.gossip_process = scheduler.spawn(
            self._gossip_loop, name=f"edge-gossip:{self.name}"
        )
        return self.gossip_process

    def stop_gossip(self) -> None:
        self._stop = True

    def _gossip_loop(self) -> Iterator[float]:
        # A generator process: each ``yield`` parks the loop on the
        # scheduler heap directly, with no worker-thread handoff per
        # round.  The schedule is (time, seq)-identical to the former
        # thread-backed loop — one transient event per sleep, label
        # noted on resume — so traces and tie-breaking are unchanged.
        while not self._stop:
            self.gossip()
            # Seeded jitter keeps rounds from phase-locking with waves
            # while staying reproducible run-to-run.
            jitter = self.gossip_interval_s * (
                0.75 + 0.5 * self._gossip_rng.random()
            )
            yield jitter
            self.clock.note("edge-gossip-wait")

    # -- the failover chain --------------------------------------------

    def candidates(self, identity: str, requester: EdgePeer) -> List[EdgePeer]:
        """Live-looking candidates for ``identity``, in seeded order."""
        now = self.clock.now
        picked: List[EdgePeer] = []
        for name in self.tracker.resolve(identity):
            if name == requester.name or name in self.blacklisted:
                continue
            peer = self._peers_by_name.get(name)
            if peer is None:
                continue
            if not peer.breaker.available(now):
                self.stats.breaker_skips += 1
                continue
            picked.append(peer)
        if len(picked) > 1:
            self._select_rng.shuffle(picked)
        return picked

    def fetch(
        self,
        identity: str,
        requester: EdgePeer,
        base: Any,
        retry_policy: Optional[RetryPolicy],
        label: Optional[str] = None,
    ) -> Any:
        """Resolve ``identity`` through peers → site cache → registry.

        Mirrors :meth:`~repro.net.ha.HAFetchPolicy._resilient_read`: each
        *round* walks the whole chain once; only a round where every tier
        failed sleeps under ``retry_policy`` before re-resolving.
        """
        clock = self.clock
        stats = self.stats
        stats.fetches += 1
        tag = label or f"{GEAR_ENDPOINT}.download"
        start = clock.now
        round_index = 1
        previous_backoff: Optional[float] = None
        while True:
            with clock.span("tracker_resolve", site=self.name, fp=identity[:12]):
                candidates = self.candidates(identity, requester)
            last_error: Optional[BaseException] = None
            for peer in candidates:
                was_online = peer.online
                try:
                    with clock.span(
                        "peer_fetch", peer=peer.name, fp=identity[:12]
                    ):
                        gear_file, wire = peer.serve(identity, self.link, tag)
                except NotFoundError:
                    # Stale entry: the peer evicted the file after the
                    # last gossip round.  Demote and keep walking.
                    stats.stale_resolutions += 1
                    self.tracker.drop_entry(identity, peer.name)
                    peer.breaker.record_failure(clock.now)
                    continue
                except RETRYABLE_ERRORS as error:
                    last_error = error
                    stats.failovers += 1
                    if not was_online:
                        # Departed peer still in the tracker: stale.
                        stats.stale_resolutions += 1
                    self.tracker.drop_peer(peer.name)
                    peer.breaker.record_failure(clock.now)
                    continue
                peer.breaker.record_success(clock.now)
                stats.peer_hits += 1
                stats.peer_bytes += wire
                stats.egress_saved_bytes += wire
                self._last_served[identity] = peer
                return gear_file
            cached = self.cache.get(identity)
            if cached is not None:
                from repro.net.transport import RpcTransport

                wire = cached.compressed_size
                self.link.transfer(
                    RpcTransport.REQUEST_FRAME_BYTES, label=f"{tag}:site-request"
                )
                self.link.transfer(wire, label=f"{tag}:site-payload")
                stats.site_hits += 1
                stats.site_bytes += wire
                stats.egress_saved_bytes += wire
                self._last_served.pop(identity, None)
                return cached
            try:
                with clock.span("fallback", site=self.name, fp=identity[:12]):
                    value = base.call(
                        GEAR_ENDPOINT, "download", identity, label=label
                    )
            except NotFoundError:
                raise  # authoritative: no tier can have it
            except RETRYABLE_ERRORS as error:
                last_error = error
            else:
                stats.registry_fetches += 1
                # Write-through, gated on verification so a corrupt WAN
                # payload can never poison the shared tier.
                if identity.startswith("uid-") or (
                    value.blob.fingerprint == identity
                ):
                    self.cache[identity] = value
                self._last_served.pop(identity, None)
                return value
            round_index += 1
            elapsed = clock.now - start
            if retry_policy is None or not retry_policy.should_retry(
                last_error, attempt=round_index, elapsed_s=elapsed
            ):
                if retry_policy is not None and retry_policy.is_retryable(
                    last_error
                ):
                    stats.giveups += 1
                raise last_error
            backoff = retry_policy.next_backoff(previous_backoff)
            retry_policy.charge(backoff)
            clock.advance(backoff, f"{tag}:edge-backoff")
            stats.backoffs += 1
            previous_backoff = backoff

    # -- quarantine ----------------------------------------------------

    def report_corrupt(self, identity: str) -> Optional[str]:
        """The viewer verified ``identity`` and it hashed wrong.

        Attribute the payload to the last server: a peer gets
        blacklisted; the site cache entry (if any) is evicted either way.
        Returns the blacklisted peer's name, if one was responsible.
        """
        self.cache.pop(identity, None)
        peer = self._last_served.pop(identity, None)
        if peer is None:
            return None
        self.blacklist(peer)
        return peer.name

    def blacklist(self, peer: EdgePeer) -> None:
        if peer.name in self.blacklisted:
            return
        self.blacklisted.add(peer.name)
        peer.breaker.force_open(self.clock.now)
        self.tracker.drop_peer(peer.name)
        self.stats.blacklists += 1

    def __repr__(self) -> str:
        return (
            f"EdgeSite({self.name}, peers={len(self.peers)}, "
            f"tracked={len(self.tracker)}, cached={len(self.cache)})"
        )


class EdgeTransport:
    """Per-node transport facade routing Gear downloads through the site.

    Presents the :class:`~repro.net.transport.RpcTransport` surface the
    daemon/driver/viewer expect.  Only ``gear-registry.download`` takes
    the edge chain; uploads, queries, chunk fetches, and the Docker
    registry go straight to the shared base transport (the WAN).
    """

    def __init__(self, fabric: "EdgeFabric", site: EdgeSite, peer: EdgePeer) -> None:
        self.fabric = fabric
        self.site = site
        self.peer = peer
        self.base = fabric.base

    @property
    def link(self) -> Link:
        return self.base.link

    @property
    def retry_policy(self) -> Optional[RetryPolicy]:
        return self.base.retry_policy

    def bind(self, endpoint: Any) -> Any:
        return self.base.bind(endpoint)

    def has_endpoint(self, name: str) -> bool:
        return self.base.has_endpoint(name)

    def endpoint(self, name: str) -> Any:
        return self.base.endpoint(name)

    def reset_stats(self) -> None:
        self.base.reset_stats()
        self.fabric.stats.reset()

    def call(
        self,
        endpoint_name: str,
        method: str,
        *args: Any,
        request_payload_bytes: int = 0,
        label: Optional[str] = None,
        **kwargs: Any,
    ) -> Any:
        if endpoint_name == GEAR_ENDPOINT and method == "download":
            return self.site.fetch(
                args[0],
                self.peer,
                self.base,
                self.fabric.retry_policy,
                label=label,
            )
        return self.base.call(
            endpoint_name,
            method,
            *args,
            request_payload_bytes=request_payload_bytes,
            label=label,
            **kwargs,
        )

    def report_corrupt_payload(self, identity: str) -> None:
        """Viewer hook: wrong bytes that passed the wire checksum."""
        self.site.report_corrupt(identity)

    def __repr__(self) -> str:
        return f"EdgeTransport({self.peer.name}@{self.site.name})"


class EdgeFabric:
    """The fleet-wide edge distribution fabric.

    Owns the sites, the shared :class:`EdgeStats`, and the fabric-level
    :class:`RetryPolicy` governing whole-chain backoff rounds.  Client
    nodes are minted by :meth:`client`, which assigns each one to a site
    round-robin and wires its daemon/driver over an :class:`EdgeTransport`.
    """

    def __init__(
        self,
        root: Any,
        sites: Sequence[EdgeSite],
        *,
        stats: EdgeStats,
        seed: str = "edge",
        retry_policy: Optional[RetryPolicy] = None,
        pool_capacity_bytes: Optional[int] = None,
        pool_policy: Any = None,
    ) -> None:
        if not sites:
            raise ValueError("an edge fabric needs at least one site")
        self.root = root
        self.base = root.transport
        self.sites = list(sites)
        self.stats = stats
        self.seed = seed
        self.retry_policy = retry_policy
        self.pool_capacity_bytes = pool_capacity_bytes
        self.pool_policy = pool_policy
        self._next_index = 0

    @property
    def clock(self) -> SimClock:
        return self.root.clock

    @property
    def peers(self) -> List[EdgePeer]:
        return [peer for site in self.sites for peer in site.peers]

    def peer(self, name: str) -> EdgePeer:
        for site in self.sites:
            if name in site._peers_by_name:
                return site.peer(name)
        raise KeyError(f"no peer named {name!r} in the fabric")

    def site_of(self, peer_name: str) -> EdgeSite:
        for site in self.sites:
            if peer_name in site._peers_by_name:
                return site
        raise KeyError(f"no peer named {peer_name!r} in the fabric")

    def lan_links(self) -> List[Link]:
        return [site.link for site in self.sites]

    def client(self, name: Optional[str] = None) -> Any:
        """Mint one edge node: fresh client state behind an EdgeTransport.

        Mirrors :meth:`repro.bench.environment.Testbed.fresh_client`
        (same daemon/driver wiring) with the transport swapped for this
        node's :class:`EdgeTransport` and the pool shared with its peer.
        """
        from repro.bench.environment import Testbed, _register_client_metrics
        from repro.docker.daemon import DockerDaemon
        from repro.gear.driver import GearDriver
        from repro.gear.pool import SharedFilePool

        index = self._next_index
        self._next_index += 1
        peer_name = name if name is not None else f"edge-{index:03d}"
        site = self.sites[index % len(self.sites)]
        pool_kwargs: Dict[str, Any] = {}
        if self.pool_capacity_bytes is not None:
            pool_kwargs["capacity_bytes"] = self.pool_capacity_bytes
        if self.pool_policy is not None:
            pool_kwargs["policy"] = self.pool_policy
        pool = SharedFilePool(**pool_kwargs)
        peer = site.add_peer(EdgePeer(peer_name, pool))
        transport = EdgeTransport(self, site, peer)
        daemon = DockerDaemon(self.clock, transport)
        driver = GearDriver(self.clock, daemon, transport, pool=pool)
        bed = Testbed(
            clock=self.clock,
            link=self.root.link,
            transport=transport,
            docker_registry=self.root.docker_registry,
            gear_registry=self.root.gear_registry,
            converter=self.root.converter,
            daemon=daemon,
            gear_driver=driver,
            fault_plan=self.root.fault_plan,
            ha=None,
            metrics=self.root.metrics,
            edge=self,
        )
        _register_client_metrics(bed)
        return bed

    def gossip(self) -> int:
        """Manual tracker refresh across every site (sequential mode)."""
        return sum(site.gossip() for site in self.sites)

    def audit_integrity(self) -> List[str]:
        """Every committed/cached payload that fails fingerprint naming.

        An empty list is the "zero poisoned commits" invariant: nothing a
        byzantine peer served ever reached a pool or site cache.
        """
        problems: List[str] = []
        for site in self.sites:
            for identity in sorted(site.cache):
                gear_file = site.cache[identity]
                if not identity.startswith("uid-") and (
                    gear_file.blob.fingerprint != identity
                ):
                    problems.append(f"site:{site.name}:{identity}")
            for peer in site.peers:
                for identity in peer.pool.identities():
                    if identity.startswith("uid-"):
                        continue
                    inode = peer.pool.peek(identity)
                    if inode is not None and inode.blob is not None and (
                        inode.blob.fingerprint != identity
                    ):
                        problems.append(f"peer:{peer.name}:{identity}")
        return problems

    def __repr__(self) -> str:
        return (
            f"EdgeFabric(sites={len(self.sites)}, peers={len(self.peers)}, "
            f"stats={self.stats.as_dict()})"
        )


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change, at an offset from the wave start."""

    at_s: float
    kind: str  # "leave" | "join"
    peer: str


class ChurnSchedule:
    """A deterministic join/leave schedule drawn from a seeded stream."""

    def __init__(self, events: Sequence[ChurnEvent]) -> None:
        self.events: Tuple[ChurnEvent, ...] = tuple(
            sorted(events, key=lambda event: (event.at_s, event.peer))
        )

    @classmethod
    def generate(
        cls,
        peer_names: Sequence[str],
        *,
        seed: str = "edge",
        rate_per_s: float = 1.0,
        horizon_s: float = 10.0,
        min_online: int = 1,
    ) -> "ChurnSchedule":
        """Poisson-spaced churn: leaves and rejoins over ``horizon_s``.

        At least ``min_online`` peers stay up at all times, so churn can
        degrade the peer tier but never empty it.
        """
        if rate_per_s <= 0 or not peer_names:
            return cls(())
        rng = rng_for("edge-churn", seed)
        online = list(peer_names)
        offline: List[str] = []
        events: List[ChurnEvent] = []
        now = 0.0
        while True:
            now += rng.expovariate(rate_per_s)
            if now >= horizon_s:
                break
            rejoin = offline and (
                len(online) <= min_online or rng.random() < 0.5
            )
            if rejoin:
                peer = offline.pop(rng.randrange(len(offline)))
                online.append(peer)
                events.append(ChurnEvent(now, "join", peer))
            elif len(online) > min_online:
                peer = online.pop(rng.randrange(len(online)))
                offline.append(peer)
                events.append(ChurnEvent(now, "leave", peer))
        return cls(events)

    def __len__(self) -> int:
        return len(self.events)


class ChurnDriver:
    """Replays a :class:`ChurnSchedule` as a scheduler process.

    A *leave* flips the peer offline but leaves its tracker entries in
    place — they are exactly the stale entries the fetch chain must
    survive until the next gossip round prunes them.  A *join* brings the
    peer back; its holdings become servable again at the next round.
    """

    def __init__(self, fabric: EdgeFabric, schedule: ChurnSchedule) -> None:
        self.fabric = fabric
        self.schedule = schedule
        self._stop = True
        self.process: Optional[Process] = None

    def start(self, scheduler: Any) -> Optional[Process]:
        if not self.schedule.events:
            return None
        self._stop = False
        self.process = scheduler.spawn(self._run, name="edge-churn")
        return self.process

    def stop(self) -> None:
        self._stop = True

    def _run(self) -> Iterator[float]:
        # Generator process (see ``EdgeSite._gossip_loop``): yields
        # replace thread-handoff sleeps, schedule unchanged.
        clock = self.fabric.clock
        stats = self.fabric.stats
        started = clock.now
        for event in self.schedule.events:
            if self._stop:
                return
            delay = started + event.at_s - clock.now
            if delay > 0:
                yield delay
                clock.note("edge-churn-wait")
            if self._stop:
                return
            peer = self.fabric.peer(event.peer)
            if event.kind == "leave":
                if peer.online:
                    peer.online = False
                    stats.leaves += 1
            else:
                if not peer.online:
                    peer.online = True
                    stats.joins += 1
