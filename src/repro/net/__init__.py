"""Simulated networking.

The paper's evaluation sweeps link bandwidth (904 / 100 / 20 / 5 Mbps,
§V-E) and attributes Slacker's collapse at low bandwidth to per-object
request overhead (many blocks vs few files, §V-E2).  The simulator models
exactly those effects: each transfer pays a round-trip plus payload bytes
divided by bandwidth, on the shared virtual clock.

Beyond the paper, :mod:`repro.net.faults` injects deterministic wire
faults (drops, corruption, latency spikes, outages, brownouts),
:mod:`repro.net.resilience` supplies the retry/backoff machinery the
transport applies against them, and :mod:`repro.net.ha` adds the
replicated serving tier: replica sets with failover, hedged fetches,
circuit breakers, and load shedding.  :mod:`repro.net.edge` stacks the
multi-tier edge topology on top: per-site peer serving with a gossip-fed
tracker, churn/crash/byzantine adversity, and registry fallback.
:mod:`repro.net.faas` builds the serverless three-tier chain: a
capacity-bounded shared cache tier with single-flight coalescing, typed
load shedding, per-tier breakers, and an invocation-driven platform.
"""

from repro.net.edge import (
    ChurnDriver,
    ChurnEvent,
    ChurnSchedule,
    EdgeFabric,
    EdgePeer,
    EdgeSite,
    EdgeStats,
    EdgeTransport,
    SiteTracker,
)
from repro.net.faas import (
    FAAS_TIER_ENDPOINT,
    FaasFabric,
    FaasPlatform,
    FaasRunReport,
    FaasStats,
    FaasTransport,
    InvocationResult,
    SharedCacheTier,
)
from repro.net.faults import (
    BrownoutWindow,
    FaultPlan,
    FaultyLink,
    OutageWindow,
    byzantine_plan,
    lossy_plan,
)
from repro.net.ha import (
    AdmissionGate,
    BreakerState,
    CircuitBreaker,
    HAFetchPolicy,
    HATransport,
    HealthMonitor,
    HedgeEstimator,
    Replica,
    ReplicaSet,
    ScrubReport,
)
from repro.net.link import Link, TransferLog
from repro.net.resilience import RetryPolicy
from repro.net.transport import RpcEndpoint, RpcTransport

__all__ = [
    "AdmissionGate",
    "BreakerState",
    "BrownoutWindow",
    "ChurnDriver",
    "ChurnEvent",
    "ChurnSchedule",
    "CircuitBreaker",
    "EdgeFabric",
    "EdgePeer",
    "EdgeSite",
    "EdgeStats",
    "EdgeTransport",
    "FAAS_TIER_ENDPOINT",
    "FaasFabric",
    "FaasPlatform",
    "FaasRunReport",
    "FaasStats",
    "FaasTransport",
    "FaultPlan",
    "FaultyLink",
    "InvocationResult",
    "SharedCacheTier",
    "HAFetchPolicy",
    "HATransport",
    "HealthMonitor",
    "HedgeEstimator",
    "Link",
    "OutageWindow",
    "Replica",
    "ReplicaSet",
    "RetryPolicy",
    "RpcEndpoint",
    "RpcTransport",
    "ScrubReport",
    "SiteTracker",
    "TransferLog",
    "byzantine_plan",
    "lossy_plan",
]
