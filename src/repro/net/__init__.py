"""Simulated networking.

The paper's evaluation sweeps link bandwidth (904 / 100 / 20 / 5 Mbps,
§V-E) and attributes Slacker's collapse at low bandwidth to per-object
request overhead (many blocks vs few files, §V-E2).  The simulator models
exactly those effects: each transfer pays a round-trip plus payload bytes
divided by bandwidth, on the shared virtual clock.
"""

from repro.net.link import Link, TransferLog
from repro.net.transport import RpcEndpoint, RpcTransport

__all__ = ["Link", "TransferLog", "RpcEndpoint", "RpcTransport"]
