"""Simulated networking.

The paper's evaluation sweeps link bandwidth (904 / 100 / 20 / 5 Mbps,
§V-E) and attributes Slacker's collapse at low bandwidth to per-object
request overhead (many blocks vs few files, §V-E2).  The simulator models
exactly those effects: each transfer pays a round-trip plus payload bytes
divided by bandwidth, on the shared virtual clock.

Beyond the paper, :mod:`repro.net.faults` injects deterministic wire
faults (drops, corruption, latency spikes, outages) and
:mod:`repro.net.resilience` supplies the retry/backoff machinery the
transport applies against them.
"""

from repro.net.faults import FaultPlan, FaultyLink, OutageWindow, lossy_plan
from repro.net.link import Link, TransferLog
from repro.net.resilience import RetryPolicy
from repro.net.transport import RpcEndpoint, RpcTransport

__all__ = [
    "FaultPlan",
    "FaultyLink",
    "Link",
    "OutageWindow",
    "RetryPolicy",
    "RpcEndpoint",
    "RpcTransport",
    "TransferLog",
    "lossy_plan",
]
