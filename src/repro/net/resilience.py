"""Shared resilience primitives: retry/backoff and admission control.

Client side, :class:`RetryPolicy` follows what production on-demand
loaders converged on (AWS's "Exponential Backoff And Jitter"): capped
exponential backoff with *decorrelated jitter*, bounded by both a
per-call deadline and a cross-call retry budget so a dying registry
cannot absorb unbounded client time.  Backoff sleeps advance the shared
virtual clock, so resilience costs are visible in deploy timings.

Server side, :class:`AdmissionGate` is the one bounded-in-flight
implementation every serving tier shares — the HA registry replicas
(:mod:`repro.net.ha`) and the FaaS shared cache tier
(:mod:`repro.net.faas`) both gate requests through it, shedding excess
load with a typed :class:`~repro.common.errors.TierOverloadedError`
subclass rather than queueing toward collapse.  Sheds are deliberate
load control, not failures: they back off under a retry policy but never
trip circuit breakers.

Jitter is drawn from a seeded :func:`repro.common.rng.rng_for` stream:
the same policy seed and the same failure sequence back off identically
on every run, keeping experiments reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import (
    CorruptPayloadError,
    TimeoutError,
    UnavailableError,
)
from repro.common.rng import rng_for

#: Transport failures a retry can plausibly fix.  A plain
#: ``TransportError`` (unknown endpoint/method) is a programming error
#: and is never retried.
RETRYABLE_ERRORS = (TimeoutError, UnavailableError, CorruptPayloadError)


@dataclass
class RetryPolicy:
    """Decorrelated-jitter retry for RPC calls.

    * ``max_attempts`` — total tries per call (first attempt included);
    * ``base_backoff_s`` / ``max_backoff_s`` — backoff bounds; each sleep
      is ``uniform(base, 3 * previous)`` capped at the maximum
      (decorrelated jitter);
    * ``deadline_s`` — per-call wall limit: once a call has burned this
      much virtual time across attempts, it gives up;
    * ``budget_s`` — cross-call budget of backoff seconds this policy
      may spend in total; exhausted budget turns every failure into an
      immediate give-up (protects experiments from pathological plans).
    """

    max_attempts: int = 4
    base_backoff_s: float = 0.05
    max_backoff_s: float = 2.0
    deadline_s: Optional[float] = 30.0
    budget_s: Optional[float] = 120.0
    seed: str = "retry"
    #: Injected jitter stream.  Defaults to a fresh seeded stream derived
    #: from ``seed``; pass an explicit ``random.Random`` to share one
    #: deterministic stream across several policies (the HA layer does
    #: this so backoff draws interleave reproducibly across replicas).
    rng: Optional[random.Random] = field(
        default=None, repr=False, compare=False
    )
    #: Backoff seconds spent so far (across all calls using this policy).
    spent_s: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_backoff_s <= 0 or self.max_backoff_s < self.base_backoff_s:
            raise ValueError("backoff bounds must satisfy 0 < base <= max")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline must be positive when set")
        if self.budget_s is not None and self.budget_s < 0:
            raise ValueError("budget must be non-negative when set")
        self._rng = self.rng if self.rng is not None else rng_for(
            "net-retry", self.seed
        )

    @staticmethod
    def is_retryable(error: BaseException) -> bool:
        return isinstance(error, RETRYABLE_ERRORS)

    def next_backoff(self, previous_s: Optional[float]) -> float:
        """Draw the next decorrelated-jitter sleep."""
        anchor = previous_s if previous_s is not None else self.base_backoff_s
        sleep = self._rng.uniform(self.base_backoff_s, anchor * 3.0)
        return min(self.max_backoff_s, sleep)

    def should_retry(
        self,
        error: BaseException,
        *,
        attempt: int,
        elapsed_s: float,
    ) -> bool:
        """May attempt ``attempt`` (1-based) be followed by another try?"""
        if not self.is_retryable(error):
            return False
        if attempt >= self.max_attempts:
            return False
        if self.deadline_s is not None and elapsed_s >= self.deadline_s:
            return False
        if self.budget_s is not None and self.spent_s >= self.budget_s:
            return False
        return True

    def charge(self, backoff_s: float) -> None:
        self.spent_s += backoff_s

    def reset_spent(self) -> None:
        """Return the backoff budget to untouched (new measurement epoch)."""
        self.spent_s = 0.0

    def metrics(self) -> "dict[str, float]":
        """Registry-callback view of the policy's running spend."""
        return {"spent_s": self.spent_s}

    @property
    def budget_remaining_s(self) -> Optional[float]:
        if self.budget_s is None:
            return None
        return max(0.0, self.budget_s - self.spent_s)

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(attempts={self.max_attempts}, "
            f"backoff=[{self.base_backoff_s:g}, {self.max_backoff_s:g}]s, "
            f"deadline={self.deadline_s}, budget={self.budget_s}, "
            f"spent={self.spent_s:.3f}s)"
        )


# ---------------------------------------------------------------------------
# admission control


class AdmissionGate:
    """A bounded in-flight request gate: a serving tier's admission queue.

    ``capacity=None`` admits everything (the single-registry behaviour).
    A full gate sheds the request — the caller raises a
    :class:`~repro.common.errors.TierOverloadedError` subclass
    (:class:`~repro.common.errors.RegistryOverloadedError` for registry
    replicas) — instead of queueing unboundedly, so overload degrades by
    fast typed rejection rather than by collapse.  Both the HA registry
    replicas and the FaaS shared cache tier bound themselves with this
    one implementation.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("admission capacity must be at least 1")
        self.capacity = capacity
        self.inflight = 0
        self.peak_inflight = 0

    def try_enter(self) -> bool:
        if self.capacity is not None and self.inflight >= self.capacity:
            return False
        self.inflight += 1
        if self.inflight > self.peak_inflight:
            self.peak_inflight = self.inflight
        return True

    def exit(self) -> None:
        if self.inflight <= 0:
            raise RuntimeError("admission gate exit without matching enter")
        self.inflight -= 1
