"""Bandwidth/latency link model with flow-based contention.

In sequential mode (no :class:`~repro.common.clock.SimScheduler`
attached to the clock) a transfer blocks the world and advances the
clock by the closed-form cost — the seed model, byte-identical.

Inside a scheduler process a transfer becomes a *flow*: while N flows
are active on the link they fair-share its capacity (processor
sharing), so concurrent client deployments contend for the registry
uplink exactly the way the paper's §I fleet motivation describes.  A
flow's service demand is its nominal sequential duration
(``rtt + overhead + payload / bandwidth``); with a single active flow it
completes in exactly that time, reproducing the seed formula to the
bit, and with N flows each progresses at 1/N of real time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.common.clock import Process, SimClock, SimScheduler
from repro.common.errors import FetchCancelledError
from repro.common.units import Mbps, mbps_to_bytes_per_s

#: Remaining service below this many seconds counts as complete (guards
#: against float drift when shares are subtracted incrementally).
_FLOW_EPS = 1e-12


@dataclass
class TransferRecord:
    """One completed transfer over a link."""

    start: float
    duration: float
    payload_bytes: int
    label: str

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class TransferLog:
    """Accumulated traffic accounting for an experiment.

    Totals are maintained as running counters on :meth:`append` — they
    are read inside deploy loops, so re-summing the record list on every
    access would make accounting quadratic in experiment length.
    """

    records: List[TransferRecord] = field(default_factory=list)
    _total_bytes: int = field(default=0, init=False, repr=False)
    _total_time: float = field(default=0.0, init=False, repr=False)

    def __post_init__(self) -> None:
        for record in self.records:
            self._total_bytes += record.payload_bytes
            self._total_time += record.duration

    def append(self, record: TransferRecord) -> None:
        """Record a completed transfer, updating the running totals."""
        self.records.append(record)
        self._total_bytes += record.payload_bytes
        self._total_time += record.duration

    @property
    def total_bytes(self) -> int:
        return self._total_bytes

    @property
    def total_requests(self) -> int:
        return len(self.records)

    @property
    def total_time(self) -> float:
        return self._total_time

    def clear(self) -> None:
        self.records.clear()
        self._total_bytes = 0
        self._total_time = 0.0


class _Flow:
    """One in-flight transfer under processor sharing."""

    __slots__ = ("remaining_s", "nominal_s", "start", "payload_bytes",
                 "label", "waiters", "contended", "cancelled",
                 "partial_bytes")

    def __init__(self, nominal_s: float, start: float, payload_bytes: int,
                 label: str) -> None:
        self.remaining_s = nominal_s
        self.nominal_s = nominal_s
        self.start = start
        self.payload_bytes = payload_bytes
        self.label = label
        self.waiters: List[Process] = []
        self.contended = False
        #: Set by :meth:`Link.cancel_flows_of`: the transfer was aborted
        #: mid-flight and only ``partial_bytes`` of the payload moved.
        self.cancelled = False
        self.partial_bytes = 0


class Link:
    """A duplex point-to-point link with bandwidth and per-request cost.

    ``transfer`` costs::

        rtt + request_overhead + payload / bandwidth

    * ``rtt`` models connection/request latency (paper testbed: a LAN, so
      sub-millisecond; WAN experiments would raise it);
    * ``request_overhead`` models fixed protocol work per object fetched —
      HTTP framing, registry auth, object-store lookup.  It is the term
      that punishes block-granular lazy pulls (Slacker) relative to
      file-granular ones (Gear);
    * payload time scales inversely with the configured bandwidth.

    Concurrent transfers (scheduler processes) fair-share the link; see
    the module docstring for the contention model.
    """

    def __init__(
        self,
        clock: SimClock,
        *,
        bandwidth_mbps: float = 904.0,
        rtt_s: float = 0.0005,
        request_overhead_s: float = 0.0015,
    ) -> None:
        if bandwidth_mbps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_mbps}")
        if rtt_s < 0 or request_overhead_s < 0:
            raise ValueError("latencies must be non-negative")
        self.clock = clock
        self.bandwidth_mbps = bandwidth_mbps
        self.rtt_s = rtt_s
        self.request_overhead_s = request_overhead_s
        self.log = TransferLog()
        #: Active flows (scheduler mode only), in arrival order.
        self._flows: List[_Flow] = []
        #: Processes with a pending cancellation but no active flow on
        #: this link right now (e.g. parked in a fault stall): their next
        #: transfer attempt raises instead of starting a new flow.
        self._cancel_pending: Set[Process] = set()
        self._last_update = clock.now
        self._completion_event = None
        #: Cumulative seconds the link spent carrying at least one
        #: transfer — the occupancy operators provision uplinks for.
        self._busy_s = 0.0
        self._busy_since: Optional[float] = None

    @property
    def bytes_per_second(self) -> float:
        return mbps_to_bytes_per_s(self.bandwidth_mbps)

    @property
    def active_flows(self) -> int:
        """Number of transfers currently sharing the link."""
        return len(self._flows)

    @property
    def busy_seconds(self) -> float:
        """Total virtual time the link spent with ≥1 transfer in flight."""
        if self._busy_since is not None:
            return self._busy_s + (self.clock.now - self._busy_since)
        return self._busy_s

    def transfer_time(self, payload_bytes: int) -> float:
        """Time one uncontended transfer of ``payload_bytes`` takes."""
        if payload_bytes < 0:
            raise ValueError(f"payload must be non-negative, got {payload_bytes}")
        return (
            self.rtt_s
            + self.request_overhead_s
            + payload_bytes / self.bytes_per_second
        )

    def transfer(self, payload_bytes: int, label: str = "") -> float:
        """Perform a transfer: advance the clock, log it, return duration.

        Sequentially this is the seed cost model verbatim.  Inside a
        scheduler process the call suspends until the flow drains under
        fair sharing; the returned (and logged) duration is the nominal
        cost when the flow never shared the link — bit-identical to the
        sequential model — and the actual stretched duration otherwise.
        """
        duration = self.transfer_time(payload_bytes)
        scheduler = self.clock.scheduler
        process = scheduler._running_process() if scheduler is not None else None
        if process is None:
            start = self.clock.now
            self.clock.advance(duration, label or f"transfer:{payload_bytes}B")
            self._busy_s += duration
            self.log.append(
                TransferRecord(
                    start=start,
                    duration=duration,
                    payload_bytes=payload_bytes,
                    label=label,
                )
            )
            return duration
        return self._transfer_flow(scheduler, process, payload_bytes, duration, label)

    def request(self, label: str = "") -> float:
        """A zero-payload control request (e.g. existence query)."""
        return self.transfer(0, label or "request")

    # -- processor-sharing flows (scheduler mode) --------------------------

    def _transfer_flow(
        self,
        scheduler: SimScheduler,
        process: Process,
        payload_bytes: int,
        nominal_s: float,
        label: str,
    ) -> float:
        if process in self._cancel_pending:
            self._cancel_pending.discard(process)
            raise FetchCancelledError(
                f"transfer cancelled before start: {label or payload_bytes}",
                bytes_transferred=0,
            )
        start = self.clock.now
        self._progress_flows()
        flow = _Flow(nominal_s, start, payload_bytes, label)
        self._flows.append(flow)
        if len(self._flows) > 1:
            for active in self._flows:
                active.contended = True
        elif self._busy_since is None:
            self._busy_since = start
        flow.waiters.append(process)
        self._reschedule(scheduler)
        scheduler._suspend(process)
        elapsed = self.clock.now - start
        if flow.cancelled:
            self.clock.instant(f"cancelled:{label or payload_bytes}")
            self.log.append(
                TransferRecord(
                    start=start,
                    duration=elapsed,
                    payload_bytes=flow.partial_bytes,
                    label=f"{label}:cancelled" if label else "cancelled",
                )
            )
            raise FetchCancelledError(
                f"transfer cancelled in flight: {label or payload_bytes}",
                bytes_transferred=flow.partial_bytes,
            )
        duration = flow.nominal_s if not flow.contended else elapsed
        self.clock.instant(label or f"transfer:{payload_bytes}B")
        self.log.append(
            TransferRecord(
                start=start,
                duration=duration,
                payload_bytes=payload_bytes,
                label=label,
            )
        )
        return duration

    def _progress_flows(self) -> None:
        """Charge elapsed time against every active flow's remainder."""
        now = self.clock.now
        if self._flows:
            dt = now - self._last_update
            if dt > 0:
                share = dt / len(self._flows)
                for flow in self._flows:
                    flow.remaining_s -= share
        self._last_update = now

    def _reschedule(self, scheduler: SimScheduler) -> None:
        """(Re)arm the completion event for the earliest-finishing flow."""
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        if not self._flows:
            if self._busy_since is not None:
                self._busy_s += self.clock.now - self._busy_since
                self._busy_since = None
            return
        count = len(self._flows)
        shortest = min(flow.remaining_s for flow in self._flows)
        delay = max(shortest, 0.0) * count
        self._completion_event = scheduler.schedule(
            delay, lambda: self._complete_due_flows(scheduler)
        )

    def _complete_due_flows(self, scheduler: SimScheduler) -> None:
        self._completion_event = None
        self._progress_flows()
        done = [flow for flow in self._flows if flow.remaining_s <= _FLOW_EPS]
        if not done:
            # Float drift left the designated flow epsilon short; it is
            # due by construction of the completion event.
            forced = min(self._flows, key=lambda flow: flow.remaining_s)
            forced.remaining_s = 0.0
            done = [forced]
        for flow in done:
            self._flows.remove(flow)
            for process in flow.waiters:
                scheduler._wake(process)
        self._reschedule(scheduler)

    # -- hedged-fetch cancellation -----------------------------------------

    def cancel_flows(self, process: Process) -> int:
        """Abort every in-flight transfer ``process`` is waiting on.

        Used by the hedging controller to kill the losing replica fetch
        the moment the winner lands.  Each cancelled flow is charged only
        the payload fraction it had actually moved under fair sharing
        (the losing transfer did consume link capacity until now — that
        is the "wasted hedge bytes" the benchmark reports).  The waiter
        wakes and raises :class:`FetchCancelledError` carrying the
        partial byte count.

        If the process has no active flow on this link (it is parked in
        a fault stall or between request and response frames), a pending
        cancellation is recorded instead: its *next* transfer attempt on
        this link raises immediately at zero bytes.  Returns the number
        of flows actually cancelled.
        """
        scheduler = self.clock.scheduler
        if scheduler is None:
            raise RuntimeError("cancel_flows requires a scheduler")
        self._progress_flows()
        victims = [flow for flow in self._flows if process in flow.waiters]
        if not victims:
            self._cancel_pending.add(process)
            return 0
        for flow in victims:
            if flow.nominal_s > 0:
                done_frac = 1.0 - max(flow.remaining_s, 0.0) / flow.nominal_s
            else:
                done_frac = 1.0
            flow.partial_bytes = int(flow.payload_bytes * min(max(done_frac, 0.0), 1.0))
            flow.cancelled = True
            self._flows.remove(flow)
            for waiter in flow.waiters:
                scheduler._wake(waiter)
        self._reschedule(scheduler)
        return len(victims)

    def clear_cancel(self, process: Process) -> None:
        """Drop a pending cancellation that never met a transfer."""
        self._cancel_pending.discard(process)

    def with_bandwidth(self, bandwidth_mbps: float) -> "Link":
        """A new link on the same clock with a different bandwidth."""
        return Link(
            self.clock,
            bandwidth_mbps=bandwidth_mbps,
            rtt_s=self.rtt_s,
            request_overhead_s=self.request_overhead_s,
        )

    def __repr__(self) -> str:
        return (
            f"Link({self.bandwidth_mbps:g} Mbps, rtt={self.rtt_s * 1e3:.2f} ms, "
            f"overhead={self.request_overhead_s * 1e3:.2f} ms)"
        )


def lan_link(clock: SimClock, bandwidth_mbps: float = 904.0) -> Link:
    """The paper's testbed link: two servers on a measured 904 Mbps LAN."""
    return Link(clock, bandwidth_mbps=bandwidth_mbps)
