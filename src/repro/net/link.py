"""Bandwidth/latency link model with flow-based contention.

In sequential mode (no :class:`~repro.common.clock.SimScheduler`
attached to the clock) a transfer blocks the world and advances the
clock by the closed-form cost — the seed model, byte-identical.

Inside a scheduler process a transfer becomes a *flow*: while N flows
are active on the link they fair-share its capacity (processor
sharing), so concurrent client deployments contend for the registry
uplink exactly the way the paper's §I fleet motivation describes.  A
flow's service demand is its nominal sequential duration
(``rtt + overhead + payload / bandwidth``); with a single active flow it
completes in exactly that time, reproducing the seed formula to the
bit, and with N flows each progresses at 1/N of real time.

Fair sharing is accounted *incrementally* via a cumulative virtual
service time ``V`` (the classic processor-sharing trick): ``V``
advances by ``dt / N`` while N flows are active and is only updated on
flow-set *membership changes* (a flow entering, completing, or being
cancelled).  A flow entering at virtual service ``V0`` with demand
``S`` completes when ``V`` reaches ``V0 + S``; completions are kept in
a min-heap keyed by that target.  The seed model recomputed every
flow's remaining demand on every event — O(N) per membership change,
O(N²) per wave — which is what capped fleet sweeps at ~64 clients.
``V`` resets to zero whenever the link goes idle, so a sole flow's
completion delay is computed as ``(S - 0.0) * 1``: bit-identical to
the seed formula, not merely close.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.common.clock import SUSPEND, Process, SimClock, SimScheduler
from repro.common.errors import FetchCancelledError
from repro.common.units import Mbps, mbps_to_bytes_per_s

#: Remaining service below this many seconds counts as complete (guards
#: against float drift when shares are subtracted incrementally).
_FLOW_EPS = 1e-12


@dataclass
class TransferRecord:
    """One completed transfer over a link."""

    start: float
    duration: float
    payload_bytes: int
    label: str

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class TransferLog:
    """Accumulated traffic accounting for an experiment.

    Totals are maintained as running counters on :meth:`append` — they
    are read inside deploy loops, so re-summing the record list on every
    access would make accounting quadratic in experiment length.
    """

    records: List[TransferRecord] = field(default_factory=list)
    _total_bytes: int = field(default=0, init=False, repr=False)
    _total_time: float = field(default=0.0, init=False, repr=False)

    def __post_init__(self) -> None:
        for record in self.records:
            self._total_bytes += record.payload_bytes
            self._total_time += record.duration

    def append(self, record: TransferRecord) -> None:
        """Record a completed transfer, updating the running totals."""
        self.records.append(record)
        self._total_bytes += record.payload_bytes
        self._total_time += record.duration

    @property
    def total_bytes(self) -> int:
        return self._total_bytes

    @property
    def total_requests(self) -> int:
        return len(self.records)

    @property
    def total_time(self) -> float:
        return self._total_time

    def clear(self) -> None:
        self.records.clear()
        self._total_bytes = 0
        self._total_time = 0.0


class _Flow:
    """One in-flight transfer under processor sharing."""

    __slots__ = ("vtarget", "nominal_s", "start", "payload_bytes",
                 "label", "waiters", "contended", "cancelled",
                 "partial_bytes")

    def __init__(self, nominal_s: float, start: float, payload_bytes: int,
                 label: str) -> None:
        #: Cumulative link virtual-service time at which this flow
        #: completes (entry ``V`` + nominal demand); set on admission.
        self.vtarget = nominal_s
        self.nominal_s = nominal_s
        self.start = start
        self.payload_bytes = payload_bytes
        self.label = label
        self.waiters: List[Process] = []
        self.contended = False
        #: Set by :meth:`Link.cancel_flows`: the transfer was aborted
        #: mid-flight and only ``partial_bytes`` of the payload moved.
        self.cancelled = False
        self.partial_bytes = 0


class Link:
    """A duplex point-to-point link with bandwidth and per-request cost.

    ``transfer`` costs::

        rtt + request_overhead + payload / bandwidth

    * ``rtt`` models connection/request latency (paper testbed: a LAN, so
      sub-millisecond; WAN experiments would raise it);
    * ``request_overhead`` models fixed protocol work per object fetched —
      HTTP framing, registry auth, object-store lookup.  It is the term
      that punishes block-granular lazy pulls (Slacker) relative to
      file-granular ones (Gear);
    * payload time scales inversely with the configured bandwidth.

    Concurrent transfers (scheduler processes) fair-share the link; see
    the module docstring for the contention model.
    """

    def __init__(
        self,
        clock: SimClock,
        *,
        bandwidth_mbps: float = 904.0,
        rtt_s: float = 0.0005,
        request_overhead_s: float = 0.0015,
    ) -> None:
        if bandwidth_mbps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_mbps}")
        if rtt_s < 0 or request_overhead_s < 0:
            raise ValueError("latencies must be non-negative")
        self.clock = clock
        self.bandwidth_mbps = bandwidth_mbps
        self.rtt_s = rtt_s
        self.request_overhead_s = request_overhead_s
        self.log = TransferLog()
        #: Active flows (scheduler mode only), in arrival order
        #: (insertion-ordered dict used as an O(1)-delete ordered set).
        self._flows: Dict[_Flow, None] = {}
        #: Completion min-heap of ``(vtarget, tiebreak, flow)``; stale
        #: entries (cancelled flows) are skipped lazily on pop.
        self._targets: List[Tuple[float, int, _Flow]] = []
        self._target_seq = itertools.count()
        #: Cumulative virtual service time V (advances dt/N; reset to
        #: 0.0 whenever the link idles — the sole-flow bit-exactness
        #: anchor, see the module docstring).
        self._vtime = 0.0
        self._vlast = clock.now
        #: The one active flow that has never shared the link, if any
        #: (lets contended-marking stay O(1) per membership change).
        self._sole_flow: Optional[_Flow] = None
        #: Processes with a pending cancellation but no active flow on
        #: this link right now (e.g. parked in a fault stall): their next
        #: transfer attempt raises instead of starting a new flow.
        self._cancel_pending: Set[Process] = set()
        self._completion_event = None
        #: Cumulative seconds the link spent carrying at least one
        #: transfer — the occupancy operators provision uplinks for.
        self._busy_s = 0.0
        self._busy_since: Optional[float] = None

    @property
    def bytes_per_second(self) -> float:
        return mbps_to_bytes_per_s(self.bandwidth_mbps)

    @property
    def active_flows(self) -> int:
        """Number of transfers currently sharing the link."""
        return len(self._flows)

    @property
    def busy_seconds(self) -> float:
        """Total virtual time the link spent with ≥1 transfer in flight."""
        if self._busy_since is not None:
            return self._busy_s + (self.clock.now - self._busy_since)
        return self._busy_s

    def transfer_time(self, payload_bytes: int) -> float:
        """Time one uncontended transfer of ``payload_bytes`` takes."""
        if payload_bytes < 0:
            raise ValueError(f"payload must be non-negative, got {payload_bytes}")
        return (
            self.rtt_s
            + self.request_overhead_s
            + payload_bytes / self.bytes_per_second
        )

    def transfer(self, payload_bytes: int, label: str = "") -> float:
        """Perform a transfer: advance the clock, log it, return duration.

        Sequentially this is the seed cost model verbatim.  Inside a
        scheduler process the call suspends until the flow drains under
        fair sharing; the returned (and logged) duration is the nominal
        cost when the flow never shared the link — bit-identical to the
        sequential model — and the actual stretched duration otherwise.
        """
        self.clock.settle_debt()  # flows start at settled virtual time
        duration = self.transfer_time(payload_bytes)
        scheduler = self.clock.scheduler
        process = scheduler._running_process() if scheduler is not None else None
        if process is None:
            start = self.clock.now
            self.clock.advance(duration, label or f"transfer:{payload_bytes}B")
            self._busy_s += duration
            self.log.append(
                TransferRecord(
                    start=start,
                    duration=duration,
                    payload_bytes=payload_bytes,
                    label=label,
                )
            )
            return duration
        return self._transfer_flow(scheduler, process, payload_bytes, duration, label)

    def request(self, label: str = "") -> float:
        """A zero-payload control request (e.g. existence query)."""
        return self.transfer(0, label or "request")

    # -- processor-sharing flows (scheduler mode) --------------------------

    def _transfer_flow(
        self,
        scheduler: SimScheduler,
        process: Process,
        payload_bytes: int,
        nominal_s: float,
        label: str,
    ) -> float:
        self._check_cancel_pending(process, payload_bytes, label)
        flow = self._open_flow(process, payload_bytes, nominal_s, label)
        self._rearm(scheduler)
        scheduler._suspend(process)
        return self._finish_flow(flow, payload_bytes, label)

    def transfer_gen(self, payload_bytes: int, label: str = ""):
        """Generator-native transfer: ``yield from`` it in a generator.

        Identical accounting to :meth:`transfer`, but the waiting
        process parks by yielding :data:`~repro.common.clock.SUSPEND`
        instead of blocking a worker thread — the cheap path for
        1024+-client waves.  Outside a generator process (sequential
        mode, or called from a call process) it falls back to
        :meth:`transfer`, so shared code can use it unconditionally.
        Returns the logged duration; raises
        :class:`FetchCancelledError` exactly like :meth:`transfer`.
        """
        scheduler = self.clock.scheduler
        process = scheduler.current_process() if scheduler is not None else None
        if process is None or process._gen is None:
            return self.transfer(payload_bytes, label)
        duration = self.transfer_time(payload_bytes)
        self._check_cancel_pending(process, payload_bytes, label)
        flow = self._open_flow(process, payload_bytes, duration, label)
        self._rearm(scheduler)
        yield SUSPEND
        return self._finish_flow(flow, payload_bytes, label)

    def _check_cancel_pending(
        self, process: Process, payload_bytes: int, label: str
    ) -> None:
        if process in self._cancel_pending:
            self._cancel_pending.discard(process)
            raise FetchCancelledError(
                f"transfer cancelled before start: {label or payload_bytes}",
                bytes_transferred=0,
            )

    def _open_flow(
        self, process: Process, payload_bytes: int, nominal_s: float, label: str
    ) -> _Flow:
        """Admit a flow: set its completion target, mark contention."""
        start = self.clock.now
        self._advance_vtime()
        flow = _Flow(nominal_s, start, payload_bytes, label)
        flow.vtarget = self._vtime + nominal_s
        self._flows[flow] = None
        heapq.heappush(self._targets, (flow.vtarget, next(self._target_seq), flow))
        sole = self._sole_flow
        if sole is not None:
            # The incumbent was alone until now: both flows contend.
            sole.contended = True
            self._sole_flow = None
            flow.contended = True
        elif len(self._flows) > 1:
            flow.contended = True
        else:
            self._sole_flow = flow
            if self._busy_since is None:
                self._busy_since = start
        flow.waiters.append(process)
        return flow

    def _finish_flow(self, flow: _Flow, payload_bytes: int, label: str) -> float:
        """Post-wake bookkeeping: log the transfer or raise cancellation."""
        start = flow.start
        elapsed = self.clock.now - start
        if flow.cancelled:
            self.clock.instant(f"cancelled:{label or payload_bytes}")
            self.log.append(
                TransferRecord(
                    start=start,
                    duration=elapsed,
                    payload_bytes=flow.partial_bytes,
                    label=f"{label}:cancelled" if label else "cancelled",
                )
            )
            raise FetchCancelledError(
                f"transfer cancelled in flight: {label or payload_bytes}",
                bytes_transferred=flow.partial_bytes,
            )
        duration = flow.nominal_s if not flow.contended else elapsed
        self.clock.instant(label or f"transfer:{payload_bytes}B")
        self.log.append(
            TransferRecord(
                start=start,
                duration=duration,
                payload_bytes=payload_bytes,
                label=label,
            )
        )
        return duration

    def _advance_vtime(self) -> None:
        """Accrue virtual service since the last membership change."""
        now = self.clock._now
        if self._flows:
            dt = now - self._vlast
            if dt > 0.0:
                self._vtime += dt / len(self._flows)
        self._vlast = now

    def _rearm(self, scheduler: SimScheduler) -> None:
        """(Re)arm the completion event for the earliest-finishing flow."""
        event = self._completion_event
        if event is not None:
            event.cancel()
            self._completion_event = None
        flows = self._flows
        if not flows:
            now = self.clock._now
            if self._busy_since is not None:
                self._busy_s += now - self._busy_since
                self._busy_since = None
            # Idle link: reset virtual service so the next sole flow's
            # delay is (nominal - 0.0) * 1 — the seed formula, bit-exact.
            self._vtime = 0.0
            self._vlast = now
            self._targets.clear()
            return
        targets = self._targets
        while targets[0][2] not in flows:  # drop stale (cancelled) heads
            heapq.heappop(targets)
        remaining = targets[0][0] - self._vtime
        if remaining < 0.0:
            remaining = 0.0
        self._completion_event = scheduler.schedule_transient(
            remaining * len(flows), self._complete_due_flows
        )

    def _complete_due_flows(self) -> None:
        self._completion_event = None
        scheduler = self.clock.scheduler
        self._advance_vtime()
        flows = self._flows
        targets = self._targets
        threshold = self._vtime + _FLOW_EPS
        done: List[_Flow] = []
        while targets:
            vtarget, _, flow = targets[0]
            if flow not in flows:
                heapq.heappop(targets)  # stale: cancelled mid-flight
            elif vtarget <= threshold:
                heapq.heappop(targets)
                del flows[flow]
                done.append(flow)
            else:
                break
        if not done:
            # Float drift left the designated flow epsilon short; it is
            # due by construction of the completion event.
            while True:
                _, _, flow = heapq.heappop(targets)
                if flow in flows:
                    del flows[flow]
                    done.append(flow)
                    break
        for flow in done:
            if flow is self._sole_flow:
                self._sole_flow = None
            for process in flow.waiters:
                scheduler._wake(process)
        self._rearm(scheduler)

    # -- hedged-fetch cancellation -----------------------------------------

    def cancel_flows(self, process: Process) -> int:
        """Abort every in-flight transfer ``process`` is waiting on.

        Used by the hedging controller to kill the losing replica fetch
        the moment the winner lands.  Each cancelled flow is charged only
        the payload fraction it had actually moved under fair sharing
        (the losing transfer did consume link capacity until now — that
        is the "wasted hedge bytes" the benchmark reports).  The waiter
        wakes and raises :class:`FetchCancelledError` carrying the
        partial byte count.

        If the process has no active flow on this link (it is parked in
        a fault stall or between request and response frames), a pending
        cancellation is recorded instead: its *next* transfer attempt on
        this link raises immediately at zero bytes.  Returns the number
        of flows actually cancelled.
        """
        scheduler = self.clock.scheduler
        if scheduler is None:
            raise RuntimeError("cancel_flows requires a scheduler")
        self.clock.settle_debt()
        self._advance_vtime()
        victims = [flow for flow in self._flows if process in flow.waiters]
        if not victims:
            self._cancel_pending.add(process)
            return 0
        vtime = self._vtime
        for flow in victims:
            if flow.nominal_s > 0:
                remaining = flow.vtarget - vtime
                if remaining < 0.0:
                    remaining = 0.0
                done_frac = 1.0 - remaining / flow.nominal_s
            else:
                done_frac = 1.0
            flow.partial_bytes = int(flow.payload_bytes * min(max(done_frac, 0.0), 1.0))
            flow.cancelled = True
            del self._flows[flow]
            if flow is self._sole_flow:
                self._sole_flow = None
            for waiter in flow.waiters:
                scheduler._wake(waiter)
        self._rearm(scheduler)
        return len(victims)

    def clear_cancel(self, process: Process) -> None:
        """Drop a pending cancellation that never met a transfer."""
        self._cancel_pending.discard(process)

    def with_bandwidth(self, bandwidth_mbps: float) -> "Link":
        """A new link on the same clock with a different bandwidth."""
        return Link(
            self.clock,
            bandwidth_mbps=bandwidth_mbps,
            rtt_s=self.rtt_s,
            request_overhead_s=self.request_overhead_s,
        )

    def __repr__(self) -> str:
        return (
            f"Link({self.bandwidth_mbps:g} Mbps, rtt={self.rtt_s * 1e3:.2f} ms, "
            f"overhead={self.request_overhead_s * 1e3:.2f} ms)"
        )


def lan_link(clock: SimClock, bandwidth_mbps: float = 904.0) -> Link:
    """The paper's testbed link: two servers on a measured 904 Mbps LAN."""
    return Link(clock, bandwidth_mbps=bandwidth_mbps)
