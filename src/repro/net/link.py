"""Bandwidth/latency link model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.common.clock import SimClock
from repro.common.units import Mbps, mbps_to_bytes_per_s


@dataclass
class TransferRecord:
    """One completed transfer over a link."""

    start: float
    duration: float
    payload_bytes: int
    label: str

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class TransferLog:
    """Accumulated traffic accounting for an experiment."""

    records: List[TransferRecord] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return sum(record.payload_bytes for record in self.records)

    @property
    def total_requests(self) -> int:
        return len(self.records)

    @property
    def total_time(self) -> float:
        return sum(record.duration for record in self.records)

    def clear(self) -> None:
        self.records.clear()


class Link:
    """A duplex point-to-point link with bandwidth and per-request cost.

    ``transfer`` advances the shared clock by::

        rtt + request_overhead + payload / bandwidth

    * ``rtt`` models connection/request latency (paper testbed: a LAN, so
      sub-millisecond; WAN experiments would raise it);
    * ``request_overhead`` models fixed protocol work per object fetched —
      HTTP framing, registry auth, object-store lookup.  It is the term
      that punishes block-granular lazy pulls (Slacker) relative to
      file-granular ones (Gear);
    * payload time scales inversely with the configured bandwidth.
    """

    def __init__(
        self,
        clock: SimClock,
        *,
        bandwidth_mbps: float = 904.0,
        rtt_s: float = 0.0005,
        request_overhead_s: float = 0.0015,
    ) -> None:
        if bandwidth_mbps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_mbps}")
        if rtt_s < 0 or request_overhead_s < 0:
            raise ValueError("latencies must be non-negative")
        self.clock = clock
        self.bandwidth_mbps = bandwidth_mbps
        self.rtt_s = rtt_s
        self.request_overhead_s = request_overhead_s
        self.log = TransferLog()

    @property
    def bytes_per_second(self) -> float:
        return mbps_to_bytes_per_s(self.bandwidth_mbps)

    def transfer_time(self, payload_bytes: int) -> float:
        """Time one transfer of ``payload_bytes`` would take (no clock)."""
        if payload_bytes < 0:
            raise ValueError(f"payload must be non-negative, got {payload_bytes}")
        return (
            self.rtt_s
            + self.request_overhead_s
            + payload_bytes / self.bytes_per_second
        )

    def transfer(self, payload_bytes: int, label: str = "") -> float:
        """Perform a transfer: advance the clock, log it, return duration."""
        duration = self.transfer_time(payload_bytes)
        start = self.clock.now
        self.clock.advance(duration, label or f"transfer:{payload_bytes}B")
        self.log.records.append(
            TransferRecord(
                start=start,
                duration=duration,
                payload_bytes=payload_bytes,
                label=label,
            )
        )
        return duration

    def request(self, label: str = "") -> float:
        """A zero-payload control request (e.g. existence query)."""
        return self.transfer(0, label or "request")

    def with_bandwidth(self, bandwidth_mbps: float) -> "Link":
        """A new link on the same clock with a different bandwidth."""
        return Link(
            self.clock,
            bandwidth_mbps=bandwidth_mbps,
            rtt_s=self.rtt_s,
            request_overhead_s=self.request_overhead_s,
        )

    def __repr__(self) -> str:
        return (
            f"Link({self.bandwidth_mbps:g} Mbps, rtt={self.rtt_s * 1e3:.2f} ms, "
            f"overhead={self.request_overhead_s * 1e3:.2f} ms)"
        )


def lan_link(clock: SimClock, bandwidth_mbps: float = 904.0) -> Link:
    """The paper's testbed link: two servers on a measured 904 Mbps LAN."""
    return Link(clock, bandwidth_mbps=bandwidth_mbps)
