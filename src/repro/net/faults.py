"""Deterministic network fault injection.

The paper's client depends on the Gear registry being reachable at every
lazy read fault (§III-D2); production on-demand loaders treat the network
as hostile instead — AWS Lambda's container loader layers retries and
integrity re-verification over its lazy chunk fetches, and edge
deployments (EdgePier) exist precisely because edge links are flaky.
This module lets experiments ask the same question: a :class:`FaultPlan`
describes a lossy wire (drops, payload corruption, latency spikes, timed
outage windows) and a :class:`FaultyLink` wraps the ordinary
:class:`~repro.net.link.Link` to inject those faults.

Everything is deterministic: fault decisions are drawn from a
:func:`repro.common.rng.rng_for` stream seeded by the plan, so the same
seed and the same call sequence produce byte-identical fault schedules,
transfer logs, and virtual timings on every run.

Failed attempts still cost virtual time — a dropped request charges the
full client timeout, an outage attempt charges the connect/stall cost —
so resilience machinery (retries, backoff, degraded modes) shows up in
deploy times exactly the way it would on real hardware.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.common.clock import SimClock
from repro.common.errors import ClientCrash, TimeoutError, UnavailableError
from repro.common.rng import rng_for
from repro.net.link import Link
from repro.obs.metrics import MetricSet


@dataclass(frozen=True)
class OutageWindow:
    """A time span during which the targeted peer is unreachable.

    Offsets are relative to the moment the plan is armed (see
    :meth:`FaultyLink.arm`), not absolute clock time, so experiments can
    publish images fault-free and start the outage "now".
    """

    start_s: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.duration_s < 0:
            raise ValueError("outage start and duration must be non-negative")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def contains(self, offset_s: float) -> bool:
        return self.start_s <= offset_s < self.end_s


@dataclass(frozen=True)
class BrownoutWindow:
    """A time span during which the targeted peer is slow, not down.

    Models the server-side degradation between healthy and dead: an
    overloaded or GC-thrashing replica that still answers, just at
    ``factor`` times its nominal service time.  Brownouts are what make
    hedged fetches earn their keep — an outage is caught by the breaker,
    but a brownout only shows up as latency.
    """

    start_s: float
    duration_s: float
    factor: float = 4.0

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.duration_s < 0:
            raise ValueError("brownout start and duration must be non-negative")
        if self.factor < 1.0:
            raise ValueError("brownout factor must be >= 1")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def contains(self, offset_s: float) -> bool:
        return self.start_s <= offset_s < self.end_s


@dataclass(frozen=True)
class FaultPlan:
    """A declarative description of how the wire misbehaves.

    * ``drop_rate`` — probability a transfer (request or response) is
      lost; the client waits out ``timeout_s`` and sees a
      :class:`~repro.common.errors.TimeoutError`.
    * ``corrupt_rate`` — probability a response payload is corrupted in
      flight.  A fraction ``corrupt_detect_rate`` of corruptions are
      caught by the transport's framing checksum
      (:class:`~repro.common.errors.CorruptPayloadError`, retryable);
      the rest are delivered as tampered payloads for end-to-end
      integrity checks to catch.
    * ``spike_rate`` / ``spike_factor`` — probability a transfer takes
      ``spike_factor`` times its nominal duration (congestion burst);
      the transfer still succeeds.
    * ``outages`` — windows (relative to arming) during which every
      attempt fails with :class:`~repro.common.errors.UnavailableError`
      after charging ``outage_stall_s``.
    * ``brownouts`` — windows (relative to arming) during which every
      transfer is stretched by the window's slowdown factor; the
      transfer still succeeds.  The server-side analogue of a spike.
    * ``targets`` — endpoint names the plan applies to; ``None`` means
      all RPC traffic.  Transfers outside any RPC call are never
      touched.
    * ``label_prefixes`` — transfer-label prefixes the plan applies to;
      ``None`` means every transfer of a targeted call.  This is how
      faults are scoped *below* the endpoint: the chunk-granular read
      path labels its traffic ``gear-chunk:…``, so a plan with
      ``label_prefixes=("gear-chunk:",)`` corrupts or drops individual
      chunk transfers while whole-file downloads on the same endpoint
      sail through untouched.
    """

    seed: str = "faults"
    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    corrupt_detect_rate: float = 0.5
    spike_rate: float = 0.0
    spike_factor: float = 8.0
    timeout_s: float = 1.0
    outage_stall_s: float = 0.5
    outages: Tuple[OutageWindow, ...] = ()
    brownouts: Tuple[BrownoutWindow, ...] = ()
    targets: Optional[Tuple[str, ...]] = None
    label_prefixes: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        for name in ("drop_rate", "corrupt_rate", "corrupt_detect_rate",
                     "spike_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.spike_factor < 1.0:
            raise ValueError("spike_factor must be >= 1")
        if self.timeout_s <= 0 or self.outage_stall_s < 0:
            raise ValueError("timeout/stall costs must be positive")

    def applies_to(self, endpoint_name: Optional[str]) -> bool:
        """Does this plan target traffic to ``endpoint_name``?"""
        if endpoint_name is None:
            return False
        return self.targets is None or endpoint_name in self.targets

    def applies_to_label(self, label: str) -> bool:
        """Does this plan target a transfer labeled ``label``?"""
        if self.label_prefixes is None:
            return True
        return label.startswith(self.label_prefixes)

    @property
    def is_null(self) -> bool:
        """True when the plan can never produce a fault."""
        return (
            self.drop_rate == 0.0
            and self.corrupt_rate == 0.0
            and self.spike_rate == 0.0
            and not self.outages
            and not self.brownouts
        )


@dataclass
class LinkFaultStats(MetricSet):
    """What the fault injector actually did."""

    drops: int = 0
    corruptions: int = 0
    corruptions_detected: int = 0
    spikes: int = 0
    outage_rejections: int = 0
    brownout_stretches: int = 0

    @property
    def total_faults(self) -> int:
        return self.drops + self.corruptions + self.outage_rejections


class FaultyLink(Link):
    """A :class:`Link` that injects the faults a :class:`FaultPlan` describes.

    The RPC transport scopes each call with :meth:`begin_call` /
    :meth:`end_call` so the plan can target individual endpoints; raw
    (non-RPC) transfers pass through untouched.  Fault decisions are
    drawn from a seeded stream in transfer order, so identical call
    sequences see identical faults.
    """

    def __init__(
        self,
        clock: SimClock,
        plan: FaultPlan,
        *,
        bandwidth_mbps: float = 904.0,
        rtt_s: float = 0.0005,
        request_overhead_s: float = 0.0015,
    ) -> None:
        super().__init__(
            clock,
            bandwidth_mbps=bandwidth_mbps,
            rtt_s=rtt_s,
            request_overhead_s=request_overhead_s,
        )
        self.plan = plan
        self.fault_stats = LinkFaultStats()
        self._rng = rng_for("net-faults", plan.seed)
        #: Per-thread call scopes: under a SimScheduler each concurrent
        #: client process carries its own RPC scope, so interleaved calls
        #: cannot clobber one another's endpoint targeting.
        self._scopes: Dict[int, str] = {}
        #: Per-thread label of the most recent in-scope transfer, so
        #: :meth:`roll_corruption` can honour label-scoped plans (the
        #: response transfer's label decides whether its payload is fair
        #: game) without racing concurrent processes.
        self._labels: Dict[int, str] = {}
        self._armed_at: Optional[float] = clock.now

    # -- arming ------------------------------------------------------------

    def arm(self, at: Optional[float] = None) -> None:
        """Re-anchor outage windows at ``at`` (default: now).

        Experiments publish images fault-free, then ``arm()`` right
        before deploying so an ``OutageWindow(start_s=0, ...)`` begins at
        deployment time regardless of how long publishing took.
        """
        self._armed_at = self.clock.now if at is None else at

    def disarm(self) -> None:
        """Suspend outage windows until the next :meth:`arm`.

        Rate-based faults (drops, corruption, spikes) stay active — only
        the timed windows are anchored to arming.  Lets experiments warm
        up deployments cleanly, then start the outage "now".
        """
        self._armed_at = None

    @property
    def armed_at(self) -> Optional[float]:
        return self._armed_at

    # -- call scoping (set by RpcTransport) --------------------------------

    def begin_call(self, endpoint_name: str) -> None:
        self._scopes[threading.get_ident()] = endpoint_name

    def end_call(self) -> None:
        ident = threading.get_ident()
        self._scopes.pop(ident, None)
        self._labels.pop(ident, None)

    @property
    def _scope(self) -> Optional[str]:
        """The endpoint the calling process is currently talking to."""
        return self._scopes.get(threading.get_ident())

    @property
    def _active(self) -> bool:
        scope = self._scope
        return scope is not None and self.plan.applies_to(scope)

    # -- fault injection -----------------------------------------------------

    def _current_outage(self) -> Optional[OutageWindow]:
        if self._armed_at is None:
            return None
        offset = self.clock.now - self._armed_at
        for window in self.plan.outages:
            if window.contains(offset):
                return window
        return None

    def _current_brownout(self) -> Optional[BrownoutWindow]:
        if self._armed_at is None:
            return None
        offset = self.clock.now - self._armed_at
        for window in self.plan.brownouts:
            if window.contains(offset):
                return window
        return None

    def transfer(self, payload_bytes: int, label: str = "") -> float:
        if not self._active:
            return super().transfer(payload_bytes, label)
        self._labels[threading.get_ident()] = label
        if not self.plan.applies_to_label(label):
            return super().transfer(payload_bytes, label)
        plan = self.plan
        window = self._current_outage()
        if window is not None:
            self.fault_stats.outage_rejections += 1
            self.clock.advance(plan.outage_stall_s, f"fault-outage:{label}")
            raise UnavailableError(
                f"{self._scope!r} unreachable (outage until "
                f"t+{window.end_s:.2f}s) during {label!r}"
            )
        if plan.drop_rate and self._rng.random() < plan.drop_rate:
            self.fault_stats.drops += 1
            self.clock.advance(plan.timeout_s, f"fault-drop:{label}")
            raise TimeoutError(
                f"transfer {label!r} to {self._scope!r} timed out after "
                f"{plan.timeout_s:g}s (packet lost)"
            )
        if plan.spike_rate and self._rng.random() < plan.spike_rate:
            self.fault_stats.spikes += 1
            extra = self.transfer_time(payload_bytes) * (plan.spike_factor - 1)
            self.clock.advance(extra, f"fault-spike:{label}")
        brownout = self._current_brownout()
        if brownout is not None:
            self.fault_stats.brownout_stretches += 1
            extra = self.transfer_time(payload_bytes) * (brownout.factor - 1)
            self.clock.advance(extra, f"fault-brownout:{label}")
        return super().transfer(payload_bytes, label)

    def roll_corruption(self) -> Optional[str]:
        """Decide the fate of the response payload just transferred.

        Returns ``None`` (intact), ``"detected"`` (framing checksum
        caught the damage), or ``"undetected"`` (tampered payload is
        delivered to the caller).  Called by the transport once per
        successful response while a call scope is active.
        """
        if not self._active or not self.plan.corrupt_rate:
            return None
        if not self.plan.applies_to_label(
            self._labels.get(threading.get_ident(), "")
        ):
            return None
        if self._rng.random() >= self.plan.corrupt_rate:
            return None
        self.fault_stats.corruptions += 1
        if self._rng.random() < self.plan.corrupt_detect_rate:
            self.fault_stats.corruptions_detected += 1
            return "detected"
        return "undetected"

    def tamper(self, payload: object) -> Optional[object]:
        """Return a corrupted stand-in for ``payload``, or None.

        Only content-addressed payloads can carry *undetected* damage to
        the application layer — anything else (booleans, manifests,
        chunk maps) is framed small enough that the transport checksum
        always catches it, so this returns ``None`` and the transport
        raises :class:`~repro.common.errors.CorruptPayloadError`
        instead.  Collision-handled ``uid-…`` Gear files are not
        self-certifying either and likewise fall back to detection.
        """
        from repro.blob import Blob, Chunk
        from repro.gear.gearfile import GearFile

        if isinstance(payload, GearFile) and not payload.identity.startswith(
            "uid-"
        ):
            junk = (
                f"corrupt:{payload.identity}:{self._rng.random():.17f}"
            ).encode()
            return GearFile(identity=payload.identity, blob=Blob.from_bytes(junk))
        if isinstance(payload, Chunk):
            # A chunk is content-addressed by its manifest fingerprint:
            # same size, wrong bytes — only the client's per-chunk
            # verification can tell.
            return Chunk(
                seed=f"corrupt:{payload.seed}:{self._rng.random():.17f}",
                size=payload.size,
            )
        return None

    def __repr__(self) -> str:
        return (
            f"FaultyLink({self.bandwidth_mbps:g} Mbps, drop={self.plan.drop_rate}, "
            f"corrupt={self.plan.corrupt_rate}, outages={len(self.plan.outages)})"
        )


class CrashPoint(enum.Enum):
    """Where in the admission path the simulated client dies.

    Each point maps to a distinct durable torn state (DESIGN.md §9):

    * ``MID_FETCH`` — during the wire transfer: the journal holds an open
      fetch intent and the pool holds a *torn* partial temp file whose
      content cannot hash to its identity.
    * ``POST_FETCH`` — bytes fully staged, fetch-commit record not yet
      written: an intact but uncommitted pool entry.
    * ``MID_COMMIT`` — fetch-commit record written, pool commit not yet
      applied: the journal promises a file the pool still holds staged.
    * ``MID_LINK`` — the hard link into the index is physically placed
      but the link-commit record is missing.
    """

    MID_FETCH = "mid-fetch"
    POST_FETCH = "post-fetch"
    MID_COMMIT = "mid-commit"
    MID_LINK = "mid-link"


@dataclass(frozen=True)
class CrashPlan:
    """A declarative description of when the client process dies.

    * ``point`` — which admission-path checkpoint fires.
    * ``op_index`` — which occurrence of that point (0-based).  ``None``
      draws the index from a stream seeded by ``seed`` in
      ``[0, horizon)``, so sweeps get varied-but-reproducible crashes.
    * ``at_s`` — when set, the crash instead fires at the *first*
      occurrence of ``point`` at or after this virtual instant
      (``op_index`` is ignored): the scheduler-clock analogue of pulling
      the plug at an exact simulated time.
    * ``partial_fraction`` — how far the wire transfer got when a
      ``MID_FETCH`` crash lands; sets both the partial time charged and
      the size of the torn temp file left staged in the pool.
    """

    point: CrashPoint
    seed: str = "crash"
    op_index: Optional[int] = None
    horizon: int = 4
    at_s: Optional[float] = None
    partial_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.horizon < 1:
            raise ValueError("horizon must be at least 1")
        if self.op_index is not None and self.op_index < 0:
            raise ValueError("op_index must be non-negative")
        if self.at_s is not None and self.at_s < 0:
            raise ValueError("at_s must be non-negative")
        if not 0.0 <= self.partial_fraction <= 1.0:
            raise ValueError("partial_fraction must be in [0, 1]")


class CrashInjector:
    """Arms a :class:`CrashPlan` and fires it at most once.

    The admission path (the Gear File Viewer) calls :meth:`take` at each
    instrumented checkpoint; when the plan matches, the caller performs
    any point-specific teardown (e.g. staging the torn partial download)
    and then calls :meth:`fire`, which raises
    :class:`~repro.common.errors.ClientCrash` at the current virtual
    instant.  One injector produces exactly one crash; after it fires,
    every later checkpoint passes through untouched.
    """

    def __init__(self, clock: SimClock, plan: CrashPlan) -> None:
        self.clock = clock
        self.plan = plan
        self._counts: Dict[CrashPoint, int] = {point: 0 for point in CrashPoint}
        self._op_index = (
            plan.op_index
            if plan.op_index is not None
            else rng_for("crash", plan.seed, plan.point.value).randrange(
                plan.horizon
            )
        )
        #: The crash this injector produced (None while still armed).
        self.fired: Optional[ClientCrash] = None

    @property
    def armed(self) -> bool:
        """True while the planned crash has not happened yet."""
        return self.fired is None

    @property
    def op_index(self) -> int:
        """The resolved occurrence index (explicit or seeded draw)."""
        return self._op_index

    def take(self, point: CrashPoint) -> bool:
        """Count one occurrence of ``point``; True when the crash is due."""
        if self.fired is not None or point is not self.plan.point:
            return False
        occurrence = self._counts[point]
        self._counts[point] += 1
        if self.plan.at_s is not None:
            return self.clock.now >= self.plan.at_s
        return occurrence == self._op_index

    def fire(self, point: CrashPoint) -> None:
        """Kill the client: record the crash and raise it."""
        crash = ClientCrash(
            f"client crashed at {point.value} "
            f"(op {self._counts[point] - 1}, t={self.clock.now:.6f}s)",
            point=point.value,
            op_index=self._counts[point] - 1,
            at_s=self.clock.now,
        )
        self.fired = crash
        raise crash

    def __repr__(self) -> str:
        state = "armed" if self.armed else f"fired@{self.fired.at_s:.3f}s"
        return f"CrashInjector({self.plan.point.value}, op={self._op_index}, {state})"


def lossy_plan(
    seed: str = "faults",
    *,
    drop_rate: float = 0.05,
    corrupt_rate: float = 0.02,
    targets: Optional[Tuple[str, ...]] = None,
) -> FaultPlan:
    """A moderately hostile wire: a few percent drops and corruption."""
    return FaultPlan(
        seed=seed,
        drop_rate=drop_rate,
        corrupt_rate=corrupt_rate,
        targets=targets,
    )


def chunk_plan(
    seed: str = "chunk-faults",
    *,
    drop_rate: float = 0.0,
    corrupt_rate: float = 0.0,
    corrupt_detect_rate: float = 0.5,
    outages: Tuple[OutageWindow, ...] = (),
    targets: Optional[Tuple[str, ...]] = ("gear-registry",),
) -> FaultPlan:
    """A plan scoped to chunk-granular traffic (``gear-chunk:`` labels).

    Drops, corruption, and outage windows land only on ``download_chunk``
    transfers and their chunk-map lookups; whole-file fetches on the same
    registry endpoint are untouched.  This is how the chunk path's
    integrity/retry machinery is exercised in isolation.
    """
    return FaultPlan(
        seed=seed,
        drop_rate=drop_rate,
        corrupt_rate=corrupt_rate,
        corrupt_detect_rate=corrupt_detect_rate,
        outages=outages,
        targets=targets,
        label_prefixes=("gear-chunk:", "gear-chunkmap:"),
    )


def byzantine_plan(
    seed: str = "byzantine",
    *,
    corrupt_rate: float = 1.0,
    targets: Optional[Tuple[str, ...]] = None,
) -> FaultPlan:
    """A replica that serves wrong bytes with a straight face.

    Every corruption is *undetected* at the transport layer
    (``corrupt_detect_rate=0``) so only the end-to-end fingerprint
    verification in the Gear File Viewer can catch it — which it does,
    and converts into a replica demotion signal (DESIGN.md §10).
    """
    return FaultPlan(
        seed=seed,
        corrupt_rate=corrupt_rate,
        corrupt_detect_rate=0.0,
        targets=targets,
    )
