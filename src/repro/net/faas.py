"""Overload-robust FaaS tier: three-tier Gear cache for cold starts.

The paper motivates Gear with serverless cold-start latency (§I); the
On-demand Container Loading in AWS Lambda paper (PAPERS.md) shows the
production topology: every invocation's read path walks

    per-node SharedFilePool → shared intermediate cache tier → registry

This module builds that tier and — the headline — the robustness
machinery that keeps cold-start tails bounded when a 10x invocation
burst, a shared-tier outage, or a cache stampede hits:

* **Single-flight request coalescing** at the shared tier: a burst of
  identical cold starts finds one upstream fetch in flight and waits on
  its :class:`~repro.common.clock.SimEvent` instead of stampeding the
  registry — upstream fetches per unique fingerprint stay ≤ 1 while the
  tier is healthy (tracked by ``duplicate_upstream_fetches``, which the
  CLI gates at zero).
* **Typed backpressure**: the tier bounds *upstream* concurrency with a
  shared :class:`~repro.net.resilience.AdmissionGate` and sheds excess
  misses with :class:`~repro.common.errors.TierOverloadedError`.  A shed
  is deliberate load control, not a health signal — the chain falls
  through to the registry (and backs off under the fabric
  :class:`~repro.net.resilience.RetryPolicy` only when *every* tier
  failed) but never counts a shed against a circuit breaker.  Cache hits
  and coalesced waiters bypass the gate entirely: admission bounds the
  expensive upstream path, not the cheap served-from-memory one.
* **Per-tier circuit breaking**: outages/brownouts on the tier link
  (seeded :class:`~repro.net.faults.FaultPlan` windows, scoped to the
  ``faas-tier`` pseudo-endpoint) trip the tier's
  :class:`~repro.net.ha.CircuitBreaker` after repeated failures, so
  mid-spike outages degrade to direct registry fetches without paying
  the tier's stall on every call; half-open probes re-admit the tier
  when the window passes.
* **Graceful degradation with byte-identical results**: nodes commit
  only viewer-verified bytes (the PR 1 fingerprint/quarantine path), so
  container filesystems are byte-identical whether bytes came from the
  node pool, the shared tier, or the registry.  A *byzantine* shared
  tier (well-formed wrong bytes) is caught by that same check; the
  fabric's ``report_corrupt_payload`` hook demotes the tier permanently
  (breaker forced open + blacklist) and the refetch takes the registry.

Determinism: arrival schedules, placement, and backoff jitter all come
from seeded streams (:func:`~repro.common.rng.rng_for`,
:func:`~repro.common.hashing.stable_u64`); tier bookkeeping charges zero
virtual time, so with the tier disabled the chain is byte- and
time-identical to the single-tier registry call.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.common.clock import SimClock, SimEvent, SimScheduler
from repro.common.errors import NotFoundError, TierOverloadedError
from repro.common.hashing import stable_u64
from repro.common.stats import percentile
from repro.net.ha import GEAR_ENDPOINT, CircuitBreaker
from repro.net.link import Link
from repro.net.resilience import RETRYABLE_ERRORS, AdmissionGate, RetryPolicy
from repro.obs.metrics import MetricSet
from repro.obs.timeline import TimelineSampler
from repro.workloads.schedule import ScheduledInvocation

#: Pseudo-endpoint name tier transfers are scoped under, so a
#: :class:`~repro.net.faults.FaultPlan` with ``targets=("faas-tier",)``
#: injects outages/brownouts on the shared tier and nothing else.
FAAS_TIER_ENDPOINT = "faas-tier"


@dataclass
class FaasStats(MetricSet):
    """Fleet-wide accounting for the FaaS distribution fabric.

    One shared instance per fabric (like :class:`~repro.net.edge.
    EdgeStats`); run reports diff :meth:`as_dict` snapshots.
    """

    #: Gear-file fetches that reached the fabric chain (node pool misses).
    fetches: int = 0
    #: Fetches served from the shared tier's cache (including coalesced
    #: waiters served after their leader's fill landed).
    tier_hits: int = 0
    #: Fetches that found an identical fetch in flight and waited on it
    #: instead of going upstream — the suppressed stampede.
    tier_coalesced: int = 0
    #: Upstream (tier → registry) fetches the tier performed on miss.
    tier_upstream_fetches: int = 0
    #: Upstream fetches for an identity the tier had already fetched and
    #: not evicted/expired/invalidated since.  Must stay 0 while the
    #: tier is healthy: the stampede-suppression invariant.
    duplicate_upstream_fetches: int = 0
    #: Misses the tier's admission gate shed (TierOverloadedError).
    tier_sheds: int = 0
    #: Sheds observed by the client chain (== tier_sheds unless a shed
    #: surfaced through a coalesced path).
    sheds_seen: int = 0
    #: Tier attempts that failed retryably (outage, timeout) and fell
    #: over to the registry.
    tier_failovers: int = 0
    #: Chain calls that skipped the tier because its breaker was open.
    breaker_skips: int = 0
    #: Fetches served by direct registry fallback (tier missing, shed,
    #: failed, skipped, or demoted).
    registry_fallbacks: int = 0
    #: Payload bytes served from the tier cache over the tier link.
    tier_bytes: int = 0
    #: Registry egress the tier absorbed (bytes served from its cache
    #: that a tierless topology would have pulled over the WAN).
    egress_saved_bytes: int = 0
    #: Cache entries evicted for capacity (LRU).
    tier_evictions: int = 0
    #: Cache entries dropped because their TTL lapsed.
    tier_expirations: int = 0
    #: Whole-chain retry rounds that slept under the fabric RetryPolicy.
    backoffs: int = 0
    #: Chains that exhausted the retry policy.
    giveups: int = 0
    #: Times the tier was demoted for serving wrong bytes (byzantine).
    demotions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.metrics())


class _TierEntry:
    """One cached Gear file in the shared tier."""

    __slots__ = ("gear_file", "stored_at", "wire_bytes")

    def __init__(self, gear_file: Any, stored_at: float) -> None:
        self.gear_file = gear_file
        self.stored_at = stored_at
        self.wire_bytes = gear_file.compressed_size


class SharedCacheTier:
    """The capacity-bounded intermediate cache between nodes and registry.

    Owns its own :class:`~repro.net.link.Link` (separate
    :class:`~repro.net.link.TransferLog`, so ``testbed.link.log`` keeps
    counting registry WAN egress only), an LRU cache bounded by
    ``capacity_bytes`` with optional ``ttl_s`` expiry, an
    :class:`~repro.net.resilience.AdmissionGate` bounding concurrent
    *upstream* fills, and the single-flight table that coalesces
    identical concurrent misses.  Cache bookkeeping charges zero virtual
    time; only tier-link transfers and upstream WAN calls advance the
    clock.
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        link: Link,
        *,
        stats: FaasStats,
        capacity_bytes: Optional[int] = None,
        ttl_s: Optional[float] = None,
        admission: Optional[AdmissionGate] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError("tier capacity must be positive when set")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError("tier TTL must be positive when set")
        self.name = name
        self.clock = clock
        self.link = link
        self.stats = stats
        self.capacity_bytes = capacity_bytes
        self.ttl_s = ttl_s
        self.admission = admission if admission is not None else AdmissionGate()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.byzantine = False
        #: identity → cache entry, LRU order (oldest first).
        self.cache: "OrderedDict[str, _TierEntry]" = OrderedDict()
        #: identity → in-flight fill event (single-flight coalescing).
        self.inflight: Dict[str, SimEvent] = {}
        #: Identities upstream-fetched and still *valid* (not evicted,
        #: expired, or quarantined).  A second upstream fetch for a
        #: member is a suppression failure (``duplicate_upstream_fetches``).
        self._fetched: Set[str] = set()
        self.used_bytes = 0

    # -- fault scoping -------------------------------------------------

    def _scope_begin(self) -> None:
        begin = getattr(self.link, "begin_call", None)
        if begin is not None:
            begin(FAAS_TIER_ENDPOINT)

    def _scope_end(self) -> None:
        end = getattr(self.link, "end_call", None)
        if end is not None:
            end()

    # -- cache maintenance (zero virtual time) -------------------------

    def _invalidate(self, identity: str) -> None:
        entry = self.cache.pop(identity, None)
        if entry is not None:
            self.used_bytes -= entry.wire_bytes
        self._fetched.discard(identity)

    def _lookup(self, identity: str) -> Optional[_TierEntry]:
        """Fresh cache entry for ``identity``, LRU-touched; None on miss.

        A TTL-lapsed entry is dropped here — and leaves ``_fetched`` —
        so its eventual refill is a legitimate new upstream fetch, not a
        suppression failure.
        """
        entry = self.cache.get(identity)
        if entry is None:
            return None
        if self.ttl_s is not None and (
            self.clock.now - entry.stored_at >= self.ttl_s
        ):
            self._invalidate(identity)
            self.stats.tier_expirations += 1
            return None
        self.cache.move_to_end(identity)
        return entry

    def _insert(self, identity: str, gear_file: Any) -> None:
        entry = _TierEntry(gear_file, self.clock.now)
        if self.capacity_bytes is not None:
            if entry.wire_bytes > self.capacity_bytes:
                return  # larger than the whole tier: serve-through only
            while self.used_bytes + entry.wire_bytes > self.capacity_bytes:
                victim, _ = next(iter(self.cache.items()))
                self._invalidate(victim)
                self.stats.tier_evictions += 1
        self.cache[identity] = entry
        self.used_bytes += entry.wire_bytes
        self._fetched.add(identity)

    def evict(self, identity: str) -> None:
        """Drop ``identity`` (quarantine/corruption path)."""
        self._invalidate(identity)

    # -- serving -------------------------------------------------------

    def _deliver(self, identity: str, gear_file: Any, tag: str) -> Any:
        """Pay the tier-link payload transfer; junk it if byzantine."""
        wire = gear_file.compressed_size
        if self.byzantine:
            from repro.blob import Blob
            from repro.gear.gearfile import GearFile

            junk = Blob.from_bytes(
                f"byzantine:{self.name}:{identity}".encode("utf-8")
            )
            self.link.transfer(wire, label=f"{tag}:tier-payload")
            return GearFile(identity=identity, blob=junk)
        self.link.transfer(wire, label=f"{tag}:tier-payload")
        return gear_file

    def fetch(self, identity: str, base: Any, label: Optional[str] = None) -> Any:
        """Serve ``identity`` from cache, a coalesced fill, or upstream.

        Raises :class:`TierOverloadedError` when the miss path is full
        (never counted against the breaker by callers), retryable
        transport errors when the tier link is in an outage window, and
        re-raises upstream :class:`NotFoundError` as authoritative.
        """
        from repro.net.transport import RpcTransport

        clock = self.clock
        stats = self.stats
        tag = label or f"{GEAR_ENDPOINT}.download"
        self._scope_begin()
        try:
            # The request frame is where an outage window rejects us.
            self.link.transfer(
                RpcTransport.REQUEST_FRAME_BYTES, label=f"{tag}:tier-request"
            )
            entry = self._lookup(identity)
            if entry is not None:
                stats.tier_hits += 1
                stats.tier_bytes += entry.wire_bytes
                stats.egress_saved_bytes += entry.wire_bytes
                return self._deliver(identity, entry.gear_file, tag)
            leader = self.inflight.get(identity)
            if leader is not None:
                # Single-flight: wait for the identical fill in flight.
                stats.tier_coalesced += 1
                with clock.span("tier_wait", fp=identity[:12]):
                    leader.wait()
                entry = self._lookup(identity)
                if entry is not None:
                    stats.tier_hits += 1
                    stats.tier_bytes += entry.wire_bytes
                    stats.egress_saved_bytes += entry.wire_bytes
                    return self._deliver(identity, entry.gear_file, tag)
                # Leader failed or the entry was too big to cache: fall
                # through to our own (gated) fill.
            return self._fill(identity, base, tag, label)
        finally:
            self._scope_end()

    def _fill(self, identity: str, base: Any, tag: str, label: Optional[str]) -> Any:
        stats = self.stats
        if not self.admission.try_enter():
            stats.tier_sheds += 1
            raise TierOverloadedError(
                f"shared tier {self.name!r} admission queue full "
                f"(capacity {self.admission.capacity})"
            )
        event: Optional[SimEvent] = None
        if self.clock.scheduler is not None:
            event = SimEvent(self.clock)
            self.inflight[identity] = event
        try:
            with self.clock.span("tier_fill", tier=self.name, fp=identity[:12]):
                value = base.call(GEAR_ENDPOINT, "download", identity, label=label)
            stats.tier_upstream_fetches += 1
            if identity in self._fetched:
                stats.duplicate_upstream_fetches += 1
            # Write-through gated on verification, exactly like the edge
            # site cache: a corrupt WAN payload never poisons the tier.
            if identity.startswith("uid-") or (
                value.blob.fingerprint == identity
            ):
                self._insert(identity, value)
            return self._deliver(identity, value, tag)
        finally:
            self.admission.exit()
            if event is not None:
                self.inflight.pop(identity, None)
                event.fire()

    def __repr__(self) -> str:
        return (
            f"SharedCacheTier({self.name}, cached={len(self.cache)}, "
            f"used={self.used_bytes}B, inflight={len(self.inflight)})"
        )


class FaasTransport:
    """Per-node transport facade routing Gear downloads through the tier.

    Presents the :class:`~repro.net.transport.RpcTransport` surface the
    daemon/driver/viewer expect.  Only ``gear-registry.download`` walks
    the tier chain; uploads, queries, and the Docker registry go
    straight to the shared base transport (the WAN).
    """

    def __init__(self, fabric: "FaasFabric", node_name: str) -> None:
        self.fabric = fabric
        self.node_name = node_name
        self.base = fabric.base

    @property
    def link(self) -> Link:
        return self.base.link

    @property
    def retry_policy(self) -> Optional[RetryPolicy]:
        return self.base.retry_policy

    def bind(self, endpoint: Any) -> Any:
        return self.base.bind(endpoint)

    def has_endpoint(self, name: str) -> bool:
        return self.base.has_endpoint(name)

    def endpoint(self, name: str) -> Any:
        return self.base.endpoint(name)

    def reset_stats(self) -> None:
        self.base.reset_stats()
        self.fabric.stats.reset()

    def call(
        self,
        endpoint_name: str,
        method: str,
        *args: Any,
        request_payload_bytes: int = 0,
        label: Optional[str] = None,
        **kwargs: Any,
    ) -> Any:
        if endpoint_name == GEAR_ENDPOINT and method == "download":
            return self.fabric.fetch(args[0], label=label)
        return self.base.call(
            endpoint_name,
            method,
            *args,
            request_payload_bytes=request_payload_bytes,
            label=label,
            **kwargs,
        )

    def report_corrupt_payload(self, identity: str) -> None:
        """Viewer hook: wrong bytes that passed the wire checksum."""
        self.fabric.report_corrupt(identity)

    def __repr__(self) -> str:
        return f"FaasTransport({self.node_name})"


class FaasFabric:
    """The fleet-wide FaaS distribution fabric.

    Owns the shared tier, the :class:`FaasStats`, and the fabric-level
    :class:`RetryPolicy` governing whole-chain backoff rounds.  Node
    testbeds are minted by :meth:`client`, each wired over a
    :class:`FaasTransport`.
    """

    def __init__(
        self,
        root: Any,
        tier: SharedCacheTier,
        *,
        stats: FaasStats,
        seed: str = "faas",
        retry_policy: Optional[RetryPolicy] = None,
        pool_capacity_bytes: Optional[int] = None,
        pool_policy: Any = None,
    ) -> None:
        self.root = root
        self.base = root.transport
        self.tier = tier
        self.stats = stats
        self.seed = seed
        self.retry_policy = retry_policy
        self.pool_capacity_bytes = pool_capacity_bytes
        self.pool_policy = pool_policy
        #: Permanently demoted tier (served wrong bytes).  Breakers heal;
        #: a byzantine tier does not.
        self.blacklisted = False
        #: Identities whose last serve came from the tier (corruption
        #: attribution, mirroring the edge fabric's ``_last_served``).
        self._tier_served: Set[str] = set()
        self.nodes: List[Tuple[str, Any]] = []
        self._next_index = 0

    @property
    def clock(self) -> SimClock:
        return self.root.clock

    def client(self, name: Optional[str] = None) -> Any:
        """Mint one FaaS node: fresh client state behind a FaasTransport."""
        from repro.bench.environment import Testbed, _register_client_metrics
        from repro.docker.daemon import DockerDaemon
        from repro.gear.driver import GearDriver
        from repro.gear.pool import SharedFilePool

        index = self._next_index
        self._next_index += 1
        node_name = name if name is not None else f"faas-node-{index:03d}"
        pool_kwargs: Dict[str, Any] = {}
        if self.pool_capacity_bytes is not None:
            pool_kwargs["capacity_bytes"] = self.pool_capacity_bytes
        if self.pool_policy is not None:
            pool_kwargs["policy"] = self.pool_policy
        pool = SharedFilePool(**pool_kwargs)
        transport = FaasTransport(self, node_name)
        daemon = DockerDaemon(self.clock, transport)
        driver = GearDriver(self.clock, daemon, transport, pool=pool)
        bed = Testbed(
            clock=self.clock,
            link=self.root.link,
            transport=transport,
            docker_registry=self.root.docker_registry,
            gear_registry=self.root.gear_registry,
            converter=self.root.converter,
            daemon=daemon,
            gear_driver=driver,
            fault_plan=self.root.fault_plan,
            ha=self.root.ha,
            metrics=self.root.metrics,
            faas=self,
        )
        self.nodes.append((node_name, pool))
        _register_client_metrics(bed)
        return bed

    # -- the degradation ladder ----------------------------------------

    def fetch(self, identity: str, label: Optional[str] = None) -> Any:
        """Resolve ``identity`` through shared tier → registry.

        Mirrors :meth:`~repro.net.edge.EdgeSite.fetch`: each *round*
        walks the whole chain once; only a round where every tier failed
        sleeps under the fabric retry policy before re-walking.  A tier
        shed falls through to the registry in the same round and is
        never recorded against the tier's breaker.
        """
        clock = self.clock
        stats = self.stats
        stats.fetches += 1
        retry_policy = self.retry_policy
        start = clock.now
        round_index = 1
        previous_backoff: Optional[float] = None
        while True:
            last_error: Optional[BaseException] = None
            tier = self.tier
            if tier is not None and not self.blacklisted:
                if tier.breaker.available(clock.now):
                    try:
                        with clock.span(
                            "tier_fetch", tier=tier.name, fp=identity[:12]
                        ):
                            value = tier.fetch(identity, self.base, label=label)
                    except TierOverloadedError as error:
                        # Deliberate load control: fall through to the
                        # registry, breaker untouched.
                        stats.sheds_seen += 1
                        last_error = error
                    except NotFoundError:
                        raise  # the tier asked the registry: authoritative
                    except RETRYABLE_ERRORS as error:
                        last_error = error
                        stats.tier_failovers += 1
                        tier.breaker.record_failure(clock.now)
                    else:
                        tier.breaker.record_success(clock.now)
                        self._tier_served.add(identity)
                        return value
                else:
                    stats.breaker_skips += 1
            try:
                with clock.span("registry_fallback", fp=identity[:12]):
                    value = self.base.call(
                        GEAR_ENDPOINT, "download", identity, label=label
                    )
            except NotFoundError:
                raise  # authoritative: no tier can have it
            except RETRYABLE_ERRORS as error:
                last_error = error
            else:
                stats.registry_fallbacks += 1
                self._tier_served.discard(identity)
                return value
            round_index += 1
            elapsed = clock.now - start
            if retry_policy is None or not retry_policy.should_retry(
                last_error, attempt=round_index, elapsed_s=elapsed
            ):
                if retry_policy is not None and retry_policy.is_retryable(
                    last_error
                ):
                    stats.giveups += 1
                raise last_error
            backoff = retry_policy.next_backoff(previous_backoff)
            retry_policy.charge(backoff)
            clock.advance(backoff, f"{GEAR_ENDPOINT}.download:faas-backoff")
            stats.backoffs += 1
            previous_backoff = backoff

    # -- quarantine ----------------------------------------------------

    def report_corrupt(self, identity: str) -> bool:
        """The viewer verified ``identity`` and it hashed wrong.

        If the tier served it last, demote the tier permanently: force
        its breaker open, blacklist it, and evict the poisoned entry.
        The viewer's refetch then takes the registry.  Returns whether
        the tier was demoted.
        """
        self.tier.evict(identity)
        if identity not in self._tier_served:
            return False
        self._tier_served.discard(identity)
        if not self.blacklisted:
            self.blacklisted = True
            self.tier.breaker.force_open(self.clock.now)
            self.stats.demotions += 1
        return True

    def audit_integrity(self) -> List[str]:
        """Every committed/cached payload that fails fingerprint naming.

        An empty list is the "zero poisoned commits" invariant: nothing
        a byzantine tier served ever reached a node pool, and nothing
        corrupt sits in the tier cache.
        """
        problems: List[str] = []
        for identity in sorted(self.tier.cache):
            entry = self.tier.cache[identity]
            if not identity.startswith("uid-") and (
                entry.gear_file.blob.fingerprint != identity
            ):
                problems.append(f"tier:{self.tier.name}:{identity}")
        for node_name, pool in self.nodes:
            for identity in pool.identities():
                if identity.startswith("uid-"):
                    continue
                inode = pool.peek(identity)
                if inode is not None and inode.blob is not None and (
                    inode.blob.fingerprint != identity
                ):
                    problems.append(f"node:{node_name}:{identity}")
        return problems

    def __repr__(self) -> str:
        return (
            f"FaasFabric(nodes={len(self.nodes)}, "
            f"tier={self.tier.name!r}, blacklisted={self.blacklisted})"
        )


# ---------------------------------------------------------------------------
# the platform: invocations over nodes


class _Resident:
    """One warm container on a node."""

    __slots__ = ("reference", "container", "fs_digest", "last_used_at")

    def __init__(
        self, reference: str, container: Any, fs_digest: str, last_used_at: float
    ) -> None:
        self.reference = reference
        self.container = container
        self.fs_digest = fs_digest
        self.last_used_at = last_used_at


@dataclass(frozen=True)
class InvocationResult:
    """One function invocation, as the platform measured it."""

    position: int
    function: str
    node: str
    reference: str
    kind: str  # "cold" | "warm" | "failed"
    latency_s: float
    fs_digest: str = ""
    degraded: bool = False
    error: str = ""
    #: Seconds from invocation start until the function's startup read
    #: set was satisfied (the service is *ready*) — always
    #: ``<= latency_s``.  Warm invocations are ready at dispatch.
    ready_s: float = 0.0


@dataclass(frozen=True)
class FaasRunReport:
    """One invocation-stream run: latency tails plus fabric accounting."""

    invocations: int
    cold_starts: int
    warm_starts: int
    failures: int
    reaped: int
    cold_p50_s: float
    cold_p99_s: float
    cold_p999_s: float
    #: Time-to-ready tails over cold starts (startup read set satisfied;
    #: each sample is ``<=`` its invocation's full cold latency).
    cold_ready_p50_s: float
    cold_ready_p99_s: float
    cold_ready_p999_s: float
    warm_p50_s: float
    warm_p999_s: float
    makespan_s: float
    wan_egress_bytes: int
    degraded: int
    #: Cold starts whose fs digest disagreed with an earlier cold start
    #: of the same reference — must be 0 (byte-identical guarantee).
    digest_conflicts: int
    #: reference → container fs digest (first cold start's).
    fs_digests: Dict[str, str]
    fabric: Dict[str, int]

    def as_dict(self) -> Dict[str, object]:
        return {
            "invocations": self.invocations,
            "cold_starts": self.cold_starts,
            "warm_starts": self.warm_starts,
            "failures": self.failures,
            "reaped": self.reaped,
            "cold_p50_s": self.cold_p50_s,
            "cold_p99_s": self.cold_p99_s,
            "cold_p999_s": self.cold_p999_s,
            "cold_ready_p50_s": self.cold_ready_p50_s,
            "cold_ready_p99_s": self.cold_ready_p99_s,
            "cold_ready_p999_s": self.cold_ready_p999_s,
            "warm_p50_s": self.warm_p50_s,
            "warm_p999_s": self.warm_p999_s,
            "makespan_s": self.makespan_s,
            "wan_egress_bytes": self.wan_egress_bytes,
            "degraded": self.degraded,
            "digest_conflicts": self.digest_conflicts,
            "fs_digests": dict(sorted(self.fs_digests.items())),
            "fabric": dict(sorted(self.fabric.items())),
        }


def _tail(values: Sequence[float], q: float) -> float:
    """Percentile with the wave-report empty sentinel (0.0)."""
    return percentile(values, q) if values else 0.0


class FaasPlatform:
    """Thousands of functions over a handful of nodes, invoked on time.

    Each function maps to a fixed node
    (:func:`~repro.common.hashing.stable_u64` placement).  The first
    invocation on its node is a *cold start*: a full Gear deployment
    (index pull, container create/start, startup trace) whose file
    fetches walk pool → shared tier → registry.  Later invocations find
    the container resident and are *warm* — unless ``keep_warm_s``
    lapsed and the container was reaped, which makes the next one cold
    again (the recycling that turns traffic spikes into cold-start
    storms).
    """

    #: Virtual cost of dispatching into an already-warm container.
    WARM_INVOKE_S = 0.0005

    def __init__(
        self,
        root: Any,
        fabric: FaasFabric,
        *,
        nodes: int = 4,
        keep_warm_s: Optional[float] = None,
        seed: str = "faas",
    ) -> None:
        if nodes < 1:
            raise ValueError("need at least one node")
        if keep_warm_s is not None and keep_warm_s <= 0:
            raise ValueError("keep_warm_s must be positive when set")
        self.root = root
        self.fabric = fabric
        self.keep_warm_s = keep_warm_s
        self.seed = seed
        self.node_names = [f"faas-node-{index:02d}" for index in range(nodes)]
        self.node_beds = [fabric.client(name) for name in self.node_names]
        self._residents: List[Dict[str, _Resident]] = [{} for _ in range(nodes)]
        self.reaped = 0

    def _node_for(self, function: str) -> int:
        return stable_u64("faas-place", self.seed, function) % len(
            self.node_beds
        )

    # -- one invocation ------------------------------------------------

    def _invoke(self, invocation: ScheduledInvocation) -> InvocationResult:
        from repro.bench.deploy import container_fs_digest
        from repro.workloads.tasks import task_for_category

        node_index = self._node_for(invocation.function)
        bed = self.node_beds[node_index]
        node_name = self.node_names[node_index]
        clock = bed.clock
        generated = invocation.image
        reference = _gear_reference(generated.reference)
        residents = self._residents[node_index]
        resident = residents.get(invocation.function)
        now = clock.now
        if resident is not None and (
            self.keep_warm_s is None
            or now - resident.last_used_at < self.keep_warm_s
        ):
            with clock.span(
                "faas_invoke",
                fn=invocation.function,
                node=node_name,
                kind="warm",
            ):
                clock.advance(self.WARM_INVOKE_S, "faas-warm-invoke")
            resident.last_used_at = clock.now
            return InvocationResult(
                position=invocation.position,
                function=invocation.function,
                node=node_name,
                reference=generated.reference,
                kind="warm",
                latency_s=self.WARM_INVOKE_S,
                fs_digest=resident.fs_digest,
                ready_s=self.WARM_INVOKE_S,
            )
        if resident is not None:
            # Idled past keep-warm: reap, then cold-start below.
            residents.pop(invocation.function, None)
            bed.gear_driver.destroy_container(resident.container)
            self.reaped += 1
        try:
            with clock.span(
                "faas_invoke",
                fn=invocation.function,
                node=node_name,
                kind="cold",
            ):
                timer = clock.timer()
                report = bed.gear_driver.pull_index(reference)
                container = bed.gear_driver.create_container(reference)
                bed.gear_driver.start_container(container)
                task = task_for_category(generated.category)
                pre_task_s = timer.elapsed()
                with clock.span("task", category=generated.category):
                    task_result = task.run(
                        clock, container.mount, generated.trace
                    )
                ready_s = pre_task_s + task_result.ready_s
                latency = timer.elapsed()
        except Exception as error:  # the zero-failed-invocations gate
            return InvocationResult(
                position=invocation.position,
                function=invocation.function,
                node=node_name,
                reference=generated.reference,
                kind="failed",
                latency_s=0.0,
                error=f"{type(error).__name__}: {error}",
            )
        degraded = report.degraded or container.mount.fault_stats.degraded_fetches > 0
        digest = container_fs_digest(container)
        residents[invocation.function] = _Resident(
            reference, container, digest, clock.now
        )
        return InvocationResult(
            position=invocation.position,
            function=invocation.function,
            node=node_name,
            reference=generated.reference,
            kind="cold",
            latency_s=latency,
            fs_digest=digest,
            degraded=degraded,
            ready_s=ready_s,
        )

    # -- the run -------------------------------------------------------

    def run(
        self,
        stream: Sequence[ScheduledInvocation],
        *,
        arm_faults: bool = True,
        sampler: Optional[TimelineSampler] = None,
    ) -> FaasRunReport:
        """Replay ``stream`` on the virtual clock and report the tails.

        An arrival-driver generator process sleeps to each arrival
        instant and spawns the invocation as its own process, so
        concurrent cold starts contend for links, coalesce in flight,
        and shed under the gate exactly as the burst demands.

        With a ``sampler`` attached its process runs alongside and is
        stopped once every invocation completed, so its wakes never
        extend the makespan (measured to the last invocation finish).
        The detached path spawns no extra process and is byte-identical
        to a run without the sampler.
        """
        clock = self.root.clock
        stats = self.fabric.stats
        fabric_before = stats.as_dict()
        egress_before = self.root.link.log.total_bytes
        if arm_faults:
            self.root.arm_faults()
        start = clock.now
        results: List[InvocationResult] = []
        finished: List[float] = []
        pending: List[Any] = []

        def invoke(invocation: ScheduledInvocation) -> None:
            begun = clock.now
            result = self._invoke(invocation)
            results.append(result)
            finished.append(clock.now)
            if sampler is not None and result.kind == "cold":
                sampler.record(
                    "cold_ready_s", begun + result.ready_s, result.ready_s
                )

        def arrivals() -> Iterator[float]:
            for invocation in stream:
                delay = start + invocation.at_s - clock.now
                if delay > 0:
                    yield delay
                    clock.note("faas-arrival-wait")
                pending.append(
                    scheduler.spawn(
                        invoke,
                        invocation,
                        name=f"faas-inv:{invocation.position:05d}",
                    )
                )

        with clock.span("faas_run", invocations=len(stream)):
            with SimScheduler(clock) as scheduler:
                if sampler is None:
                    # Detached: the exact pre-sampler code path.
                    if stream:
                        scheduler.spawn(arrivals, name="faas-arrivals")
                    scheduler.run()
                else:
                    scheduler.spawn(sampler.run, name="timeline")
                    if stream:
                        driver = scheduler.spawn(
                            arrivals, name="faas-arrivals"
                        )
                        scheduler.run_until(driver)
                    for process in list(pending):
                        scheduler.run_until(process)
                    sampler.stop()
                    scheduler.run()

        ordered = sorted(results, key=lambda r: r.position)
        cold = [r.latency_s for r in ordered if r.kind == "cold"]
        cold_ready = [r.ready_s for r in ordered if r.kind == "cold"]
        warm = [r.latency_s for r in ordered if r.kind == "warm"]
        failures = [r for r in ordered if r.kind == "failed"]
        digests: Dict[str, str] = {}
        conflicts = 0
        for result in ordered:
            if result.kind != "cold":
                continue
            seen = digests.setdefault(result.reference, result.fs_digest)
            if seen != result.fs_digest:
                conflicts += 1
        fabric_after = stats.as_dict()
        return FaasRunReport(
            invocations=len(ordered),
            cold_starts=len(cold),
            warm_starts=len(warm),
            failures=len(failures),
            reaped=self.reaped,
            cold_p50_s=_tail(cold, 50),
            cold_p99_s=_tail(cold, 99),
            cold_p999_s=_tail(cold, 99.9),
            cold_ready_p50_s=_tail(cold_ready, 50),
            cold_ready_p99_s=_tail(cold_ready, 99),
            cold_ready_p999_s=_tail(cold_ready, 99.9),
            warm_p50_s=_tail(warm, 50),
            warm_p999_s=_tail(warm, 99.9),
            makespan_s=(max(finished) - start) if finished else 0.0,
            wan_egress_bytes=self.root.link.log.total_bytes - egress_before,
            degraded=sum(1 for r in ordered if r.degraded),
            digest_conflicts=conflicts,
            fs_digests=digests,
            fabric={
                key: fabric_after[key] - fabric_before[key]
                for key in fabric_after
            },
        )


def _gear_reference(reference: str) -> str:
    """Map ``name:tag`` to the converter's published index reference."""
    name, _, tag = reference.partition(":")
    return f"{name}.gear:{tag}"
