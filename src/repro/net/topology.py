"""Multi-client topologies.

The paper's testbed is one client and one registry node.  Its motivation,
though, is fleet-scale: "the surge in the number of images puts high
pressure on the registry in terms of bandwidth" (§I).  This module models
that pressure point: N clients share the registry node's finite uplink,
so every byte a deployment downloads also consumes registry capacity.

The model is intentionally simple and deterministic: clients act in
sequence (a rolling deployment), each over its own access link, and the
registry uplink accumulates utilization.  The cluster experiment then
reports aggregate registry egress and the wall-clock cost of serving the
whole fleet — where Gear's 84% bandwidth reduction translates directly
into fleet capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.bench.environment import Testbed, make_testbed
from repro.common.clock import SimClock
from repro.gear.pool import SharedFilePool


@dataclass
class ClientNode:
    """One deployment node in the cluster."""

    name: str
    testbed: Testbed

    @property
    def downloaded_bytes(self) -> int:
        return self.testbed.link.log.total_bytes


class Cluster:
    """N client nodes against one registry pair.

    Every node gets its own daemon/driver/cache (its own machine) but all
    traffic crosses the shared registry endpoints, so registry-side
    accounting (egress bytes, requests served) is fleet-wide.
    """

    def __init__(
        self,
        node_count: int,
        *,
        bandwidth_mbps: float = 904.0,
        registry_uplink_mbps: Optional[float] = None,
    ) -> None:
        if node_count <= 0:
            raise ValueError("a cluster needs at least one node")
        self._root = make_testbed(bandwidth_mbps=bandwidth_mbps)
        self.registry_uplink_mbps = registry_uplink_mbps or bandwidth_mbps
        self.nodes: List[ClientNode] = []
        for index in range(node_count):
            testbed = self._root.fresh_client()
            self.nodes.append(ClientNode(name=f"node-{index:03d}", testbed=testbed))

    @property
    def clock(self) -> SimClock:
        return self._root.clock

    @property
    def registry_testbed(self) -> Testbed:
        return self._root

    @property
    def registry_egress_bytes(self) -> int:
        """All bytes the registry node served (every client shares the
        link log because they share the simulated wire)."""
        return self._root.link.log.total_bytes

    def registry_busy_seconds(self) -> float:
        """Time the registry uplink spent transmitting.

        With a shared uplink of ``registry_uplink_mbps``, serving
        ``registry_egress_bytes`` occupies the link for bytes/rate — the
        fleet-capacity number operators actually provision for.
        """
        rate = self.registry_uplink_mbps * 1e6 / 8.0
        return self.registry_egress_bytes / rate

    def each_node(
        self, action: Callable[[ClientNode], None]
    ) -> Dict[str, int]:
        """Run ``action`` on every node in sequence (a rolling deploy).

        Returns per-node download volume for the action.
        """
        per_node: Dict[str, int] = {}
        for node in self.nodes:
            before = self.registry_egress_bytes
            action(node)
            per_node[node.name] = self.registry_egress_bytes - before
        return per_node
