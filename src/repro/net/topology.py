"""Multi-client topologies.

The paper's testbed is one client and one registry node.  Its motivation,
though, is fleet-scale: "the surge in the number of images puts high
pressure on the registry in terms of bandwidth" (§I).  This module models
that pressure point: N clients share the registry node's finite uplink,
so every byte a deployment downloads also consumes registry capacity.

Two deployment disciplines are supported:

* :meth:`Cluster.each_node` — the seed model: clients act in sequence (a
  rolling deployment) and the registry uplink accumulates utilization.
  Deterministic and byte-identical to the original sequential clock.
* :meth:`Cluster.deploy_wave` — concurrent waves: up to ``concurrency``
  clients deploy simultaneously under a discrete-event scheduler, their
  transfers fair-sharing the registry uplink.  The wave report carries
  the numbers an operator provisions for — per-client deployment
  latency percentiles (p50/p95/p99), fleet makespan, and registry-uplink
  utilization over virtual time.  Runs are deterministic: the same
  cluster and action produce identical reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.bench.environment import Testbed, make_testbed
from repro.common.clock import SimClock, SimScheduler


def percentile(values: "List[float] | Tuple[float, ...]", q: float) -> float:
    """Nearest-rank percentile (deterministic; no interpolation).

    ``q`` is in [0, 100].  The nearest-rank definition keeps reports
    reproducible byte-for-byte across runs and platforms.
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass
class ClientNode:
    """One deployment node in the cluster."""

    name: str
    testbed: Testbed

    @property
    def downloaded_bytes(self) -> int:
        return self.testbed.link.log.total_bytes


@dataclass(frozen=True)
class WaveReport:
    """What one concurrent deployment wave cost, fleet-wide."""

    concurrency: int
    #: Per-node deployment latency, in node order.
    latencies_s: Tuple[float, ...]
    #: Virtual time from first wave start to last client completion.
    makespan_s: float
    #: Registry bytes served during the wave (all clients).
    egress_bytes: int
    #: Seconds the registry uplink spent carrying ≥1 transfer.
    uplink_busy_s: float

    @property
    def p50_s(self) -> float:
        return percentile(self.latencies_s, 50)

    @property
    def p95_s(self) -> float:
        return percentile(self.latencies_s, 95)

    @property
    def p99_s(self) -> float:
        return percentile(self.latencies_s, 99)

    @property
    def mean_s(self) -> float:
        return sum(self.latencies_s) / len(self.latencies_s)

    @property
    def utilization(self) -> float:
        """Fraction of the wave the registry uplink was transmitting."""
        if self.makespan_s <= 0:
            return 0.0
        return self.uplink_busy_s / self.makespan_s

    def as_dict(self) -> Dict[str, object]:
        """A JSON-ready summary (used by the CLI determinism gate)."""
        return {
            "concurrency": self.concurrency,
            "clients": len(self.latencies_s),
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
            "mean_s": self.mean_s,
            "makespan_s": self.makespan_s,
            "egress_bytes": self.egress_bytes,
            "uplink_busy_s": self.uplink_busy_s,
            "utilization": self.utilization,
        }


class Cluster:
    """N client nodes against one registry pair.

    Every node gets its own daemon/driver/cache (its own machine) but all
    traffic crosses the shared registry endpoints, so registry-side
    accounting (egress bytes, requests served) is fleet-wide.  The shared
    link *is* the registry uplink: concurrent flows fair-share its
    ``bandwidth_mbps``.
    """

    def __init__(
        self,
        node_count: int,
        *,
        bandwidth_mbps: float = 904.0,
        registry_uplink_mbps: Optional[float] = None,
    ) -> None:
        if node_count <= 0:
            raise ValueError("a cluster needs at least one node")
        self._root = make_testbed(bandwidth_mbps=bandwidth_mbps)
        self.registry_uplink_mbps = registry_uplink_mbps or bandwidth_mbps
        self.nodes: List[ClientNode] = []
        for index in range(node_count):
            testbed = self._root.fresh_client()
            self.nodes.append(ClientNode(name=f"node-{index:03d}", testbed=testbed))

    @property
    def clock(self) -> SimClock:
        return self._root.clock

    @property
    def registry_testbed(self) -> Testbed:
        return self._root

    @property
    def registry_egress_bytes(self) -> int:
        """All bytes the registry node served (every client shares the
        link log because they share the simulated wire)."""
        return self._root.link.log.total_bytes

    def registry_busy_seconds(self) -> float:
        """Time the registry uplink spent transmitting.

        With a shared uplink of ``registry_uplink_mbps``, serving
        ``registry_egress_bytes`` occupies the link for bytes/rate — the
        fleet-capacity number operators actually provision for.
        """
        rate = self.registry_uplink_mbps * 1e6 / 8.0
        return self.registry_egress_bytes / rate

    def each_node(
        self, action: Callable[[ClientNode], None]
    ) -> Dict[str, int]:
        """Run ``action`` on every node in sequence (a rolling deploy).

        Returns per-node download volume for the action.
        """
        per_node: Dict[str, int] = {}
        for node in self.nodes:
            before = self.registry_egress_bytes
            action(node)
            per_node[node.name] = self.registry_egress_bytes - before
        return per_node

    def deploy_wave(
        self,
        action: Callable[[ClientNode], None],
        *,
        concurrency: Optional[int] = None,
    ) -> WaveReport:
        """Run ``action`` on every node in concurrent waves.

        ``concurrency`` clients start simultaneously; each wave waits for
        the previous one to finish (a staged rollout).  The default is
        all nodes at once.  Transfers from concurrent clients fair-share
        the registry uplink, so per-client latency degrades with load —
        the contention regime the sequential model cannot measure.
        """
        if concurrency is None:
            concurrency = len(self.nodes)
        if concurrency <= 0:
            raise ValueError("concurrency must be positive")
        clock = self.clock
        link = self._root.link
        start = clock.now
        busy_before = link.busy_seconds
        egress_before = self.registry_egress_bytes
        latencies: Dict[str, float] = {}

        def client(node: ClientNode) -> None:
            begun = clock.now
            action(node)
            latencies[node.name] = clock.now - begun

        with SimScheduler(clock) as scheduler:
            for offset in range(0, len(self.nodes), concurrency):
                for node in self.nodes[offset:offset + concurrency]:
                    scheduler.spawn(client, node, name=node.name)
                scheduler.run()

        return WaveReport(
            concurrency=concurrency,
            latencies_s=tuple(latencies[node.name] for node in self.nodes),
            makespan_s=clock.now - start,
            egress_bytes=self.registry_egress_bytes - egress_before,
            uplink_busy_s=link.busy_seconds - busy_before,
        )
