"""Multi-client topologies.

The paper's testbed is one client and one registry node.  Its motivation,
though, is fleet-scale: "the surge in the number of images puts high
pressure on the registry in terms of bandwidth" (§I).  This module models
that pressure point: N clients share the registry node's finite uplink,
so every byte a deployment downloads also consumes registry capacity.

Two deployment disciplines are supported:

* :meth:`Cluster.each_node` — the seed model: clients act in sequence (a
  rolling deployment) and the registry uplink accumulates utilization.
  Deterministic and byte-identical to the original sequential clock.
* :meth:`Cluster.deploy_wave` — concurrent waves: up to ``concurrency``
  clients deploy simultaneously under a discrete-event scheduler, their
  transfers fair-sharing the registry uplink.  The wave report carries
  the numbers an operator provisions for — per-client deployment
  latency percentiles (p50/p95/p99), fleet makespan, and registry-uplink
  utilization over virtual time.  Runs are deterministic: the same
  cluster and action produce identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.bench.environment import (
    Testbed,
    make_edge_testbed,
    make_ha_testbed,
    make_testbed,
)
from repro.common.clock import SimClock, SimScheduler

# The single nearest-rank implementation lives in repro.common.stats so
# wave reports and the HA hedging deadline estimator cannot disagree on
# tiny-sample semantics; re-exported here for existing callers.
from repro.common.stats import percentile
from repro.net.edge import ChurnDriver, ChurnSchedule
from repro.net.faults import CrashPlan, CrashPoint
from repro.obs.timeline import TimelineSampler


def _outcome_ready_s(outcome: Any) -> Optional[float]:
    """Extract a wave action's time-to-ready, if it reported one."""
    ready = getattr(outcome, "ready_s", None)
    if isinstance(ready, (int, float)) and not isinstance(ready, bool):
        return float(ready)
    return None


def _ready_tuple(
    readiness: Dict[str, float], nodes: "List[ClientNode]"
) -> Tuple[float, ...]:
    """Per-node readiness in node order (empty unless every node
    reported one — a mixed wave would silently skew the tails)."""
    if len(readiness) != len(nodes):
        return ()
    return tuple(readiness[node.name] for node in nodes)


@dataclass
class ClientNode:
    """One deployment node in the cluster."""

    name: str
    testbed: Testbed

    @property
    def downloaded_bytes(self) -> int:
        return self.testbed.link.log.total_bytes


@dataclass(frozen=True)
class WaveReport:
    """What one concurrent deployment wave cost, fleet-wide."""

    concurrency: int
    #: Per-node deployment latency, in node order.
    latencies_s: Tuple[float, ...]
    #: Virtual time from first wave start to last client completion.
    makespan_s: float
    #: Registry bytes served during the wave (all clients).
    egress_bytes: int
    #: Seconds the registry uplink spent carrying ≥1 transfer.
    uplink_busy_s: float
    #: Per-node time-to-ready (startup read set satisfied), in node
    #: order.  Empty when the wave action returns no readiness (plain
    #: callables); populated whenever it returns a
    #: :class:`~repro.bench.deploy.DeploymentResult`-shaped object.
    ready_s: Tuple[float, ...] = ()

    def _latency_percentile(self, q: float) -> float:
        """Empty-wave sentinel: a wave that deployed nothing (zero
        clients, or every client shed) reports 0.0 rather than raising
        :class:`~repro.common.stats.EmptySampleError` mid-report."""
        if not self.latencies_s:
            return 0.0
        return percentile(self.latencies_s, q)

    def _ready_percentile(self, q: float) -> float:
        if not self.ready_s:
            return 0.0
        return percentile(self.ready_s, q)

    @property
    def p50_s(self) -> float:
        return self._latency_percentile(50)

    @property
    def p95_s(self) -> float:
        return self._latency_percentile(95)

    @property
    def p99_s(self) -> float:
        return self._latency_percentile(99)

    @property
    def mean_s(self) -> float:
        if not self.latencies_s:
            return 0.0
        return sum(self.latencies_s) / len(self.latencies_s)

    @property
    def ready_p50_s(self) -> float:
        return self._ready_percentile(50)

    @property
    def ready_p99_s(self) -> float:
        return self._ready_percentile(99)

    @property
    def ready_p999_s(self) -> float:
        return self._ready_percentile(99.9)

    @property
    def utilization(self) -> float:
        """Fraction of the wave the registry uplink was transmitting."""
        if self.makespan_s <= 0:
            return 0.0
        return self.uplink_busy_s / self.makespan_s

    def as_dict(self) -> Dict[str, object]:
        """A JSON-ready summary (used by the CLI determinism gate)."""
        return {
            "concurrency": self.concurrency,
            "clients": len(self.latencies_s),
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
            "mean_s": self.mean_s,
            "ready_p50_s": self.ready_p50_s,
            "ready_p99_s": self.ready_p99_s,
            "ready_p999_s": self.ready_p999_s,
            "makespan_s": self.makespan_s,
            "egress_bytes": self.egress_bytes,
            "uplink_busy_s": self.uplink_busy_s,
            "utilization": self.utilization,
        }


class Cluster:
    """N client nodes against one registry pair.

    Every node gets its own daemon/driver/cache (its own machine) but all
    traffic crosses the shared registry endpoints, so registry-side
    accounting (egress bytes, requests served) is fleet-wide.  The shared
    link *is* the registry uplink: concurrent flows fair-share its
    ``bandwidth_mbps``.
    """

    def __init__(
        self,
        node_count: int,
        *,
        bandwidth_mbps: float = 904.0,
        registry_uplink_mbps: Optional[float] = None,
        root: Optional[Testbed] = None,
    ) -> None:
        if node_count <= 0:
            raise ValueError("a cluster needs at least one node")
        self._root = root if root is not None else make_testbed(
            bandwidth_mbps=bandwidth_mbps
        )
        self.registry_uplink_mbps = registry_uplink_mbps or bandwidth_mbps
        #: Scheduler events executed by the most recent ``deploy_wave``
        #: (the numerator of events/sec in the speed harness).
        self.last_wave_events = 0
        self.nodes: List[ClientNode] = []
        for index in range(node_count):
            self.nodes.append(self._build_node(index))

    def _build_node(self, index: int) -> ClientNode:
        """Mint node ``index`` (subclasses swap in edge-aware clients)."""
        testbed = self._root.fresh_client()
        return ClientNode(name=f"node-{index:03d}", testbed=testbed)

    @property
    def clock(self) -> SimClock:
        return self._root.clock

    @property
    def registry_testbed(self) -> Testbed:
        return self._root

    @property
    def registry_egress_bytes(self) -> int:
        """All bytes the registry node served (every client shares the
        link log because they share the simulated wire)."""
        return self._root.link.log.total_bytes

    def registry_busy_seconds(self) -> float:
        """Time the registry uplink spent transmitting.

        With a shared uplink of ``registry_uplink_mbps``, serving
        ``registry_egress_bytes`` occupies the link for bytes/rate — the
        fleet-capacity number operators actually provision for.
        """
        rate = self.registry_uplink_mbps * 1e6 / 8.0
        return self.registry_egress_bytes / rate

    def each_node(
        self, action: Callable[[ClientNode], None]
    ) -> Dict[str, int]:
        """Run ``action`` on every node in sequence (a rolling deploy).

        Returns per-node download volume for the action.
        """
        per_node: Dict[str, int] = {}
        for node in self.nodes:
            before = self.registry_egress_bytes
            action(node)
            per_node[node.name] = self.registry_egress_bytes - before
        return per_node

    def deploy_wave(
        self,
        action: Callable[[ClientNode], None],
        *,
        concurrency: Optional[int] = None,
        sampler: Optional[TimelineSampler] = None,
    ) -> WaveReport:
        """Run ``action`` on every node in concurrent waves.

        ``concurrency`` clients start simultaneously; each wave waits for
        the previous one to finish (a staged rollout).  The default is
        all nodes at once.  Transfers from concurrent clients fair-share
        the registry uplink, so per-client latency degrades with load —
        the contention regime the sequential model cannot measure.

        Pass a :class:`~repro.obs.timeline.TimelineSampler` to record
        gauge series over the wave; it is spawned as its own scheduler
        process and stopped after the last client, with the makespan
        still measured to the last *client* completion.  Detached
        (``sampler=None``, the default) takes the exact pre-sampler code
        path — no extra process, byte-identical event stream.
        """
        if concurrency is None:
            concurrency = len(self.nodes)
        if concurrency <= 0:
            raise ValueError("concurrency must be positive")
        clock = self.clock
        link = self._root.link
        start = clock.now
        busy_before = link.busy_seconds
        egress_before = self.registry_egress_bytes
        latencies: Dict[str, float] = {}
        readiness: Dict[str, float] = {}
        finished_at: List[float] = []

        def client(node: ClientNode) -> None:
            begun = clock.now
            with clock.span("client_deploy", node=node.name):
                outcome = action(node)
            latencies[node.name] = clock.now - begun
            finished_at.append(clock.now)
            ready = _outcome_ready_s(outcome)
            if ready is not None:
                readiness[node.name] = ready
                if sampler is not None:
                    sampler.record("ready_s", begun + ready, ready)

        with clock.span("wave", concurrency=concurrency):
            with SimScheduler(clock) as scheduler:
                if sampler is None:
                    for offset in range(0, len(self.nodes), concurrency):
                        for node in self.nodes[offset:offset + concurrency]:
                            scheduler.spawn(client, node, name=node.name)
                        scheduler.run()
                    makespan_s = clock.now - start
                else:
                    scheduler.spawn(sampler.run, name="timeline")
                    for offset in range(0, len(self.nodes), concurrency):
                        batch = [
                            scheduler.spawn(client, node, name=node.name)
                            for node in self.nodes[offset:offset + concurrency]
                        ]
                        for process in batch:
                            scheduler.run_until(process)
                    sampler.stop()
                    scheduler.run()
                    makespan_s = (
                        (max(finished_at) - start) if finished_at else 0.0
                    )
                self.last_wave_events = scheduler.events_processed

        return WaveReport(
            concurrency=concurrency,
            latencies_s=tuple(latencies[node.name] for node in self.nodes),
            makespan_s=makespan_s,
            egress_bytes=self.registry_egress_bytes - egress_before,
            uplink_busy_s=link.busy_seconds - busy_before,
            ready_s=_ready_tuple(readiness, self.nodes),
        )


@dataclass(frozen=True)
class HAWaveReport(WaveReport):
    """A wave against a replicated registry tier: failover accounting."""

    fetches: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    cancels: int = 0
    wasted_hedge_bytes: int = 0
    sheds: int = 0
    failovers: int = 0
    backoffs: int = 0
    breaker_trips: int = 0
    demotions: int = 0
    #: Deployments that fell back to degraded Docker-pull mode (counted
    #: when the wave action returns a result with a ``degraded`` flag).
    degraded: int = 0
    probes: int = 0

    @property
    def hedge_rate(self) -> float:
        return self.hedges / self.fetches if self.fetches else 0.0

    @property
    def shed_rate(self) -> float:
        return self.sheds / self.fetches if self.fetches else 0.0

    def as_dict(self) -> Dict[str, object]:
        summary = super().as_dict()
        summary.update(
            {
                "fetches": self.fetches,
                "hedges": self.hedges,
                "hedge_wins": self.hedge_wins,
                "hedge_rate": self.hedge_rate,
                "cancels": self.cancels,
                "wasted_hedge_bytes": self.wasted_hedge_bytes,
                "sheds": self.sheds,
                "shed_rate": self.shed_rate,
                "failovers": self.failovers,
                "backoffs": self.backoffs,
                "breaker_trips": self.breaker_trips,
                "demotions": self.demotions,
                "degraded": self.degraded,
                "probes": self.probes,
            }
        )
        return summary


class HACluster(Cluster):
    """A cluster whose registry tier is a :class:`~repro.net.ha.ReplicaSet`.

    Same node model as :class:`Cluster`, but the root testbed carries N
    replicated Gear registries behind the :class:`~repro.net.ha.
    HATransport`, and :meth:`deploy_wave` runs the health-monitor probe
    process alongside the clients and reports HA accounting deltas.
    """

    def __init__(
        self,
        node_count: int,
        *,
        bandwidth_mbps: float = 904.0,
        registry_uplink_mbps: Optional[float] = None,
        **ha_kwargs: Any,
    ) -> None:
        root = make_ha_testbed(bandwidth_mbps=bandwidth_mbps, **ha_kwargs)
        super().__init__(
            node_count,
            bandwidth_mbps=bandwidth_mbps,
            registry_uplink_mbps=registry_uplink_mbps,
            root=root,
        )

    @property
    def ha(self):
        return self._root.ha

    def deploy_wave(
        self,
        action: Callable[[ClientNode], Any],
        *,
        concurrency: Optional[int] = None,
        sampler: Optional[TimelineSampler] = None,
    ) -> HAWaveReport:
        """Concurrent waves with the health monitor running alongside.

        The monitor is an infinite probe loop, so the wave cannot simply
        drain the heap: each client is awaited with ``run_until``, then
        the monitor is stopped and the heap drained (its final wake-up
        plus any straggler hedge losers).  The makespan is measured to
        the *last client completion* — straggler wake-ups during the
        drain do not inflate it.  When ``action`` returns an object with
        a ``degraded`` attribute (a ``DeploymentResult``), degraded-mode
        fallbacks are counted into the report.
        """
        if concurrency is None:
            concurrency = len(self.nodes)
        if concurrency <= 0:
            raise ValueError("concurrency must be positive")
        ha = self.ha
        if ha is None:
            raise ValueError("HACluster root testbed has no HA transport")
        clock = self.clock
        stats = ha.policy.stats
        replicas = ha.replica_set.replicas
        before = stats.as_dict()
        trips_before = ha.replica_set.breaker_trips
        probes_before = sum(r.stats.probes for r in replicas)
        busy_before = sum(link.busy_seconds for link in self._root.all_links())
        egress_before = self.registry_egress_bytes
        start = clock.now
        latencies: Dict[str, float] = {}
        readiness: Dict[str, float] = {}
        finished_at: List[float] = []
        degraded_total = [0]

        def client(node: ClientNode) -> None:
            begun = clock.now
            with clock.span("client_deploy", node=node.name):
                outcome = action(node)
            latencies[node.name] = clock.now - begun
            finished_at.append(clock.now)
            if outcome is not None and getattr(outcome, "degraded", False):
                degraded_total[0] += 1
            ready = _outcome_ready_s(outcome)
            if ready is not None:
                readiness[node.name] = ready
                if sampler is not None:
                    sampler.record("ready_s", begun + ready, ready)

        with clock.span("wave", concurrency=concurrency):
            with SimScheduler(clock) as scheduler:
                if sampler is not None:
                    scheduler.spawn(sampler.run, name="timeline")
                if ha.monitor is not None:
                    ha.monitor.start(scheduler)
                for offset in range(0, len(self.nodes), concurrency):
                    batch = [
                        scheduler.spawn(client, node, name=node.name)
                        for node in self.nodes[offset:offset + concurrency]
                    ]
                    for process in batch:
                        scheduler.run_until(process)
                if ha.monitor is not None:
                    ha.monitor.stop()
                if sampler is not None:
                    sampler.stop()
                scheduler.run()

        after = stats.as_dict()
        delta = {key: after[key] - before[key] for key in after}
        return HAWaveReport(
            concurrency=concurrency,
            latencies_s=tuple(latencies[node.name] for node in self.nodes),
            makespan_s=(max(finished_at) - start) if finished_at else 0.0,
            egress_bytes=self.registry_egress_bytes - egress_before,
            uplink_busy_s=(
                sum(link.busy_seconds for link in self._root.all_links())
                - busy_before
            ),
            fetches=delta["fetches"],
            hedges=delta["hedges"],
            hedge_wins=delta["hedge_wins"],
            cancels=delta["cancels"],
            wasted_hedge_bytes=delta["wasted_hedge_bytes"],
            sheds=delta["sheds_seen"],
            failovers=delta["failovers"],
            backoffs=delta["backoffs"],
            breaker_trips=ha.replica_set.breaker_trips - trips_before,
            demotions=delta["demotions"],
            degraded=degraded_total[0],
            probes=sum(r.stats.probes for r in replicas) - probes_before,
            ready_s=_ready_tuple(readiness, self.nodes),
        )


@dataclass(frozen=True)
class EdgeWaveReport(WaveReport):
    """A wave over the edge fabric: peer-tier and adversity accounting.

    ``egress_bytes`` (inherited) counts *registry* egress only — site
    links keep their own transfer logs — so the WAN savings the peer tier
    buys are directly visible.  ``lan_bytes``/``lan_busy_s`` account the
    intra-site traffic that replaced it.
    """

    fetches: int = 0
    peer_hits: int = 0
    site_hits: int = 0
    registry_fetches: int = 0
    peer_bytes: int = 0
    site_bytes: int = 0
    egress_saved_bytes: int = 0
    stale_resolutions: int = 0
    failovers: int = 0
    backoffs: int = 0
    giveups: int = 0
    breaker_skips: int = 0
    blacklists: int = 0
    peer_crashes: int = 0
    joins: int = 0
    leaves: int = 0
    gossip_rounds: int = 0
    #: Deployments that fell back to degraded Docker-pull mode.
    degraded: int = 0
    #: Intra-site (LAN) traffic during the wave, across all sites.
    lan_bytes: int = 0
    lan_busy_s: float = 0.0

    @property
    def peer_hit_rate(self) -> float:
        return self.peer_hits / self.fetches if self.fetches else 0.0

    @property
    def offload_rate(self) -> float:
        """Fraction of chain fetches the registry never saw."""
        if not self.fetches:
            return 0.0
        return (self.peer_hits + self.site_hits) / self.fetches

    def as_dict(self) -> Dict[str, object]:
        summary = super().as_dict()
        summary.update(
            {
                "fetches": self.fetches,
                "peer_hits": self.peer_hits,
                "peer_hit_rate": self.peer_hit_rate,
                "site_hits": self.site_hits,
                "offload_rate": self.offload_rate,
                "registry_fetches": self.registry_fetches,
                "peer_bytes": self.peer_bytes,
                "site_bytes": self.site_bytes,
                "egress_saved_bytes": self.egress_saved_bytes,
                "stale_resolutions": self.stale_resolutions,
                "failovers": self.failovers,
                "backoffs": self.backoffs,
                "giveups": self.giveups,
                "breaker_skips": self.breaker_skips,
                "blacklists": self.blacklists,
                "peer_crashes": self.peer_crashes,
                "joins": self.joins,
                "leaves": self.leaves,
                "gossip_rounds": self.gossip_rounds,
                "degraded": self.degraded,
                "lan_bytes": self.lan_bytes,
                "lan_busy_s": self.lan_busy_s,
            }
        )
        return summary


class EdgeCluster(Cluster):
    """A cluster whose nodes peer-serve Gear files within edge sites.

    Nodes are minted through the fabric (each gets an
    :class:`~repro.net.edge.EdgeTransport` and joins a site round-robin),
    so node ``i``'s peer name is its node name.  The adversity menu is
    declared up front and injected deterministically during
    :meth:`deploy_wave`:

    * ``churn_rate_per_s`` — seeded join/leave schedule over
      ``churn_horizon_s`` (at least one peer always stays online);
    * ``byzantine`` — node indices that serve corrupt bytes;
    * ``crash_node`` — node index whose peer crashes mid-serve on its
      ``crash_op_index``-th serve (a :class:`~repro.net.faults.CrashPlan`
      at ``MID_FETCH``).
    """

    def __init__(
        self,
        node_count: int,
        *,
        bandwidth_mbps: float = 904.0,
        registry_uplink_mbps: Optional[float] = None,
        churn_rate_per_s: float = 0.0,
        churn_horizon_s: float = 10.0,
        byzantine: Tuple[int, ...] = (),
        crash_node: Optional[int] = None,
        crash_op_index: int = 0,
        crash_partial_fraction: float = 0.5,
        seed: str = "edge",
        **edge_kwargs: Any,
    ) -> None:
        root = make_edge_testbed(
            bandwidth_mbps=bandwidth_mbps, seed=seed, **edge_kwargs
        )
        super().__init__(
            node_count,
            bandwidth_mbps=bandwidth_mbps,
            registry_uplink_mbps=registry_uplink_mbps,
            root=root,
        )
        fabric = root.edge
        assert fabric is not None
        self.fabric = fabric
        self.seed = seed
        for index in byzantine:
            fabric.peers[index].byzantine = True
        if crash_node is not None:
            fabric.peers[crash_node].arm_crash(
                root.clock,
                CrashPlan(
                    point=CrashPoint.MID_FETCH,
                    seed=seed,
                    op_index=crash_op_index,
                    partial_fraction=crash_partial_fraction,
                ),
            )
        schedule = ChurnSchedule.generate(
            [node.name for node in self.nodes],
            seed=seed,
            rate_per_s=churn_rate_per_s,
            horizon_s=churn_horizon_s,
        )
        self.churn = ChurnDriver(fabric, schedule)

    def _build_node(self, index: int) -> ClientNode:
        name = f"node-{index:03d}"
        return ClientNode(name=name, testbed=self._root.edge.client(name))

    def deploy_wave(
        self,
        action: Callable[[ClientNode], Any],
        *,
        concurrency: Optional[int] = None,
        sampler: Optional[TimelineSampler] = None,
    ) -> EdgeWaveReport:
        """Concurrent waves with gossip and churn running alongside.

        Per-site gossip loops and the churn driver are scheduler
        processes; like the HA health monitor they are stopped after the
        last client completes and the heap drained, with the makespan
        measured to the last client completion.
        """
        if concurrency is None:
            concurrency = len(self.nodes)
        if concurrency <= 0:
            raise ValueError("concurrency must be positive")
        clock = self.clock
        fabric = self.fabric
        stats = fabric.stats
        before = stats.as_dict()
        egress_before = self.registry_egress_bytes
        uplink_busy_before = self._root.link.busy_seconds
        lan_links = fabric.lan_links()
        lan_bytes_before = sum(link.log.total_bytes for link in lan_links)
        lan_busy_before = sum(link.busy_seconds for link in lan_links)
        start = clock.now
        latencies: Dict[str, float] = {}
        readiness: Dict[str, float] = {}
        finished_at: List[float] = []
        degraded_total = [0]

        def client(node: ClientNode) -> None:
            begun = clock.now
            with clock.span("client_deploy", node=node.name):
                outcome = action(node)
            latencies[node.name] = clock.now - begun
            finished_at.append(clock.now)
            ready = _outcome_ready_s(outcome)
            if ready is not None:
                readiness[node.name] = ready
                if sampler is not None:
                    sampler.record("ready_s", begun + ready, ready)
            if outcome is not None and getattr(outcome, "degraded", False):
                degraded_total[0] += 1

        with clock.span("wave", concurrency=concurrency):
            with SimScheduler(clock) as scheduler:
                if sampler is not None:
                    scheduler.spawn(sampler.run, name="timeline")
                for site in fabric.sites:
                    site.start_gossip(scheduler)
                self.churn.start(scheduler)
                for offset in range(0, len(self.nodes), concurrency):
                    batch = [
                        scheduler.spawn(client, node, name=node.name)
                        for node in self.nodes[offset:offset + concurrency]
                    ]
                    for process in batch:
                        scheduler.run_until(process)
                for site in fabric.sites:
                    site.stop_gossip()
                self.churn.stop()
                if sampler is not None:
                    sampler.stop()
                scheduler.run()

        after = stats.as_dict()
        delta = {key: after[key] - before[key] for key in after}
        return EdgeWaveReport(
            concurrency=concurrency,
            latencies_s=tuple(latencies[node.name] for node in self.nodes),
            makespan_s=(max(finished_at) - start) if finished_at else 0.0,
            egress_bytes=self.registry_egress_bytes - egress_before,
            uplink_busy_s=self._root.link.busy_seconds - uplink_busy_before,
            fetches=delta["fetches"],
            peer_hits=delta["peer_hits"],
            site_hits=delta["site_hits"],
            registry_fetches=delta["registry_fetches"],
            peer_bytes=delta["peer_bytes"],
            site_bytes=delta["site_bytes"],
            egress_saved_bytes=delta["egress_saved_bytes"],
            stale_resolutions=delta["stale_resolutions"],
            failovers=delta["failovers"],
            backoffs=delta["backoffs"],
            giveups=delta["giveups"],
            breaker_skips=delta["breaker_skips"],
            blacklists=delta["blacklists"],
            peer_crashes=delta["peer_crashes"],
            joins=delta["joins"],
            leaves=delta["leaves"],
            gossip_rounds=delta["gossip_rounds"],
            degraded=degraded_total[0],
            lan_bytes=(
                sum(link.log.total_bytes for link in lan_links)
                - lan_bytes_before
            ),
            lan_busy_s=(
                sum(link.busy_seconds for link in lan_links) - lan_busy_before
            ),
            ready_s=_ready_tuple(readiness, self.nodes),
        )
