"""Highly-available Gear registry serving tier.

The paper's Gear Registry is one file server (§III-C) — a single point
of failure and a single queueing bottleneck for exactly the fleet-scale
regime the paper motivates (§I).  This module adds the serving-tier
robustness layer around it, deterministic under the PR 2 scheduler:

* :class:`ReplicaSet` — N registries, each behind its own link and
  transport, kept consistent by in-process write fan-out on upload plus
  a seeded anti-entropy :meth:`~ReplicaSet.scrub` that repairs missing
  and corrupted copies;
* :class:`CircuitBreaker` — per-replica closed → open → half-open with
  virtual-time cooldowns, driven by call outcomes and by the
  :class:`HealthMonitor` probe process;
* :class:`HAFetchPolicy` — the client-side read path: replica selection
  (primary-first / least-loaded / seeded power-of-two-choices), hedged
  second fetch after a latency-percentile deadline with loser
  cancellation (charging only bytes actually moved), replica-by-replica
  failover, and backoff rounds under a :class:`~repro.net.resilience.
  RetryPolicy` before ever surfacing the outage to PR 1's degraded
  Docker-pull mode;
* server-side overload control — a bounded
  :class:`~repro.net.resilience.AdmissionGate` per replica (re-exported
  here for compatibility) sheds excess requests with a typed
  :class:`~repro.common.errors.RegistryOverloadedError`;
* :class:`HATransport` — a drop-in transport facade routing
  ``gear-registry`` traffic through the policy and everything else
  (Docker registry) to the base transport unchanged.

Everything is deterministic: selection and scrub order draw from
:func:`repro.common.rng.rng_for` streams, hedge deadlines come from the
shared nearest-rank :func:`repro.common.stats.percentile`, and all
bookkeeping is charged zero virtual time, so with every replica healthy
and no hedge fired the HA path is byte-identical to the single-registry
one.

This module deliberately does not import :mod:`repro.gear` (which
imports :mod:`repro.net`); replica registries are duck-typed against the
``GearRegistry`` verbs (query/upload/download/stat/delete/identities).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.clock import Process, SimClock, SimEvent
from repro.common.errors import (
    FetchCancelledError,
    NotFoundError,
    RegistryOverloadedError,
    TransportError,
    UnavailableError,
)
from repro.common.rng import rng_for
from repro.common.stats import percentile
from repro.obs.metrics import MetricSet
from repro.net.link import Link
from repro.net.resilience import (  # noqa: F401 - AdmissionGate re-exported
    RETRYABLE_ERRORS,
    AdmissionGate,
    RetryPolicy,
)
from repro.net.transport import RpcEndpoint, RpcStats, RpcTransport

#: The endpoint name every Gear registry binds (mirrors
#: ``GearRegistry.ENDPOINT_NAME`` without importing the gear layer).
GEAR_ENDPOINT = "gear-registry"

#: Registry-to-registry backplane rate the anti-entropy scrub copies at.
SCRUB_COPY_BPS = 200e6
#: Rate at which the scrub re-verifies resident copies (hashing).
SCRUB_VERIFY_BPS = 1e9


# ---------------------------------------------------------------------------
# circuit breaker


class BreakerState(enum.Enum):
    """Observable breaker states (half-open is derived, not stored)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Closed → open → half-open breaker on the virtual clock.

    Only two facts are stored — whether the breaker is open and when it
    opened — so the state machine cannot drift: ``HALF_OPEN`` is *derived*
    as "open and the cooldown has elapsed".  :meth:`available` is pure
    (selection filters may call it any number of times without changing
    behaviour); state only moves on :meth:`record_success` /
    :meth:`record_failure` / :meth:`force_open`.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        cooldown_s: float = 2.0,
        close_threshold: int = 1,
    ) -> None:
        if failure_threshold < 1 or close_threshold < 1:
            raise ValueError("breaker thresholds must be at least 1")
        if cooldown_s <= 0:
            raise ValueError("cooldown must be positive")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.close_threshold = close_threshold
        self._open = False
        self.opened_at: Optional[float] = None
        self._failure_streak = 0
        self._halfopen_successes = 0
        #: Times the breaker tripped open (including half-open re-opens
        #: and byzantine demotions).
        self.trips = 0

    def state(self, now: float) -> BreakerState:
        if not self._open:
            return BreakerState.CLOSED
        if now >= self.opened_at + self.cooldown_s:
            return BreakerState.HALF_OPEN
        return BreakerState.OPEN

    def available(self, now: float) -> bool:
        """May a request be sent right now?  Pure — no side effects."""
        return self.state(now) is not BreakerState.OPEN

    def record_success(self, now: float) -> None:
        if self._open:
            if now >= self.opened_at + self.cooldown_s:
                self._halfopen_successes += 1
                if self._halfopen_successes >= self.close_threshold:
                    self._open = False
                    self.opened_at = None
                    self._failure_streak = 0
                    self._halfopen_successes = 0
            # A success while hard-open is a straggler from before the
            # trip; it proves nothing about the replica now.
        else:
            self._failure_streak = 0

    def record_failure(self, now: float) -> None:
        if self._open:
            if now >= self.opened_at + self.cooldown_s:
                # Half-open trial failed: re-open for another cooldown.
                self.opened_at = now
                self._halfopen_successes = 0
                self.trips += 1
        else:
            self._failure_streak += 1
            if self._failure_streak >= self.failure_threshold:
                self._trip(now)

    def force_open(self, now: float) -> None:
        """Trip immediately (byzantine demotion: wrong bytes served)."""
        if self._open and now < self.opened_at + self.cooldown_s:
            return
        self._trip(now)

    def _trip(self, now: float) -> None:
        self._open = True
        self.opened_at = now
        self._failure_streak = 0
        self._halfopen_successes = 0
        self.trips += 1

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({'open' if self._open else 'closed'}, "
            f"trips={self.trips})"
        )


# ---------------------------------------------------------------------------
# stats


@dataclass
class ReplicaStats(MetricSet):
    """Per-replica serving accounting."""

    serves: int = 0
    failures: int = 0
    sheds: int = 0
    probes: int = 0
    probe_failures: int = 0


@dataclass
class HAStats(MetricSet):
    """Client-side HA policy accounting (fleet-wide, shared by clients)."""

    fetches: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    #: Loser completed in the same instant the winner did — too late to
    #: cancel; its full response bytes were transferred.
    hedge_late: int = 0
    cancels: int = 0
    wasted_hedge_bytes: int = 0
    failovers: int = 0
    backoffs: int = 0
    giveups: int = 0
    sheds_seen: int = 0
    #: Replicas filtered out of selection because their breaker was open.
    breaker_skips: int = 0
    demotions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.metrics())


# ---------------------------------------------------------------------------
# replicas


class Replica:
    """One Gear registry instance behind its own link and transport."""

    def __init__(
        self,
        name: str,
        index: int,
        registry: Any,
        link: Link,
        transport: RpcTransport,
        *,
        breaker: Optional[CircuitBreaker] = None,
        admission: Optional[AdmissionGate] = None,
    ) -> None:
        self.name = name
        self.index = index
        self.registry = registry
        self.link = link
        self.transport = transport
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.admission = admission if admission is not None else AdmissionGate()
        self.stats = ReplicaStats()

    def __repr__(self) -> str:
        return f"Replica({self.name!r}, serves={self.stats.serves})"


@dataclass(frozen=True)
class ScrubReport:
    """What one anti-entropy scrub round found and fixed."""

    examined: int
    repaired_missing: int
    repaired_corrupt: int
    unrepairable: int
    bytes_copied: int
    bytes_verified: int
    duration_s: float

    @property
    def repaired(self) -> int:
        return self.repaired_missing + self.repaired_corrupt


class ReplicaSet:
    """N replicated Gear registries presenting one logical registry.

    Duck-types the in-process ``GearRegistry`` surface (the converter,
    garbage collector, and benches hold the registry object directly):
    writes fan out to every replica, reads delegate to the primary.
    Replicas that miss a write (down at fan-out time) are repaired by
    :meth:`scrub`, the seeded anti-entropy pass.
    """

    ENDPOINT_NAME = GEAR_ENDPOINT

    def __init__(
        self,
        clock: SimClock,
        replicas: Sequence[Replica],
        *,
        seed: str = "ha",
    ) -> None:
        if not replicas:
            raise ValueError("a replica set needs at least one replica")
        self.clock = clock
        self.replicas = list(replicas)
        self.seed = seed
        self._scrub_rounds = 0

    @property
    def primary(self) -> Replica:
        return self.replicas[0]

    def available(self, now: float) -> List[Replica]:
        return [r for r in self.replicas if r.breaker.available(now)]

    @property
    def breaker_trips(self) -> int:
        return sum(r.breaker.trips for r in self.replicas)

    # -- GearRegistry duck surface (in-process, registry side) -------------

    def query(self, identity: str) -> bool:
        return self.primary.registry.query(identity)

    def upload(self, gear_file: Any) -> bool:
        results = [r.registry.upload(gear_file) for r in self.replicas]
        return results[0]

    def upload_many(self, gear_files: Any) -> Tuple[int, int]:
        stored = 0
        deduped = 0
        for gear_file in gear_files:
            if self.upload(gear_file):
                stored += 1
            else:
                deduped += 1
        return stored, deduped

    def download(self, identity: str) -> Any:
        return self.primary.registry.download(identity)

    def missing(self, identities: Any) -> List[str]:
        return self.primary.registry.missing(identities)

    def delete(self, identity: str) -> None:
        for replica in self.replicas:
            try:
                replica.registry.delete(identity)
            except NotFoundError:
                pass  # divergent replica never got the write

    def stat(self, identity: str) -> Any:
        return self.primary.registry.stat(identity)

    def corrupt(self, identity: str, gear_file: Any) -> None:
        self.primary.registry.corrupt(identity, gear_file)

    @property
    def upload_epoch(self) -> int:
        return self.primary.registry.upload_epoch

    @property
    def file_count(self) -> int:
        return self.primary.registry.file_count

    @property
    def stored_bytes(self) -> int:
        return self.primary.registry.stored_bytes

    @property
    def logical_bytes(self) -> int:
        return self.primary.registry.logical_bytes

    def identities(self) -> Any:
        return self.primary.registry.identities()

    # -- anti-entropy ------------------------------------------------------

    def scrub(self) -> ScrubReport:
        """Repair divergent replicas from a verified source copy.

        Walks the union of all replicas' identities in a seeded order,
        re-verifies every resident copy against its fingerprint, copies
        a good copy over missing or corrupted ones, and charges the
        verify/copy time to the clock.  Deterministic per round.
        """
        self._scrub_rounds += 1
        rng = rng_for("ha-scrub", self.seed, str(self._scrub_rounds))
        union = sorted({i for r in self.replicas for i in r.registry.identities()})
        rng.shuffle(union)
        started = self.clock.now
        repaired_missing = repaired_corrupt = unrepairable = 0
        bytes_copied = bytes_verified = 0
        for identity in union:
            source: Optional[Any] = None
            holders_bad: List[Replica] = []
            holders_missing: List[Replica] = []
            for replica in self.replicas:
                if not replica.registry.query(identity):
                    holders_missing.append(replica)
                    continue
                gear_file = replica.registry.download(identity)
                bytes_verified += gear_file.size
                if identity.startswith("uid-") or (
                    gear_file.blob.fingerprint == identity
                ):
                    if source is None:
                        source = gear_file
                else:
                    holders_bad.append(replica)
            if source is None:
                unrepairable += 1
                continue
            for replica in holders_missing:
                replica.registry.upload(source)
                repaired_missing += 1
                bytes_copied += source.compressed_size
            for replica in holders_bad:
                replica.registry.delete(identity)
                replica.registry.upload(source)
                repaired_corrupt += 1
                bytes_copied += source.compressed_size
        cost = bytes_verified / SCRUB_VERIFY_BPS + bytes_copied / SCRUB_COPY_BPS
        if cost > 0:
            self.clock.advance(cost, "ha-scrub")
        return ScrubReport(
            examined=len(union),
            repaired_missing=repaired_missing,
            repaired_corrupt=repaired_corrupt,
            unrepairable=unrepairable,
            bytes_copied=bytes_copied,
            bytes_verified=bytes_verified,
            duration_s=self.clock.now - started,
        )

    def __repr__(self) -> str:
        return f"ReplicaSet({len(self.replicas)} replicas)"


# ---------------------------------------------------------------------------
# health probing


class HealthMonitor:
    """A scheduler process probing replicas and driving their breakers.

    Runs as a *call* process (generator processes do not own a thread, so
    their link transfers would take the sequential fast path and corrupt
    event ordering).  Each round probes every replica whose breaker is
    not hard-open — half-open replicas get their trial request here, so
    recovery does not depend on client traffic — then sleeps
    ``interval_s`` of virtual time.  :meth:`stop` makes the loop exit at
    its next wake-up; the caller drains the scheduler afterwards.

    Sequential experiments (no scheduler) call :meth:`probe_all`
    directly.
    """

    PROBE_IDENTITY = "__gear_ha_probe__"

    def __init__(
        self, replica_set: ReplicaSet, *, interval_s: float = 0.5
    ) -> None:
        if interval_s <= 0:
            raise ValueError("probe interval must be positive")
        self.replica_set = replica_set
        self.clock = replica_set.clock
        self.interval_s = interval_s
        self._stop = True
        self.process: Optional[Process] = None

    def start(self, scheduler: Any) -> Process:
        self._stop = False
        self.process = scheduler.spawn(self._run, name="ha-health-monitor")
        return self.process

    def stop(self) -> None:
        self._stop = True

    def _run(self) -> None:
        while not self._stop:
            self.probe_all()
            if self._stop:
                break
            self.clock.advance(self.interval_s, "ha-probe-wait")

    def probe_all(self) -> None:
        now = self.clock.now
        for replica in self.replica_set.replicas:
            if replica.breaker.state(now) is BreakerState.OPEN:
                continue  # cooling down; leave it alone until half-open
            self.probe(replica)

    def probe(self, replica: Replica) -> bool:
        """One health-check round trip; returns True when it succeeded."""
        replica.stats.probes += 1
        try:
            replica.transport.call(
                GEAR_ENDPOINT,
                "query",
                self.PROBE_IDENTITY,
                label=f"ha-probe:{replica.name}",
            )
        except RETRYABLE_ERRORS:
            replica.stats.probe_failures += 1
            replica.breaker.record_failure(self.clock.now)
            return False
        replica.breaker.record_success(self.clock.now)
        return True


# ---------------------------------------------------------------------------
# hedging


class HedgeEstimator:
    """Learns the fleet's fetch slowdown and sets the hedge deadline.

    Tracks the ratio of observed fetch time to the uncontended nominal
    cost over a sliding window; the hedge deadline for a new fetch is::

        nominal_s * max(percentile(ratios, quantile), 1.0) * multiplier

    using the shared nearest-rank :func:`repro.common.stats.percentile`
    (same tiny-sample semantics as the wave reports).  Until
    ``min_samples`` observations exist, a conservative ``cold_ratio``
    stands in, so a lone healthy client (ratio 1) never hedges.
    """

    def __init__(
        self,
        *,
        quantile: float = 95.0,
        multiplier: float = 1.25,
        cold_ratio: float = 3.0,
        min_samples: int = 4,
        window: int = 128,
    ) -> None:
        if not 0 < quantile <= 100:
            raise ValueError("quantile must be in (0, 100]")
        if multiplier < 1.0 or cold_ratio < 1.0:
            raise ValueError("multiplier and cold_ratio must be >= 1")
        if min_samples < 1 or window < min_samples:
            raise ValueError("need window >= min_samples >= 1")
        self.quantile = quantile
        self.multiplier = multiplier
        self.cold_ratio = cold_ratio
        self.min_samples = min_samples
        self.window = window
        self._ratios: List[float] = []

    def observe(self, ratio: float) -> None:
        if ratio <= 0:
            return
        self._ratios.append(ratio)
        if len(self._ratios) > self.window:
            del self._ratios[0]

    @property
    def sample_count(self) -> int:
        return len(self._ratios)

    def slowdown_ratio(self) -> float:
        if len(self._ratios) < self.min_samples:
            return self.cold_ratio
        return max(percentile(self._ratios, self.quantile), 1.0)

    def deadline_s(self, nominal_s: float) -> float:
        return nominal_s * self.slowdown_ratio() * self.multiplier


class _HedgeRace:
    """Shared state between a hedged fetch's attempt processes."""

    def __init__(self, clock: SimClock, stats: HAStats) -> None:
        self.event = SimEvent(clock)
        self.stats = stats
        self.launched = 0
        self.finished = 0
        self.winner: Optional[Replica] = None
        self.value: Any = None
        self.last_error: Optional[BaseException] = None

    @property
    def decided(self) -> bool:
        return self.winner is not None

    def report_success(self, replica: Replica, value: Any) -> None:
        self.finished += 1
        if self.winner is None:
            self.winner = replica
            self.value = value
            self.event.fire()
        else:
            # Completed in the same instant as the winner — too late to
            # cancel; the full response crossed the wire.
            self.stats.hedge_late += 1

    def report_error(self, error: BaseException) -> None:
        self.finished += 1
        self.last_error = error
        if self.winner is None and self.finished >= self.launched:
            self.event.fire()

    def report_cancelled(self) -> None:
        self.finished += 1


# ---------------------------------------------------------------------------
# the client-side fetch policy


#: Replica-selection strategies.
STRATEGIES = ("primary-first", "least-loaded", "p2c")


class HAFetchPolicy:
    """The client read/write path over a :class:`ReplicaSet`.

    Reads run a failover loop: order the breaker-available replicas by
    the configured strategy, try them one by one (the first ``download``
    attempt is hedged when a scheduler is active and a second replica is
    available), and when a whole round fails, back off under the HA
    :class:`~repro.net.resilience.RetryPolicy` and try again — only when
    that gives up does the error surface (and PR 1's degraded mode takes
    over).  Writes fan out over the wire to every replica.

    All bookkeeping is zero virtual time; the only costs are real wire
    transfers, backoff sleeps, and shed rejections.
    """

    def __init__(
        self,
        replica_set: ReplicaSet,
        *,
        strategy: str = "primary-first",
        retry_policy: Optional[RetryPolicy] = None,
        estimator: Optional[HedgeEstimator] = None,
        hedging: bool = True,
        seed: str = "ha",
    ) -> None:
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        self.replica_set = replica_set
        self.clock = replica_set.clock
        self.strategy = strategy
        self.hedging = hedging
        # The HA default is more patient than the transport-level one:
        # an "attempt" here is a whole round over every available
        # replica, and the policy is shared by the entire client fleet,
        # so a cross-call budget would let one client's bad luck starve
        # the others.  The per-call deadline stays as the hard bound.
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(
                max_attempts=6,
                budget_s=None,
                seed=f"{seed}-retry",
                rng=rng_for("ha-retry", seed),
            )
        )
        self.estimator = estimator if estimator is not None else HedgeEstimator()
        self.stats = HAStats()
        self._rng = rng_for("ha-select", seed)
        #: identity → replica that served the last download of it, for
        #: byzantine demotion attribution.
        self._last_served: Dict[str, Replica] = {}

    # -- selection ---------------------------------------------------------

    def select(self) -> List[Replica]:
        """Breaker-available replicas in preference order (pure-ish:
        only the seeded selection stream and skip counter advance)."""
        now = self.clock.now
        replicas = self.replica_set.replicas
        avail = [r for r in replicas if r.breaker.available(now)]
        self.stats.breaker_skips += len(replicas) - len(avail)
        if self.strategy == "least-loaded":
            return sorted(avail, key=lambda r: (r.admission.inflight, r.index))
        if self.strategy == "p2c" and len(avail) >= 2:
            first, second = self._rng.sample(range(len(avail)), 2)
            a, b = avail[first], avail[second]
            if (b.admission.inflight, b.index) < (a.admission.inflight, a.index):
                a, b = b, a
            rest = [r for r in avail if r is not a and r is not b]
            return [a, b] + rest
        return avail

    # -- the public call surface -------------------------------------------

    def call(
        self,
        method: str,
        *args: Any,
        request_payload_bytes: int = 0,
        label: Optional[str] = None,
        **kwargs: Any,
    ) -> Any:
        if method == "upload":
            return self._fan_out_write(
                method, args, kwargs, request_payload_bytes, label
            )
        return self._resilient_read(
            method, args, kwargs, request_payload_bytes, label
        )

    def report_corrupt_payload(self, identity: str) -> None:
        """End-to-end verification failed: demote the serving replica.

        The viewer's fingerprint check caught bytes the transport-level
        checksum did not (a byzantine replica).  Trip its breaker so the
        inevitable re-fetch — and everyone else's traffic — goes
        elsewhere; the anti-entropy scrub repairs the stored copy.
        """
        replica = self._last_served.pop(identity, None)
        if replica is None:
            return
        replica.breaker.force_open(self.clock.now)
        self.stats.demotions += 1

    # -- write path --------------------------------------------------------

    def _fan_out_write(
        self,
        method: str,
        args: Tuple[Any, ...],
        kwargs: Dict[str, Any],
        request_payload_bytes: int,
        label: Optional[str],
    ) -> Any:
        result: Any = None
        succeeded = False
        last_error: Optional[BaseException] = None
        for replica in self.replica_set.replicas:
            try:
                value = self._single_fetch(
                    replica, method, args, kwargs, request_payload_bytes, label
                )
            except RETRYABLE_ERRORS as error:
                last_error = error
                continue
            if not succeeded:
                result = value
                succeeded = True
        if not succeeded:
            raise last_error if last_error is not None else UnavailableError(
                f"write fan-out of {method!r} reached no replica"
            )
        return result

    # -- read path ---------------------------------------------------------

    def _resilient_read(
        self,
        method: str,
        args: Tuple[Any, ...],
        kwargs: Dict[str, Any],
        request_payload_bytes: int,
        label: Optional[str],
    ) -> Any:
        self.stats.fetches += 1
        policy = self.retry_policy
        clock = self.clock
        start = clock.now
        round_no = 1
        previous_backoff: Optional[float] = None
        tag = label or f"{GEAR_ENDPOINT}.{method}"
        while True:
            candidates = self.select()
            last_error: Optional[BaseException] = None
            not_found: Optional[NotFoundError] = None
            index = 0
            while index < len(candidates):
                replica = candidates[index]
                mate = candidates[index + 1] if index + 1 < len(candidates) else None
                hedged = (
                    self.hedging
                    and method == "download"
                    and index == 0
                    and mate is not None
                    and clock.scheduler is not None
                )
                try:
                    if hedged:
                        return self._hedged(
                            replica, mate, method, args, kwargs,
                            request_payload_bytes, label,
                        )
                    return self._single_fetch(
                        replica, method, args, kwargs,
                        request_payload_bytes, label,
                    )
                except NotFoundError as error:
                    not_found = error
                except RETRYABLE_ERRORS as error:
                    last_error = error
                    # Hedged attempts count their own failovers (their
                    # errors may land after the race resolves).
                    if not hedged:
                        self.stats.failovers += 1
                index += 2 if hedged else 1
            if not_found is not None:
                # Replicas are scrub-consistent: a 404 that no replica
                # contradicted is authoritative, and no backoff will
                # materialize the file.
                raise not_found
            if last_error is None:
                last_error = UnavailableError(
                    f"no replica available for {tag!r}: "
                    f"all circuit breakers open"
                )
            round_no += 1
            if not policy.should_retry(
                last_error, attempt=round_no, elapsed_s=clock.now - start
            ):
                if policy.is_retryable(last_error):
                    self.stats.giveups += 1
                raise last_error
            backoff = policy.next_backoff(previous_backoff)
            policy.charge(backoff)
            clock.advance(backoff, f"{tag}:ha-backoff")
            self.stats.backoffs += 1
            previous_backoff = backoff

    def _single_fetch(
        self,
        replica: Replica,
        method: str,
        args: Tuple[Any, ...],
        kwargs: Dict[str, Any],
        request_payload_bytes: int,
        label: Optional[str],
        *,
        observe: bool = False,
    ) -> Any:
        tag = label or f"{GEAR_ENDPOINT}.{method}"
        if not replica.admission.try_enter():
            # A typed 503, not a health signal: the breaker stays out of
            # it (tripping every breaker under fleet-wide overload would
            # turn congestion into an outage).  The caller's contract is
            # failover within the round, then RetryPolicy backoff.
            replica.stats.sheds += 1
            self.stats.sheds_seen += 1
            # The rejected request still crossed the wire: charge the
            # request frame for the fast typed 503.
            replica.link.transfer(
                RpcTransport.REQUEST_FRAME_BYTES, f"{tag}:shed"
            )
            raise RegistryOverloadedError(
                f"replica {replica.name!r} shed {tag!r} "
                f"(admission queue full at {replica.admission.capacity})"
            )
        nominal = (
            self._nominal_fetch_s(replica, method, args) if observe else 0.0
        )
        begun = self.clock.now
        try:
            value = replica.transport.call(
                GEAR_ENDPOINT,
                method,
                *args,
                request_payload_bytes=request_payload_bytes,
                label=label,
                **kwargs,
            )
        except FetchCancelledError:
            raise  # initiator's own doing; says nothing about health
        except TransportError as error:
            replica.stats.failures += 1
            replica.breaker.record_failure(self.clock.now)
            raise error
        finally:
            replica.admission.exit()
        replica.stats.serves += 1
        replica.breaker.record_success(self.clock.now)
        if observe and nominal > 0:
            self.estimator.observe((self.clock.now - begun) / nominal)
        if method == "download" and args:
            self._last_served[args[0]] = replica
        return value

    def _nominal_fetch_s(
        self, replica: Replica, method: str, args: Tuple[Any, ...]
    ) -> float:
        """Uncontended cost estimate for a fetch (client-side: the index
        entry tells the client the file size up front)."""
        wire_bytes = 0
        if method == "download" and args:
            try:
                wire_bytes = int(replica.registry.stat(args[0]).stored_size)
            except NotFoundError:
                wire_bytes = 0
        return replica.link.transfer_time(
            RpcTransport.REQUEST_FRAME_BYTES
        ) + replica.link.transfer_time(wire_bytes)

    def _hedged(
        self,
        primary: Replica,
        mate: Replica,
        method: str,
        args: Tuple[Any, ...],
        kwargs: Dict[str, Any],
        request_payload_bytes: int,
        label: Optional[str],
    ) -> Any:
        """Primary fetch with a hedged second try after the deadline.

        Both attempts run as scheduler processes; the caller waits on the
        race event.  The loser is cancelled the moment the winner lands
        and is charged only the bytes its flow actually moved.  Raises
        the last attempt error when every launched attempt failed.
        """
        scheduler = self.clock.scheduler
        race = _HedgeRace(self.clock, self.stats)
        tag = label or f"{GEAR_ENDPOINT}.{method}"
        procs: Dict[str, Process] = {}

        def attempt(replica: Replica) -> None:
            proc = scheduler._running_process()
            try:
                with self.clock.span("hedge_attempt", replica=replica.name):
                    value = self._single_fetch(
                        replica, method, args, kwargs,
                        request_payload_bytes, label, observe=True,
                    )
            except FetchCancelledError as error:
                # The initiator cancelled this loser; only the bytes its
                # flow actually moved were wasted.  Not a failover — the
                # replica was healthy, just slower.
                self.stats.wasted_hedge_bytes += error.bytes_transferred
                race.report_cancelled()
                return
            except NotFoundError as error:
                race.report_error(error)
                return
            except RETRYABLE_ERRORS as error:
                # A hedged attempt that *failed* (not merely lost the
                # race) is a failover: its work was — or already had
                # been — picked up by another replica.  Counted here
                # because the error may land after the race is decided
                # (e.g. an outage stall outliving the winner).
                self.stats.failovers += 1
                race.report_error(error)
                return
            finally:
                replica.link.clear_cancel(proc)
            race.report_success(replica, value)

        with self.clock.span("hedge", tag=tag) as hedge_span:
            race.launched = 1
            procs[primary.name] = scheduler.spawn(
                attempt, primary, name=f"hedge0:{tag}"
            )
            deadline = self.estimator.deadline_s(
                self._nominal_fetch_s(primary, method, args)
            )

            def fire_hedge() -> None:
                if race.decided or procs[primary.name].done:
                    return
                self.stats.hedges += 1
                race.launched += 1
                procs[mate.name] = scheduler.spawn(
                    attempt, mate, name=f"hedge1:{tag}"
                )

            timer = scheduler.schedule(deadline, fire_hedge)
            race.event.wait()
            timer.cancel()
            if race.winner is not None:
                hedge_span.annotate(winner=race.winner.name)
                if race.winner is mate:
                    self.stats.hedge_wins += 1
                loser = mate if race.winner is primary else primary
                loser_proc = procs.get(loser.name)
                if loser_proc is not None and not loser_proc.done:
                    self.stats.cancels += 1
                    loser.link.cancel_flows(loser_proc)
                return race.value
            if race.last_error is not None:
                raise race.last_error
            raise UnavailableError(
                f"hedged fetch {tag!r} failed on both replicas"
            )


# ---------------------------------------------------------------------------
# the transport facade


class _AggregateEndpoint:
    """Read-only stats view summing the replica endpoints.

    Presents the same ``.name``/``.stats``/``.methods()`` surface the
    benchmark accounting reads, so fleet reports see one logical
    ``gear-registry`` regardless of replica count.  HA-level backoff
    rounds and giveups fold into ``retries``/``giveups`` so resilience
    accounting stays comparable with the single-registry path.
    """

    def __init__(self, replica_set: ReplicaSet, policy: HAFetchPolicy) -> None:
        self.name = GEAR_ENDPOINT
        self._replica_set = replica_set
        self._policy = policy

    @property
    def stats(self) -> RpcStats:
        import dataclasses

        total = RpcStats()
        for replica in self._replica_set.replicas:
            endpoint = replica.transport.endpoint(GEAR_ENDPOINT)
            for f in dataclasses.fields(RpcStats):
                setattr(
                    total,
                    f.name,
                    getattr(total, f.name) + getattr(endpoint.stats, f.name),
                )
        total.retries += self._policy.stats.backoffs
        total.giveups += self._policy.stats.giveups
        return total

    def methods(self) -> Tuple[str, ...]:
        return self._replica_set.primary.transport.endpoint(
            GEAR_ENDPOINT
        ).methods()


class HATransport:
    """A drop-in :class:`~repro.net.transport.RpcTransport` facade.

    Routes ``gear-registry`` calls through the :class:`HAFetchPolicy`
    and everything else (the Docker registry lives on the base node) to
    the base transport unchanged.  Drivers, daemons, and benches keep
    calling ``transport.call(...)`` exactly as before.
    """

    REQUEST_FRAME_BYTES = RpcTransport.REQUEST_FRAME_BYTES

    def __init__(
        self,
        base: RpcTransport,
        policy: HAFetchPolicy,
        monitor: Optional[HealthMonitor] = None,
    ) -> None:
        self.base = base
        self.policy = policy
        self.monitor = monitor
        self.replica_set = policy.replica_set
        self._aggregate = _AggregateEndpoint(self.replica_set, policy)

    @property
    def link(self) -> Link:
        return self.base.link

    @property
    def retry_policy(self) -> Optional[RetryPolicy]:
        return self.base.retry_policy

    def bind(self, endpoint: RpcEndpoint) -> RpcEndpoint:
        return self.base.bind(endpoint)

    def has_endpoint(self, name: str) -> bool:
        return name == GEAR_ENDPOINT or self.base.has_endpoint(name)

    def endpoint(self, name: str) -> Any:
        if name == GEAR_ENDPOINT:
            return self._aggregate
        return self.base.endpoint(name)

    def call(
        self,
        endpoint_name: str,
        method: str,
        *args: Any,
        request_payload_bytes: int = 0,
        label: Optional[str] = None,
        **kwargs: Any,
    ) -> Any:
        if endpoint_name == GEAR_ENDPOINT:
            return self.policy.call(
                method,
                *args,
                request_payload_bytes=request_payload_bytes,
                label=label,
                **kwargs,
            )
        return self.base.call(
            endpoint_name,
            method,
            *args,
            request_payload_bytes=request_payload_bytes,
            label=label,
            **kwargs,
        )

    def report_corrupt_payload(self, identity: str) -> None:
        self.policy.report_corrupt_payload(identity)

    def reset_stats(self) -> None:
        self.base.reset_stats()
        for replica in self.replica_set.replicas:
            replica.transport.reset_stats()
            replica.stats.reset()
        self.policy.stats.reset()

    def __repr__(self) -> str:
        return (
            f"HATransport({len(self.replica_set.replicas)} replicas, "
            f"strategy={self.policy.strategy!r})"
        )
