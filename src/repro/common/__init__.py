"""Shared substrate: errors, hashing, units, clock, deterministic RNG.

Everything in :mod:`repro` builds on these primitives.  They are kept
dependency-free so that every other subpackage may import them without
cycles.
"""

from repro.common.clock import SimClock
from repro.common.errors import (
    CollisionError,
    GearError,
    IntegrityError,
    NotFoundError,
    ReproError,
    StorageError,
    TransportError,
)
from repro.common.hashing import (
    Digest,
    Fingerprint,
    fingerprint_bytes,
    fingerprint_tokens,
    sha256_bytes,
    sha256_tokens,
)
from repro.common.units import (
    GiB,
    KiB,
    MiB,
    Mbps,
    format_bytes,
    format_duration,
    mbps_to_bytes_per_s,
)

__all__ = [
    "SimClock",
    "ReproError",
    "GearError",
    "NotFoundError",
    "StorageError",
    "TransportError",
    "IntegrityError",
    "CollisionError",
    "Digest",
    "Fingerprint",
    "fingerprint_bytes",
    "fingerprint_tokens",
    "sha256_bytes",
    "sha256_tokens",
    "KiB",
    "MiB",
    "GiB",
    "Mbps",
    "mbps_to_bytes_per_s",
    "format_bytes",
    "format_duration",
]
