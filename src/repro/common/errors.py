"""Exception hierarchy for the whole reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures without swallowing programming errors.
"""


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class NotFoundError(ReproError, KeyError):
    """A requested object (file, layer, image, blob) does not exist.

    Also derives from ``KeyError`` because most lookups are mapping-like.
    """

    def __str__(self) -> str:  # KeyError quotes its message; keep it plain.
        return Exception.__str__(self)


class StorageError(ReproError):
    """A storage backend (disk, pool, object store) rejected an operation."""


class TransportError(ReproError):
    """A simulated network transfer failed (unreachable peer, bad frame)."""


class TimeoutError(TransportError):  # noqa: A001 - deliberate shadow
    """A request or response was lost; the client waited out its timer.

    Named after the condition a real client observes: it cannot tell a
    dropped request from a dropped response, only that no answer arrived
    within the timeout.  Retryable.
    """


class UnavailableError(TransportError):
    """The peer refused or stalled the connection (outage window).

    Models a registry that is down or unreachable; attempts during the
    outage fail after paying the connect/stall cost.  Retryable.
    """


class CorruptPayloadError(TransportError):
    """A response payload failed the transport's framing checksum.

    The wire delivered bytes that do not match what the peer sent; the
    transfer itself completed (and was charged), but the payload is
    unusable.  Retryable — a re-fetch gets a fresh copy.
    """


class TierOverloadedError(UnavailableError):
    """A bounded serving tier shed this request (typed 503 backpressure).

    The common shape of every admission-gate shed: the tier is healthy
    but full, so it rejects fast instead of queueing unboundedly.
    Derives from :class:`UnavailableError` so every existing resilience
    path — :class:`~repro.net.resilience.RetryPolicy` backoff, tier
    failover, the degraded Docker-pull fallback — treats overload as the
    transient condition it is.  Crucially, a shed is *deliberate* load
    control, not a health signal: callers back off and retry (or fall
    through to the next tier) but never count it against a circuit
    breaker.
    """


class RegistryOverloadedError(TierOverloadedError):
    """The registry's bounded admission queue shed this request (503).

    Raised by a replica's admission gate when more requests are in
    flight than it will queue.  The registry-specific face of
    :class:`TierOverloadedError`, kept distinct so HA accounting can
    tell replica sheds from shared-cache-tier sheds.
    """


class FetchCancelledError(TransportError):
    """An in-flight transfer was cancelled by its initiator.

    Hedged fetches cancel the losing replica's transfer the moment the
    winner lands; the cancelled flow is charged only the bytes it
    actually moved.  Never retried: the caller already has the payload
    from the winning replica.
    """

    def __init__(self, message: str, *, bytes_transferred: int = 0) -> None:
        super().__init__(message)
        #: Payload bytes the cancelled flow had moved before cancellation.
        self.bytes_transferred = bytes_transferred


class ClientCrash(ReproError):
    """The simulated client process died at an injected crash point.

    Raised by the crash injector (:mod:`repro.net.faults`) at an exact
    virtual instant inside the deployment path.  Whatever durable state
    existed at that instant — pool entries, journal records, index links
    — is left exactly as it was; recovery is the job of
    :func:`repro.gear.recovery.fsck`.
    """

    def __init__(
        self,
        message: str,
        *,
        point: str = "",
        op_index: int = 0,
        at_s: float = 0.0,
    ) -> None:
        super().__init__(message)
        #: Which crash point fired (``CrashPoint.value``).
        self.point = point
        #: Which occurrence of that point fired (0-based).
        self.op_index = op_index
        #: Virtual time of death.
        self.at_s = at_s


class IntegrityError(ReproError):
    """Content failed verification against its digest or fingerprint."""


class ChunkIntegrityError(IntegrityError):
    """A chunk-granular fetch exhausted its refetch budget on bad chunks.

    Raised by the chunk-granular big-file path
    (:mod:`repro.gear.bigfile`) when a downloaded chunk repeatedly fails
    verification against its manifest fingerprint, or when an assembled
    partial file does not hash to the identity it claims.  The poisoned
    chunk is quarantined — it never reaches the partial's present set,
    let alone a committed pool entry.
    """

    def __init__(
        self,
        message: str,
        *,
        identity: str = "",
        chunk_index: int = -1,
    ) -> None:
        super().__init__(message)
        #: The Gear file identity whose chunk fetch failed.
        self.identity = identity
        #: Offending chunk index (-1 for whole-file assembly failures).
        self.chunk_index = chunk_index


class CollisionError(IntegrityError):
    """Two distinct contents mapped to the same fingerprint.

    The paper (§III-B) discusses MD5 collisions: detection happens during
    conversion by comparing contents on fingerprint match; colliding files
    get unique IDs instead of fingerprints.
    """


class GearError(ReproError):
    """An operation violated the Gear image format or framework contract."""


class VfsError(ReproError):
    """A virtual filesystem operation failed (bad path, wrong node type)."""


class IsADirectoryVfsError(VfsError):
    """Expected a non-directory node but found a directory."""


class NotADirectoryVfsError(VfsError):
    """Expected a directory node on the path but found something else."""


class FileExistsVfsError(VfsError):
    """Attempted to create a node over an existing one without overwrite."""


class SymlinkLoopError(VfsError):
    """Path resolution followed too many symbolic links (ELOOP)."""


class ReadOnlyVfsError(VfsError):
    """Attempted to mutate a read-only filesystem or layer."""
