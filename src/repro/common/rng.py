"""Deterministic random number generation helpers.

The synthetic corpus (see :mod:`repro.workloads.corpus`) must be exactly
reproducible: the same seed must yield byte-identical fingerprints, sizes,
and access traces on every run and platform.  We therefore route all
randomness through :class:`random.Random` instances derived from explicit
string seeds, never the global generator.
"""

from __future__ import annotations

import random

from repro.common.hashing import stable_u64


def rng_for(*tokens: str) -> random.Random:
    """Return a ``random.Random`` seeded deterministically from tokens.

    Two calls with the same tokens yield generators producing identical
    streams, regardless of call order or interpreter hash randomization.
    """
    return random.Random(stable_u64(*tokens))


def weighted_choice(rng: random.Random, weights: "dict[str, float]") -> str:
    """Pick a key from ``weights`` proportionally to its value."""
    if not weights:
        raise ValueError("weighted_choice requires a non-empty mapping")
    total = sum(weights.values())
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    point = rng.random() * total
    cumulative = 0.0
    for key, weight in weights.items():
        cumulative += weight
        if point <= cumulative:
            return key
    # Floating point slack: fall back to the last key.
    return key


def bounded_lognormal(
    rng: random.Random, median: float, sigma: float, lo: float, hi: float
) -> float:
    """Sample a lognormal value with the given median, clamped to [lo, hi].

    File sizes in container images are heavy-tailed ("files are usually
    small", §V-B); a clamped lognormal reproduces that shape without
    extreme outliers destabilizing the calibration.
    """
    if lo > hi:
        raise ValueError(f"invalid bounds: lo={lo} > hi={hi}")
    value = rng.lognormvariate(_ln(median), sigma)
    return min(hi, max(lo, value))


def _ln(x: float) -> float:
    import math

    if x <= 0:
        raise ValueError(f"median must be positive, got {x}")
    return math.log(x)
