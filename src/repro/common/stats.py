"""Small deterministic statistics helpers shared across layers.

:func:`percentile` is the *single* nearest-rank implementation in the
tree.  Both the fleet wave reports (:mod:`repro.net.topology`) and the
hedging deadline estimator (:mod:`repro.net.ha`) quote percentiles; they
must agree on the semantics for tiny samples (n = 1, 2) or a hedge
deadline derived from one observation would disagree with the p99 the
report prints for the same data.  Keeping one helper keeps them honest.

:func:`reset_counter_fields` is the reflection-based reset used by every
stats dataclass (RPC, fault, viewer, HA).  Resetting by enumerating
fields means a newly added counter can never be silently left out of a
``reset_stats()`` path — the failure mode PR 1's hand-written resets had.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Tuple


def percentile(values: "List[float] | Tuple[float, ...]", q: float) -> float:
    """Nearest-rank percentile (deterministic; no interpolation).

    ``q`` is in [0, 100].  The nearest-rank definition keeps reports
    reproducible byte-for-byte across runs and platforms.  Boundary
    semantics for tiny samples: with one value every ``q`` returns it;
    with two values ``q <= 50`` returns the smaller and ``q > 50`` the
    larger (rank = max(1, ceil(q/100 * n))).
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def reset_counter_fields(stats: object) -> None:
    """Reset every dataclass field of ``stats`` to its declared default.

    Only fields with a plain default are touched (counters default to
    ``0``/``0.0``/``False``/``""``); fields built by a default factory
    are reset by calling it.  Raises ``TypeError`` on non-dataclasses so
    a refactor away from dataclasses cannot silently turn resets into
    no-ops.
    """
    if not dataclasses.is_dataclass(stats) or isinstance(stats, type):
        raise TypeError(f"expected a stats dataclass instance, got {stats!r}")
    for field in dataclasses.fields(stats):
        if field.default is not dataclasses.MISSING:
            setattr(stats, field.name, field.default)
        elif field.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
            setattr(stats, field.name, field.default_factory())  # type: ignore[misc]
        else:
            raise TypeError(
                f"stats field {field.name!r} on {type(stats).__name__} has "
                f"no default; every counter needs one so reset_stats() can "
                f"restore it"
            )
