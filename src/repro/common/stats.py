"""Small deterministic statistics helpers shared across layers.

:func:`percentile` is the *single* nearest-rank implementation in the
tree.  Both the fleet wave reports (:mod:`repro.net.topology`) and the
hedging deadline estimator (:mod:`repro.net.ha`) quote percentiles; they
must agree on the semantics for tiny samples (n = 1, 2) or a hedge
deadline derived from one observation would disagree with the p99 the
report prints for the same data.  Keeping one helper keeps them honest.

Counter resets live elsewhere now: every stats dataclass subclasses
:class:`repro.obs.metrics.MetricSet`, whose ``reset()`` rebuilds a
pristine instance — no per-field reflection to drift out of date — and
registers with the :class:`repro.obs.metrics.MetricsRegistry` so one
registry ``reset()`` covers the whole system.
"""

from __future__ import annotations

import math
from typing import List, Tuple


class EmptySampleError(ValueError):
    """A statistic was requested over zero observations.

    Subclasses :class:`ValueError` so callers that already guarded with
    ``except ValueError`` keep working, while new code (wave reports for
    zero-client or all-shed waves) can catch the precise condition
    instead of an :class:`IndexError` escaping from rank arithmetic.
    """


#: Relative slack when deciding whether ``q/100 * n`` *is* an integer
#: rank.  ``99.9 / 100`` is not representable in binary floating point
#: (it rounds up to ``0.9990000000000001``), so a naive ``ceil`` would
#: turn p99.9 over 1000 samples into rank 1000 — i.e. silently report
#: p100 exactly where deep-tail reports care most.
_RANK_EPSILON = 1e-9


def percentile(values: "List[float] | Tuple[float, ...]", q: float) -> float:
    """Nearest-rank percentile (deterministic; no interpolation).

    ``q`` is in [0, 100] and may be fractional (p99.9 for deep tails).
    The nearest-rank definition keeps reports reproducible
    byte-for-byte across runs and platforms.  Boundary semantics for
    tiny samples: with one value every ``q`` returns it; with two values
    ``q <= 50`` returns the smaller and ``q > 50`` the larger
    (rank = max(1, ceil(q/100 * n)), with the ceil taken against the
    *intended* decimal value of ``q`` rather than its binary float
    representation, so p99.9 over 1000 samples is rank 999, not 1000).
    An empty sample raises :class:`EmptySampleError` — there is no
    meaningful sentinel a percentile could return.
    """
    if not values:
        raise EmptySampleError("percentile of an empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    scaled = q / 100.0 * len(ordered)
    nearest = round(scaled)
    if abs(scaled - nearest) <= _RANK_EPSILON * max(1.0, nearest):
        rank = nearest
    else:
        rank = math.ceil(scaled)
    rank = max(1, rank)
    return ordered[min(rank, len(ordered)) - 1]
