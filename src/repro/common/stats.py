"""Small deterministic statistics helpers shared across layers.

:func:`percentile` is the *single* nearest-rank implementation in the
tree.  Both the fleet wave reports (:mod:`repro.net.topology`) and the
hedging deadline estimator (:mod:`repro.net.ha`) quote percentiles; they
must agree on the semantics for tiny samples (n = 1, 2) or a hedge
deadline derived from one observation would disagree with the p99 the
report prints for the same data.  Keeping one helper keeps them honest.

Counter resets live elsewhere now: every stats dataclass subclasses
:class:`repro.obs.metrics.MetricSet`, whose ``reset()`` rebuilds a
pristine instance — no per-field reflection to drift out of date — and
registers with the :class:`repro.obs.metrics.MetricsRegistry` so one
registry ``reset()`` covers the whole system.
"""

from __future__ import annotations

import math
from typing import List, Tuple


class EmptySampleError(ValueError):
    """A statistic was requested over zero observations.

    Subclasses :class:`ValueError` so callers that already guarded with
    ``except ValueError`` keep working, while new code (wave reports for
    zero-client or all-shed waves) can catch the precise condition
    instead of an :class:`IndexError` escaping from rank arithmetic.
    """


def percentile(values: "List[float] | Tuple[float, ...]", q: float) -> float:
    """Nearest-rank percentile (deterministic; no interpolation).

    ``q`` is in [0, 100].  The nearest-rank definition keeps reports
    reproducible byte-for-byte across runs and platforms.  Boundary
    semantics for tiny samples: with one value every ``q`` returns it;
    with two values ``q <= 50`` returns the smaller and ``q > 50`` the
    larger (rank = max(1, ceil(q/100 * n))).  An empty sample raises
    :class:`EmptySampleError` — there is no meaningful sentinel a
    percentile could return.
    """
    if not values:
        raise EmptySampleError("percentile of an empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]
