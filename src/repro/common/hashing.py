"""Fingerprints and digests.

The paper uses two distinct content hashes:

* **MD5 fingerprints** identify regular files in Gear indexes and name the
  Gear files in the registry's storage pool (§III-B).
* **SHA-256 digests** identify Docker image layers, exactly as real Docker
  does (§II-A).

Both are represented as thin ``str`` subclasses so they can be used as
dictionary keys and serialized trivially while still being distinguishable
in type annotations.
"""

from __future__ import annotations

import hashlib
from typing import Iterable


class Fingerprint(str):
    """An MD5 hex fingerprint identifying a regular file's content."""

    __slots__ = ()

    def short(self, n: int = 12) -> str:
        """Return the first ``n`` hex characters, for display."""
        return self[:n]


class Digest(str):
    """A SHA-256 hex digest identifying a Docker layer or manifest."""

    __slots__ = ()

    def short(self, n: int = 12) -> str:
        """Return the first ``n`` hex characters, for display."""
        return self[:n]


def fingerprint_bytes(data: bytes) -> Fingerprint:
    """MD5-fingerprint literal bytes."""
    return Fingerprint(hashlib.md5(data).hexdigest())


def fingerprint_tokens(tokens: Iterable[str]) -> Fingerprint:
    """MD5-fingerprint a canonical token sequence.

    Virtual blobs (see :mod:`repro.blob`) are defined by chunk seeds rather
    than materialized bytes; their fingerprint is the MD5 of the canonical
    ``token '\\n' token ...`` encoding.  Two blobs with identical chunk
    sequences therefore share a fingerprint, which is what deduplication
    relies on.
    """
    hasher = hashlib.md5()
    for token in tokens:
        hasher.update(token.encode("utf-8"))
        hasher.update(b"\n")
    return Fingerprint(hasher.hexdigest())


def sha256_bytes(data: bytes) -> Digest:
    """SHA-256 digest of literal bytes."""
    return Digest(hashlib.sha256(data).hexdigest())


def sha256_tokens(tokens: Iterable[str]) -> Digest:
    """SHA-256 digest of a canonical token sequence (layer identity)."""
    hasher = hashlib.sha256()
    for token in tokens:
        hasher.update(token.encode("utf-8"))
        hasher.update(b"\n")
    return Digest(hasher.hexdigest())


def stable_u64(*tokens: str) -> int:
    """A deterministic 64-bit integer derived from tokens.

    Used wherever the simulation needs a reproducible pseudo-random value
    tied to an identity (e.g. per-chunk compressibility).  Unlike
    ``hash()``, this is stable across interpreter runs.
    """
    hasher = hashlib.sha256()
    for token in tokens:
        hasher.update(token.encode("utf-8"))
        hasher.update(b"\x00")
    return int.from_bytes(hasher.digest()[:8], "big")


def stable_unit_interval(*tokens: str) -> float:
    """A deterministic float in ``[0, 1)`` derived from tokens."""
    return stable_u64(*tokens) / 2**64
