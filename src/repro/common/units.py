"""Byte, bandwidth, and time unit helpers.

All sizes in the library are plain ``int`` byte counts and all durations
are ``float`` seconds; these helpers keep call sites readable
(``5 * Mbps``, ``128 * KiB``) and format results for reports.
"""

from __future__ import annotations

KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB

#: One megabit per second, expressed in bits/s.  Network link speeds in the
#: paper are given in Mbps (904, 100, 20, 5), so benchmarks write
#: ``bandwidth=904 * Mbps``.
Mbps: int = 1_000_000


def mbps_to_bytes_per_s(mbps: float) -> float:
    """Convert a rate in megabits/s to bytes/s."""
    return mbps * Mbps / 8.0


def bits_per_s_to_bytes_per_s(bits_per_s: float) -> float:
    """Convert a rate in bits/s to bytes/s."""
    return bits_per_s / 8.0


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with a binary-prefix unit, e.g. ``'1.50 MiB'``."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.2f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_duration(seconds: float) -> str:
    """Render a duration, e.g. ``'1.25 s'`` or ``'3m 20s'``."""
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    minutes, secs = divmod(seconds, 60.0)
    return f"{int(minutes)}m {secs:.0f}s"


def format_rate(bytes_per_s: float) -> str:
    """Render a throughput, e.g. ``'112.50 MiB/s'``."""
    return f"{format_bytes(bytes_per_s)}/s"


def percent(part: float, whole: float) -> float:
    """Return ``part / whole`` as a percentage; 0.0 when ``whole`` is 0."""
    if whole == 0:
        return 0.0
    return 100.0 * part / whole
