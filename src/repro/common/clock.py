"""A simulated clock and a deterministic discrete-event scheduler.

All performance numbers in the reproduction (conversion times, pull/run
deployment phases, service throughput) are accounted on a virtual clock
rather than wall time, so results are exact, deterministic, and independent
of the host machine.  Components that consume time (disks, network links,
task models) call :meth:`SimClock.advance`; experiment harnesses read
:attr:`SimClock.now` before and after an operation to time it.

Two execution regimes share the same clock:

* **Sequential (the seed model).**  With no scheduler attached,
  :meth:`SimClock.advance` simply adds to ``now`` — the degenerate
  single-process case.  Every call site written against the original
  sequential clock runs unchanged and produces byte-identical timings.
* **Discrete-event (fleet experiments).**  A :class:`SimScheduler`
  attached to the clock turns ``advance`` calls made *inside a simulated
  process* into event-heap sleeps, so N processes (concurrent client
  deployments, background prefetchers) interleave over virtual time.
  Events are ordered by ``(time, seq)`` — ties broken by scheduling
  order — so runs are exactly reproducible.

Processes come in two flavours:

* **generator processes** — ``yield`` a delay in seconds, another
  :class:`Process` (join), or a :class:`SimEvent`; resumed by the
  scheduler with deterministic ordering;
* **call processes** — a plain callable executed on a worker thread with
  *strict handoff*: exactly one thread (the scheduler loop or one
  process) ever runs at a time, so existing synchronous code — deep
  call stacks through daemons, drivers, viewers, and links — becomes a
  schedulable task without rewriting, and determinism is preserved.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple


class SchedulerError(RuntimeError):
    """The scheduler was asked for something impossible (deadlock, reuse)."""


class _NullSpan:
    """The span returned when no tracer is attached: every op is a no-op.

    A single shared instance makes ``clock.span(...)`` in hot paths cost
    one attribute check and no allocation when telemetry is detached —
    the property that lets instrumentation stay always-on in the code.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def annotate(self, **labels: Any) -> "_NullSpan":
        return self

    def __repr__(self) -> str:
        return "NULL_SPAN"


#: Shared no-op span/instant, handed out whenever telemetry is detached.
NULL_SPAN = _NullSpan()


class SimClock:
    """A monotonically advancing virtual clock with optional telemetry.

    Without an attached :class:`SimScheduler` the clock is deliberately
    simple: the simulation is sequential (one client deploying containers
    against registries), so each cost model just advances the shared
    clock by the time its operation takes.  With a scheduler attached,
    ``advance`` calls made from within a simulated process suspend that
    process instead, letting other processes run in the meantime.

    Telemetry is an attached :class:`repro.obs.trace.SpanTracer`
    (``attach_tracer``, or ``trace=True`` for the legacy flag): every
    ``span``/``instant`` call lands there, and the legacy ``trace``
    property reads the tracer's instants back as ``(time, label)``
    tuples.  With no tracer attached the same calls return a shared
    null span — zero allocation, zero virtual-time cost.
    """

    __slots__ = ("_now", "_scheduler", "_tracer")

    def __init__(self, *, trace: bool = False) -> None:
        self._now: float = 0.0
        self._scheduler: Optional["SimScheduler"] = None
        self._tracer: Optional[Any] = None
        if trace:
            self.attach_tracer()

    @property
    def now(self) -> float:
        """Current virtual time in seconds since the clock was created."""
        return self._now

    @property
    def scheduler(self) -> Optional["SimScheduler"]:
        """The attached discrete-event scheduler (None in sequential mode)."""
        return self._scheduler

    # -- telemetry ---------------------------------------------------------

    @property
    def tracer(self) -> Optional[Any]:
        """The attached span tracer (None when telemetry is detached)."""
        return self._tracer

    def attach_tracer(self, tracer: Optional[Any] = None) -> Any:
        """Attach (or create and attach) a span tracer; returns it."""
        if tracer is None:
            from repro.obs.trace import SpanTracer

            tracer = SpanTracer(self)
        self._tracer = tracer
        return tracer

    def detach_tracer(self) -> Optional[Any]:
        """Detach and return the current tracer (telemetry goes free)."""
        tracer, self._tracer = self._tracer, None
        return tracer

    def span(self, name: str, **labels: Any) -> Any:
        """A context manager recording a virtual-time span.

        Free (a shared null object) when no tracer is attached, so call
        sites never need to guard on telemetry being enabled.
        """
        if self._tracer is None:
            return NULL_SPAN
        return self._tracer.span(name, **labels)

    def instant(self, name: str, **labels: Any) -> Any:
        """Record a point event at the current time (no-op untraced)."""
        if self._tracer is None:
            return NULL_SPAN
        return self._tracer.instant(name, **labels)

    def advance(self, seconds: float, label: str = "") -> float:
        """Advance the clock by ``seconds`` and return the new time.

        ``seconds`` must be non-negative; cost models must never produce
        negative durations.  Inside a scheduler process this suspends
        the calling process until virtual time has moved ``seconds``
        ahead; other processes run in the gap.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds} s")
        scheduler = self._scheduler
        if scheduler is not None:
            process = scheduler._running_process()
            if process is not None:
                return scheduler._process_sleep(process, seconds, label)
        self._now += seconds
        if self._tracer is not None and label:
            self._tracer.instant(label)
        return self._now

    def note(self, label: str) -> None:
        """Record a trace event at the current time (when tracing)."""
        if self._tracer is not None and label:
            self._tracer.instant(label)

    def _jump_to(self, timestamp: float) -> None:
        """Scheduler hook: set ``now`` to an event's timestamp."""
        if timestamp < self._now:
            raise SchedulerError(
                f"event at t={timestamp!r} is in the past (now={self._now!r})"
            )
        self._now = timestamp

    def reset(self) -> None:
        """Reset virtual time to zero and clear any trace."""
        self._now = 0.0
        if self._tracer is not None:
            self._tracer.clear()

    @property
    def trace(self) -> List[Tuple[float, str]]:
        """Recorded ``(timestamp, label)`` events (only when tracing)."""
        if self._tracer is None:
            return []
        return self._tracer.compat_trace()

    def timer(self) -> "Stopwatch":
        """Return a stopwatch anchored at the current virtual time."""
        return Stopwatch(self)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"


class Stopwatch:
    """Measures elapsed virtual time between creation and :meth:`elapsed`."""

    __slots__ = ("_clock", "_start")

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start = clock.now

    @property
    def start(self) -> float:
        """Virtual time at which the stopwatch was created."""
        return self._start

    def elapsed(self) -> float:
        """Virtual seconds since the stopwatch was created."""
        return self._clock.now - self._start

    def restart(self) -> float:
        """Re-anchor at the current time, returning the previous lap."""
        lap = self.elapsed()
        self._start = self._clock.now
        return lap


class _Event:
    """One heap entry: an action to run at a virtual timestamp."""

    __slots__ = ("time", "seq", "action", "cancelled")

    def __init__(self, time: float, seq: int, action: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.action = action
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event dead; the loop skips it when popped."""
        self.cancelled = True

    def __lt__(self, other: "_Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Process:
    """One schedulable activity: a generator or a thread-backed callable."""

    __slots__ = (
        "scheduler", "name", "_gen", "_thread", "_resume",
        "result", "error", "_done", "_waiters", "started_at", "finished_at",
    )

    def __init__(self, scheduler: "SimScheduler", name: str) -> None:
        self.scheduler = scheduler
        self.name = name
        self._gen = None
        self._thread: Optional[threading.Thread] = None
        self._resume: Optional[threading.Event] = None
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._done = False
        self._waiters: List["Process"] = []
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    @property
    def done(self) -> bool:
        """True once the process has finished (normally or with an error)."""
        return self._done

    def join(self) -> "Process":
        """Wait for this process to finish.

        From inside another process this suspends the caller; from the
        main thread it runs the event loop until this process completes.
        Returns ``self`` so callers can read ``result``/``error``.
        """
        return self.scheduler.join(self)

    def __repr__(self) -> str:
        state = "done" if self._done else "running"
        return f"Process({self.name!r}, {state})"


class SimEvent:
    """A one-shot condition processes can wait on (e.g. single-flight).

    ``wait()`` suspends the calling process until someone calls
    ``fire()``; generator processes can ``yield`` the event instead.
    Firing an already-fired event is a no-op; waiting on a fired event
    returns immediately.
    """

    __slots__ = ("clock", "_fired", "_waiters")

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self._fired = False
        self._waiters: List[Process] = []

    @property
    def fired(self) -> bool:
        return self._fired

    def fire(self) -> None:
        """Mark the condition true and wake every waiter."""
        if self._fired:
            return
        self._fired = True
        scheduler = self.clock.scheduler
        waiters, self._waiters = self._waiters, []
        if scheduler is not None:
            for process in waiters:
                scheduler._wake(process)

    def wait(self) -> None:
        """Block the calling process until the event fires."""
        if self._fired:
            return
        scheduler = self.clock.scheduler
        process = scheduler._running_process() if scheduler else None
        if process is None:
            raise SchedulerError(
                "waiting on an unfired SimEvent outside a process would "
                "deadlock the simulation"
            )
        self._waiters.append(process)
        scheduler._suspend(process)

    def _add_waiter(self, process: Process) -> bool:
        """Generator-yield hook: register, or report already-fired."""
        if self._fired:
            return False
        self._waiters.append(process)
        return True


class SimScheduler:
    """A deterministic discrete-event scheduler over a :class:`SimClock`.

    The event heap orders actions by ``(time, seq)``; ``seq`` is a
    monotone counter, so events scheduled earlier run first among ties —
    runs with identical inputs replay identically.  Exactly one activity
    (the loop or one process) executes at any instant, so shared state
    needs no locking and interleavings are reproducible.

    Use as a context manager to guarantee detachment from the clock::

        with SimScheduler(clock) as scheduler:
            procs = [scheduler.spawn(deploy, node) for node in nodes]
            scheduler.run()
    """

    def __init__(self, clock: SimClock) -> None:
        if clock._scheduler is not None:
            raise SchedulerError("clock already has an attached scheduler")
        self.clock = clock
        clock._scheduler = self
        self._heap: List[_Event] = []
        self._seq = itertools.count()
        self._processes: List[Process] = []
        self._thread_procs: Dict[int, Process] = {}
        self._loop_wake = threading.Event()
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Detach from the clock; the clock reverts to sequential mode."""
        if not self._closed:
            self._closed = True
            if self.clock._scheduler is self:
                self.clock._scheduler = None

    def abort(self) -> int:
        """Cancel every pending event: the simulated node lost power.

        Used by crash-injection experiments after a
        :class:`~repro.common.errors.ClientCrash` propagates out of
        :meth:`run`: sibling processes (prefetchers, concurrent
        deployments on the same node) die with the client instead of
        draining to completion.  Suspended call-process threads are
        abandoned — they are daemon threads parked on an event that will
        never be set, exactly as a killed process never resumes.  Returns
        the number of events cancelled.
        """
        cancelled = 0
        for event in self._heap:
            if not event.cancelled:
                event.cancel()
                cancelled += 1
        self._heap.clear()
        return cancelled

    def __enter__(self) -> "SimScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- scheduling --------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None]) -> _Event:
        """Run ``action`` ``delay`` virtual seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule {delay} s in the past")
        event = _Event(self.clock.now + delay, next(self._seq), action)
        heapq.heappush(self._heap, event)
        return event

    def spawn(self, target: Any, *args: Any, name: str = "", **kwargs: Any) -> Process:
        """Start a new process at the current virtual time.

        ``target`` may be a generator function (or generator object) —
        stepped by the scheduler, yielding delays / processes / events —
        or any plain callable, which runs on a strict-handoff worker
        thread so ordinary synchronous code (clock advances, link
        transfers deep in the call stack) becomes schedulable unchanged.
        """
        if self._closed:
            raise SchedulerError("scheduler is closed")
        process = Process(self, name or f"proc-{len(self._processes)}")
        self._processes.append(process)
        tracer = self.clock._tracer
        if tracer is not None:
            # Still on the spawner's thread: the spawner's innermost open
            # span becomes the new process track's base parent.
            tracer.on_spawn(process)
        generator = None
        if hasattr(target, "send") and hasattr(target, "throw"):
            generator = target
        else:
            import inspect

            if inspect.isgeneratorfunction(target):
                generator = target(*args, **kwargs)
        if generator is not None:
            process._gen = generator
            self.schedule(0.0, lambda: self._step_gen(process, None))
        else:
            process._resume = threading.Event()
            thread = threading.Thread(
                target=self._call_process_main,
                args=(process, target, args, kwargs),
                name=f"sim:{process.name}",
                daemon=True,
            )
            process._thread = thread
            thread.start()
            self._thread_procs[thread.ident] = process
            self.schedule(0.0, lambda: self._grant(process))
        return process

    # -- the event loop ----------------------------------------------------

    def run(self) -> None:
        """Drain the event heap (must be called from outside any process).

        Raises the first error any process died with, after the heap has
        drained so sibling processes still finish deterministically.
        """
        self._run_loop(lambda: False)
        self._raise_process_errors()

    def run_until(self, process: Process) -> Process:
        """Run the loop until ``process`` completes, then return it."""
        self._run_loop(lambda: process._done)
        if not process._done:
            raise SchedulerError(
                f"event heap drained but {process!r} never finished "
                f"(deadlocked on an unfired wait?)"
            )
        if process.error is not None:
            raise process.error
        return process

    def join(self, process: Process) -> Process:
        """Wait for ``process``: suspend the caller, or run the loop."""
        current = self._running_process()
        if current is None:
            if not process._done:
                return self.run_until(process)
            if process.error is not None:
                raise process.error
            return process
        if current is process:
            raise SchedulerError("a process cannot join itself")
        if not process._done:
            process._waiters.append(current)
            self._suspend(current)
        return process

    def _run_loop(self, should_stop: Callable[[], bool]) -> None:
        if self._running_process() is not None:
            raise SchedulerError("run() called from inside a process")
        while self._heap and not should_stop():
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock._jump_to(event.time)
            event.action()

    def _raise_process_errors(self) -> None:
        for process in self._processes:
            if process.error is not None:
                error, process.error = process.error, None
                raise error

    # -- process internals -------------------------------------------------

    def _running_process(self) -> Optional[Process]:
        """The call process owning the current thread, if any."""
        return self._thread_procs.get(threading.get_ident())

    def _process_sleep(self, process: Process, seconds: float, label: str) -> float:
        """Suspend a call process for ``seconds`` of virtual time."""
        self.schedule(seconds, lambda: self._grant(process))
        self._suspend(process)
        self.clock.note(label)
        return self.clock.now

    def _suspend(self, process: Process) -> None:
        """Hand control to the loop; return when the process is regranted."""
        process._resume.clear()
        self._loop_wake.set()
        process._resume.wait()

    def _grant(self, process: Process) -> None:
        """Loop-side handoff: let ``process`` run until it yields back."""
        self._loop_wake.clear()
        process._resume.set()
        self._loop_wake.wait()

    def _wake(self, process: Process, value: Any = None) -> None:
        """Schedule ``process`` to resume now (used by events and flows)."""
        if process._gen is not None:
            self.schedule(0.0, lambda: self._step_gen(process, value))
        else:
            self.schedule(0.0, lambda: self._grant(process))

    def _call_process_main(
        self,
        process: Process,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        kwargs: Dict[str, Any],
    ) -> None:
        process._resume.wait()  # first grant: the spawn event fired
        process.started_at = self.clock.now
        try:
            process.result = fn(*args, **kwargs)
        except BaseException as error:  # noqa: BLE001 - reported via run()
            process.error = error
        self._finish(process)
        self._loop_wake.set()  # hand control back; the thread exits

    def _finish(self, process: Process) -> None:
        process._done = True
        process.finished_at = self.clock.now
        waiters, process._waiters = process._waiters, []
        for waiter in waiters:
            self._wake(waiter, process.result)
        if process._thread is not None:
            self._thread_procs.pop(process._thread.ident, None)

    def _step_gen(self, process: Process, sendval: Any) -> None:
        """Advance a generator process by one yield."""
        process.started_at = (
            self.clock.now if process.started_at is None else process.started_at
        )
        try:
            item = process._gen.send(sendval)
        except StopIteration as stop:
            process.result = stop.value
            self._finish(process)
            return
        except BaseException as error:  # noqa: BLE001 - reported via run()
            process.error = error
            self._finish(process)
            return
        if item is None:
            self.schedule(0.0, lambda: self._step_gen(process, None))
        elif isinstance(item, (int, float)):
            if item < 0:
                self._throw_gen(process, ValueError(f"cannot sleep {item} s"))
            else:
                self.schedule(float(item), lambda: self._step_gen(process, None))
        elif isinstance(item, Process):
            if item._done:
                self.schedule(0.0, lambda: self._step_gen(process, item.result))
            else:
                item._waiters.append(process)
        elif isinstance(item, SimEvent):
            if not item._add_waiter(process):
                self.schedule(0.0, lambda: self._step_gen(process, None))
        else:
            self._throw_gen(
                process,
                TypeError(
                    f"process {process.name!r} yielded {item!r}; expected a "
                    f"delay, a Process, or a SimEvent"
                ),
            )

    def _throw_gen(self, process: Process, error: BaseException) -> None:
        try:
            process._gen.throw(error)
        except StopIteration as stop:
            process.result = stop.value
        except BaseException as raised:  # noqa: BLE001 - reported via run()
            process.error = raised
        self._finish(process)

    def __repr__(self) -> str:
        return (
            f"SimScheduler(now={self.clock.now:.6f}, "
            f"pending={len(self._heap)}, processes={len(self._processes)})"
        )
