"""A simulated clock.

All performance numbers in the reproduction (conversion times, pull/run
deployment phases, service throughput) are accounted on a virtual clock
rather than wall time, so results are exact, deterministic, and independent
of the host machine.  Components that consume time (disks, network links,
task models) call :meth:`SimClock.advance`; experiment harnesses read
:attr:`SimClock.now` before and after an operation to time it.
"""

from __future__ import annotations

from typing import List, Tuple


class SimClock:
    """A monotonically advancing virtual clock with optional event trace.

    The clock is deliberately simple: the simulation is sequential (one
    client deploying containers against registries), so a full discrete
    event queue is unnecessary; each cost model just advances the shared
    clock by the time its operation takes.
    """

    __slots__ = ("_now", "_trace", "_tracing")

    def __init__(self, *, trace: bool = False) -> None:
        self._now: float = 0.0
        self._tracing = trace
        self._trace: List[Tuple[float, str]] = []

    @property
    def now(self) -> float:
        """Current virtual time in seconds since the clock was created."""
        return self._now

    def advance(self, seconds: float, label: str = "") -> float:
        """Advance the clock by ``seconds`` and return the new time.

        ``seconds`` must be non-negative; cost models must never produce
        negative durations.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds} s")
        self._now += seconds
        if self._tracing and label:
            self._trace.append((self._now, label))
        return self._now

    def reset(self) -> None:
        """Reset virtual time to zero and clear any trace."""
        self._now = 0.0
        self._trace.clear()

    @property
    def trace(self) -> List[Tuple[float, str]]:
        """Recorded ``(timestamp, label)`` events (only when tracing)."""
        return list(self._trace)

    def timer(self) -> "Stopwatch":
        """Return a stopwatch anchored at the current virtual time."""
        return Stopwatch(self)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"


class Stopwatch:
    """Measures elapsed virtual time between creation and :meth:`elapsed`."""

    __slots__ = ("_clock", "_start")

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start = clock.now

    @property
    def start(self) -> float:
        """Virtual time at which the stopwatch was created."""
        return self._start

    def elapsed(self) -> float:
        """Virtual seconds since the stopwatch was created."""
        return self._clock.now - self._start

    def restart(self) -> float:
        """Re-anchor at the current time, returning the previous lap."""
        lap = self.elapsed()
        self._start = self._clock.now
        return lap
