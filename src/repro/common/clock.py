"""A simulated clock and a deterministic discrete-event scheduler.

All performance numbers in the reproduction (conversion times, pull/run
deployment phases, service throughput) are accounted on a virtual clock
rather than wall time, so results are exact, deterministic, and independent
of the host machine.  Components that consume time (disks, network links,
task models) call :meth:`SimClock.advance`; experiment harnesses read
:attr:`SimClock.now` before and after an operation to time it.

Two execution regimes share the same clock:

* **Sequential (the seed model).**  With no scheduler attached,
  :meth:`SimClock.advance` simply adds to ``now`` — the degenerate
  single-process case.  Every call site written against the original
  sequential clock runs unchanged and produces byte-identical timings.
* **Discrete-event (fleet experiments).**  A :class:`SimScheduler`
  attached to the clock turns ``advance`` calls made *inside a simulated
  process* into event-heap sleeps, so N processes (concurrent client
  deployments, background prefetchers) interleave over virtual time.
  Events are ordered by ``(time, seq)`` — ties broken by scheduling
  order — so runs are exactly reproducible.

Processes come in two flavours:

* **generator processes** — ``yield`` a delay in seconds, another
  :class:`Process` (join), or a :class:`SimEvent`; resumed by the
  scheduler with deterministic ordering;
* **call processes** — a plain callable executed on a worker thread with
  *strict handoff*: exactly one thread (the scheduler loop or one
  process) ever runs at a time, so existing synchronous code — deep
  call stacks through daemons, drivers, viewers, and links — becomes a
  schedulable task without rewriting, and determinism is preserved.
"""

from __future__ import annotations

import heapq
import inspect
import itertools
import threading
import weakref
from _thread import allocate_lock as _allocate_lock
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple


class SchedulerError(RuntimeError):
    """The scheduler was asked for something impossible (deadlock, reuse)."""


class _Suspend:
    """Sentinel a generator process yields to park until woken externally.

    Unlike a delay/Process/SimEvent yield, the scheduler registers
    nothing: whoever handed out the sentinel (e.g. a link flow) is
    responsible for calling ``SimScheduler._wake`` later.  This is what
    makes generator-native transfers possible: ``yield SUSPEND`` is the
    generator equivalent of a call process blocking in ``_suspend``.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return "SUSPEND"


#: Shared suspend sentinel (see :class:`_Suspend`).
SUSPEND = _Suspend()


#: Cached ``inspect.isgeneratorfunction`` verdicts.  ``spawn`` is the
#: hottest constructor in fleet waves; the old per-call ``import
#: inspect`` paid an import-lock hit per spawn and re-walked the
#: function object every time.  Bound methods of the same function
#: compare equal, so repeated spawns of ``node.deploy`` hit the cache.
_GENFUNC_CACHE: "weakref.WeakKeyDictionary[Any, bool]" = weakref.WeakKeyDictionary()


def _is_generator_function(target: Any) -> bool:
    try:
        cached = _GENFUNC_CACHE.get(target)
    except TypeError:  # unhashable targets: no caching possible
        return inspect.isgeneratorfunction(target)
    if cached is None:
        cached = inspect.isgeneratorfunction(target)
        try:
            _GENFUNC_CACHE[target] = cached
        except TypeError:  # not weak-referenceable
            pass
    return cached


class _Worker:
    """A reusable strict-handoff worker thread for call processes.

    Creating a fresh daemon thread per call process made ``spawn`` pay
    thread start-up (and the OS a stack) for every client in a wave.
    Workers instead park on a private event between jobs and go back to
    the module pool when a job finishes.  A worker abandoned mid-job
    (its process suspended when the scheduler was aborted) simply never
    returns to the pool — exactly the seed semantics of abandoned
    daemon threads.
    """

    __slots__ = ("thread", "ident", "_ready", "_job")

    _names = itertools.count()

    def __init__(self) -> None:
        self._ready = threading.Event()
        self._job: Optional[Callable[[], None]] = None
        self.thread = threading.Thread(
            target=self._main,
            name=f"sim-worker-{next(_Worker._names)}",
            daemon=True,
        )
        self.thread.start()
        self.ident = self.thread.ident

    def submit(self, job: Callable[[], None]) -> None:
        self._job = job
        self._ready.set()

    def _main(self) -> None:
        ready = self._ready
        while True:
            ready.wait()
            ready.clear()
            job, self._job = self._job, None
            job()
            _WORKER_POOL.release(self)


class _WorkerPool:
    """Process-wide pool of parked :class:`_Worker` threads."""

    __slots__ = ("_idle", "_lock")

    def __init__(self) -> None:
        self._idle: List[_Worker] = []
        self._lock = threading.Lock()

    def acquire(self) -> _Worker:
        with self._lock:
            if self._idle:
                return self._idle.pop()
        return _Worker()

    def release(self, worker: _Worker) -> None:
        with self._lock:
            self._idle.append(worker)


_WORKER_POOL = _WorkerPool()


class _NullSpan:
    """The span returned when no tracer is attached: every op is a no-op.

    A single shared instance makes ``clock.span(...)`` in hot paths cost
    one attribute check and no allocation when telemetry is detached —
    the property that lets instrumentation stay always-on in the code.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def annotate(self, **labels: Any) -> "_NullSpan":
        return self

    def __repr__(self) -> str:
        return "NULL_SPAN"


#: Shared no-op span/instant, handed out whenever telemetry is detached.
NULL_SPAN = _NullSpan()


def _merge_label(accrued: str, incoming: str) -> str:
    """Join trace labels of merged (deferred + settling) advances."""
    if not accrued:
        return incoming
    if not incoming:
        return accrued
    return f"{accrued}+{incoming}"


class SimClock:
    """A monotonically advancing virtual clock with optional telemetry.

    Without an attached :class:`SimScheduler` the clock is deliberately
    simple: the simulation is sequential (one client deploying containers
    against registries), so each cost model just advances the shared
    clock by the time its operation takes.  With a scheduler attached,
    ``advance`` calls made from within a simulated process suspend that
    process instead, letting other processes run in the meantime.

    Telemetry is an attached :class:`repro.obs.trace.SpanTracer`
    (``attach_tracer``, or ``trace=True`` for the legacy flag): every
    ``span``/``instant`` call lands there, and the legacy ``trace``
    property reads the tracer's instants back as ``(time, label)``
    tuples.  With no tracer attached the same calls return a shared
    null span — zero allocation, zero virtual-time cost.
    """

    __slots__ = ("_now", "_scheduler", "_tracer", "_debt", "_debt_label")

    def __init__(self, *, trace: bool = False) -> None:
        self._now: float = 0.0
        self._scheduler: Optional["SimScheduler"] = None
        self._tracer: Optional[Any] = None
        #: Sequential-mode virtual-time debt (see :meth:`advance_deferred`).
        self._debt: float = 0.0
        self._debt_label: str = ""
        if trace:
            self.attach_tracer()

    @property
    def now(self) -> float:
        """Current virtual time in seconds since the clock was created."""
        return self._now

    @property
    def scheduler(self) -> Optional["SimScheduler"]:
        """The attached discrete-event scheduler (None in sequential mode)."""
        return self._scheduler

    # -- telemetry ---------------------------------------------------------

    @property
    def tracer(self) -> Optional[Any]:
        """The attached span tracer (None when telemetry is detached)."""
        return self._tracer

    def attach_tracer(self, tracer: Optional[Any] = None) -> Any:
        """Attach (or create and attach) a span tracer; returns it."""
        if tracer is None:
            from repro.obs.trace import SpanTracer

            tracer = SpanTracer(self)
        self._tracer = tracer
        return tracer

    def detach_tracer(self) -> Optional[Any]:
        """Detach and return the current tracer (telemetry goes free)."""
        tracer, self._tracer = self._tracer, None
        return tracer

    def span(self, name: str, **labels: Any) -> Any:
        """A context manager recording a virtual-time span.

        Free (a shared null object) when no tracer is attached, so call
        sites never need to guard on telemetry being enabled.
        """
        if self._tracer is None:
            return NULL_SPAN
        return self._tracer.span(name, **labels)

    def instant(self, name: str, **labels: Any) -> Any:
        """Record a point event at the current time (no-op untraced)."""
        if self._tracer is None:
            return NULL_SPAN
        return self._tracer.instant(name, **labels)

    def advance(self, seconds: float, label: str = "") -> float:
        """Advance the clock by ``seconds`` and return the new time.

        ``seconds`` must be non-negative; cost models must never produce
        negative durations.  Inside a scheduler process this suspends
        the calling process until virtual time has moved ``seconds``
        ahead; other processes run in the gap.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds} s")
        scheduler = self._scheduler
        if scheduler is not None:
            process = scheduler._running_process()
            if process is not None:
                debt = process._debt
                if debt:
                    seconds = debt + seconds
                    label = _merge_label(process._debt_label, label)
                    process._debt = 0.0
                    process._debt_label = ""
                return scheduler._process_sleep(process, seconds, label)
        debt = self._debt
        if debt:
            seconds = debt + seconds
            label = _merge_label(self._debt_label, label)
            self._debt = 0.0
            self._debt_label = ""
        self._now += seconds
        if self._tracer is not None and label:
            self._tracer.instant(label)
        return self._now

    def advance_deferred(self, seconds: float, label: str = "") -> None:
        """Accrue ``seconds`` as *virtual-time debt* settled later.

        The debt is folded into the same actor's next :meth:`advance`
        (one clock movement — and, under a scheduler, one suspension —
        for the whole run of adjacent cost-model advances) or paid by
        :meth:`settle_debt` before any interaction that other processes
        could observe.  Total virtual time is identical to eager
        advances: settlement adds ``debt + seconds`` in accrual order,
        and both the sequential and the scheduled path share that
        arithmetic.  Only use this for back-to-back local costs with no
        intervening shared-state effects the deferred time should gate.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds} s")
        scheduler = self._scheduler
        if scheduler is not None:
            process = scheduler._running_process()
            if process is not None:
                process._debt += seconds
                if label:
                    process._debt_label = _merge_label(
                        process._debt_label, label
                    )
                return
        self._debt += seconds
        if label:
            self._debt_label = _merge_label(self._debt_label, label)

    def settle_debt(self) -> None:
        """Pay any outstanding deferred advances immediately.

        Called by the shared-state surfaces (link transfers, event
        waits/fires with waiters, joins, process exit) so deferred local
        costs can never leak past a point other processes observe.
        """
        scheduler = self._scheduler
        if scheduler is not None:
            process = scheduler._running_process()
            if process is not None:
                if process._debt:
                    self.advance(0.0)
                return
        if self._debt:
            self.advance(0.0)

    def note(self, label: str) -> None:
        """Record a trace event at the current time (when tracing)."""
        if self._tracer is not None and label:
            self._tracer.instant(label)

    def _jump_to(self, timestamp: float) -> None:
        """Scheduler hook: set ``now`` to an event's timestamp."""
        if timestamp < self._now:
            raise SchedulerError(
                f"event at t={timestamp!r} is in the past (now={self._now!r})"
            )
        self._now = timestamp

    def reset(self) -> None:
        """Reset virtual time to zero and clear any trace."""
        self._now = 0.0
        if self._tracer is not None:
            self._tracer.clear()

    @property
    def trace(self) -> List[Tuple[float, str]]:
        """Recorded ``(timestamp, label)`` events (only when tracing)."""
        if self._tracer is None:
            return []
        return self._tracer.compat_trace()

    def timer(self) -> "Stopwatch":
        """Return a stopwatch anchored at the current virtual time."""
        return Stopwatch(self)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"


class Stopwatch:
    """Measures elapsed virtual time between creation and :meth:`elapsed`."""

    __slots__ = ("_clock", "_start")

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start = clock.now

    @property
    def start(self) -> float:
        """Virtual time at which the stopwatch was created."""
        return self._start

    def elapsed(self) -> float:
        """Virtual seconds since the stopwatch was created."""
        return self._clock.now - self._start

    def restart(self) -> float:
        """Re-anchor at the current time, returning the previous lap."""
        lap = self.elapsed()
        self._start = self._clock.now
        return lap


class _Event:
    """One heap entry: an action to run at a virtual timestamp.

    ``pooled`` events are scheduler-owned transients (sleeps, wakes,
    link completions): after they pop, the loop recycles them into a
    freelist, so the hot path stops allocating an object per suspend.
    Pooled events may be cancelled only *while pending*; the holder
    must drop its reference once the event has fired or been cancelled
    (see :meth:`SimScheduler.schedule_transient`).  Events from the
    public :meth:`SimScheduler.schedule` are never pooled, so external
    holders (fault timers, hedge deadlines) can keep references and
    cancel late, exactly as before.
    """

    __slots__ = ("time", "seq", "action", "cancelled", "pooled")

    def __init__(
        self,
        time: float,
        seq: int,
        action: Callable[[], None],
        pooled: bool = False,
    ) -> None:
        self.time = time
        self.seq = seq
        self.action = action
        self.cancelled = False
        self.pooled = pooled

    def cancel(self) -> None:
        """Mark the event dead; the loop skips it when popped."""
        self.cancelled = True

    def __lt__(self, other: "_Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq


class Process:
    """One schedulable activity: a generator or a thread-backed callable."""

    __slots__ = (
        "scheduler", "name", "_gen", "_ident", "_resume",
        "_grant_cb", "_step_cb", "_sendval", "_debt", "_debt_label",
        "result", "error", "_done", "_waiters", "started_at", "finished_at",
    )

    def __init__(self, scheduler: "SimScheduler", name: str) -> None:
        self.scheduler = scheduler
        self.name = name
        self._gen = None
        self._ident: Optional[int] = None
        #: Strict-handoff park lock (raw ``_thread`` lock, held while the
        #: process must stay parked).  A blocked ``acquire`` re-locks on
        #: wake, so the lock self-arms — no clear/set choreography and a
        #: fraction of ``threading.Event``'s per-handoff cost.
        self._resume: Optional[Any] = None
        #: Pre-bound resume callbacks: one allocation per process, not
        #: one closure per suspend (the seed model's dominant garbage).
        self._grant_cb: Optional[Callable[[], None]] = None
        self._step_cb: Optional[Callable[[], None]] = None
        self._sendval: Any = None
        #: Deferred virtual-time debt (see ``SimClock.advance_deferred``).
        self._debt: float = 0.0
        self._debt_label: str = ""
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._done = False
        self._waiters: List["Process"] = []
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    @property
    def done(self) -> bool:
        """True once the process has finished (normally or with an error)."""
        return self._done

    def _grant_now(self) -> None:
        """Loop-side handoff: unpark this worker, park the loop.

        Bound once at spawn and used directly as the wake event's
        action — the single hottest callback in thread mode, so it
        lives on the process (no wrapper lambda frame per handoff).
        """
        self._resume.release()
        self.scheduler._loop_wake.acquire()

    def join(self) -> "Process":
        """Wait for this process to finish.

        From inside another process this suspends the caller; from the
        main thread it runs the event loop until this process completes.
        Returns ``self`` so callers can read ``result``/``error``.
        """
        return self.scheduler.join(self)

    def __repr__(self) -> str:
        state = "done" if self._done else "running"
        return f"Process({self.name!r}, {state})"


class SimEvent:
    """A one-shot condition processes can wait on (e.g. single-flight).

    ``wait()`` suspends the calling process until someone calls
    ``fire()``; generator processes can ``yield`` the event instead.
    Firing an already-fired event is a no-op; waiting on a fired event
    returns immediately.
    """

    __slots__ = ("clock", "_fired", "_waiters")

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self._fired = False
        self._waiters: List[Process] = []

    @property
    def fired(self) -> bool:
        return self._fired

    def fire(self) -> None:
        """Mark the condition true and wake every waiter."""
        if self._fired:
            return
        scheduler = self.clock.scheduler
        if self._waiters:
            # Waiters resume at the fire time: pay any deferred local
            # costs first so they observe settled virtual time.
            self.clock.settle_debt()
        self._fired = True
        waiters, self._waiters = self._waiters, []
        if scheduler is not None:
            for process in waiters:
                scheduler._wake(process)

    def wait(self) -> None:
        """Block the calling process until the event fires."""
        if self._fired:
            return
        self.clock.settle_debt()
        if self._fired:  # may have fired while debt settled
            return
        scheduler = self.clock.scheduler
        process = scheduler._running_process() if scheduler else None
        if process is None:
            raise SchedulerError(
                "waiting on an unfired SimEvent outside a process would "
                "deadlock the simulation"
            )
        self._waiters.append(process)
        scheduler._suspend(process)

    def _add_waiter(self, process: Process) -> bool:
        """Generator-yield hook: register, or report already-fired."""
        if self._fired:
            return False
        self._waiters.append(process)
        return True


class SimScheduler:
    """A deterministic discrete-event scheduler over a :class:`SimClock`.

    The event heap orders actions by ``(time, seq)``; ``seq`` is a
    monotone counter, so events scheduled earlier run first among ties —
    runs with identical inputs replay identically.  Exactly one activity
    (the loop or one process) executes at any instant, so shared state
    needs no locking and interleavings are reproducible.

    Use as a context manager to guarantee detachment from the clock::

        with SimScheduler(clock) as scheduler:
            procs = [scheduler.spawn(deploy, node) for node in nodes]
            scheduler.run()
    """

    __slots__ = (
        "clock", "_heap", "_nowq", "_seq", "_name_seq", "_processes",
        "_thread_procs", "_loop_wake", "_closed", "_event_pool",
        "_events_processed", "_current_gen",
    )

    def __init__(self, clock: SimClock) -> None:
        if clock._scheduler is not None:
            raise SchedulerError("clock already has an attached scheduler")
        self.clock = clock
        clock._scheduler = self
        # Heap entries are raw ``(time, seq, event)`` tuples: heap
        # sifting then compares C-level (the float, rarely the int tie
        # break) instead of calling ``_Event.__lt__`` — at 1024 pending
        # wakes each pop costs ~10 comparisons, so this is the loop's
        # single hottest constant.
        self._heap: List[Tuple[float, int, _Event]] = []
        #: Zero-delay events in FIFO order.  Wakes and handoffs are
        #: overwhelmingly scheduled at the current instant; keeping them
        #: out of the heap turns the dominant push/pop pair into an
        #: O(1) deque append/popleft (the "simultaneous wakeup batch").
        #: Heads are merged with the heap by ``(time, seq)``, so event
        #: order is exactly the seed order.
        self._nowq: "deque[_Event]" = deque()
        self._seq = itertools.count()
        #: Monotone spawn counter: default process names must stay
        #: unique even if ``_processes`` is later compacted.
        self._name_seq = itertools.count()
        self._processes: List[Process] = []
        self._thread_procs: Dict[int, Process] = {}
        #: Loop-side park lock (same toggle-lock pattern as
        #: ``Process._resume``): locked while a call process runs.
        self._loop_wake = _allocate_lock()
        self._loop_wake.acquire()
        self._closed = False
        #: Freelist of recycled transient events (see ``_Event``).
        self._event_pool: List[_Event] = []
        self._events_processed = 0
        self._current_gen: Optional[Process] = None

    @property
    def events_processed(self) -> int:
        """Events executed so far — the numerator of events/sec."""
        return self._events_processed

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Detach from the clock; the clock reverts to sequential mode."""
        if not self._closed:
            self._closed = True
            if self.clock._scheduler is self:
                self.clock._scheduler = None

    def abort(self) -> int:
        """Cancel every pending event: the simulated node lost power.

        Used by crash-injection experiments after a
        :class:`~repro.common.errors.ClientCrash` propagates out of
        :meth:`run`: sibling processes (prefetchers, concurrent
        deployments on the same node) die with the client instead of
        draining to completion.  Suspended call-process threads are
        abandoned — they are daemon threads parked on an event that will
        never be set, exactly as a killed process never resumes.  Returns
        the number of events cancelled.
        """
        cancelled = 0
        for _, _, event in self._heap:
            if not event.cancelled:
                event.cancel()
                cancelled += 1
        for event in self._nowq:
            if not event.cancelled:
                event.cancel()
                cancelled += 1
        self._heap.clear()
        self._nowq.clear()
        return cancelled

    def __enter__(self) -> "SimScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- scheduling --------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None]) -> _Event:
        """Run ``action`` ``delay`` virtual seconds from now.

        The returned event is owned by the caller: keep it as long as
        you like and cancel it at any time (before or after it fires).
        """
        if delay < 0:
            raise ValueError(f"cannot schedule {delay} s in the past")
        event = _Event(self.clock._now + delay, next(self._seq), action)
        if delay == 0.0:
            self._nowq.append(event)
        else:
            heapq.heappush(self._heap, (event.time, event.seq, event))
        return event

    def schedule_transient(self, delay: float, action: Callable[[], None]) -> _Event:
        """Schedule a *transient* event (recycled after it pops).

        Contract: the returned event may be cancelled only while it is
        still pending, and the holder must drop its reference once the
        event has fired or been cancelled — the scheduler reuses the
        object for a future event.  Internal machinery (sleeps, wakes,
        link-flow completions) lives on this path; external holders
        that keep timers around should use :meth:`schedule`.
        """
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.time = self.clock._now + delay
            event.seq = next(self._seq)
            event.action = action
            event.cancelled = False
        else:
            event = _Event(self.clock._now + delay, next(self._seq), action, True)
        if delay == 0.0:
            self._nowq.append(event)
        else:
            heapq.heappush(self._heap, (event.time, event.seq, event))
        return event

    def spawn(self, target: Any, *args: Any, name: str = "", **kwargs: Any) -> Process:
        """Start a new process at the current virtual time.

        ``target`` may be a generator function (or generator object) —
        stepped by the scheduler, yielding delays / processes / events —
        or any plain callable, which runs on a strict-handoff worker
        thread so ordinary synchronous code (clock advances, link
        transfers deep in the call stack) becomes schedulable unchanged.
        """
        if self._closed:
            raise SchedulerError("scheduler is closed")
        self.clock.settle_debt()  # children start at settled time
        index = next(self._name_seq)
        process = Process(self, name or f"proc-{index}")
        self._processes.append(process)
        tracer = self.clock._tracer
        if tracer is not None:
            # Still on the spawner's thread: the spawner's innermost open
            # span becomes the new process track's base parent.
            tracer.on_spawn(process)
        generator = None
        if hasattr(target, "send") and hasattr(target, "throw"):
            generator = target
        elif _is_generator_function(target):
            generator = target(*args, **kwargs)
        if generator is not None:
            process._gen = generator
            process._step_cb = step_cb = (lambda: self._step_gen(process))
            self.schedule_transient(0.0, step_cb)
        else:
            process._resume = resume = _allocate_lock()
            resume.acquire()  # armed: the worker parks until granted
            process._grant_cb = grant_cb = process._grant_now
            worker = _WORKER_POOL.acquire()
            process._ident = worker.ident
            self._thread_procs[worker.ident] = process
            worker.submit(
                lambda: self._call_process_main(process, target, args, kwargs)
            )
            self.schedule_transient(0.0, grant_cb)
        return process

    # -- the event loop ----------------------------------------------------

    def run(self) -> None:
        """Drain the event heap (must be called from outside any process).

        Raises the first error any process died with, after the heap has
        drained so sibling processes still finish deterministically.
        """
        self._run_loop(None)
        self._raise_process_errors()

    def run_until(self, process: Process) -> Process:
        """Run the loop until ``process`` completes, then return it."""
        self._run_loop(lambda: process._done)
        if not process._done:
            raise SchedulerError(
                f"event heap drained but {process!r} never finished "
                f"(deadlocked on an unfired wait?)"
            )
        if process.error is not None:
            raise process.error
        return process

    def join(self, process: Process) -> Process:
        """Wait for ``process``: suspend the caller, or run the loop."""
        current = self._running_process()
        if current is None:
            if not process._done:
                return self.run_until(process)
            if process.error is not None:
                raise process.error
            return process
        if current is process:
            raise SchedulerError("a process cannot join itself")
        self.clock.settle_debt()
        if not process._done:
            process._waiters.append(current)
            self._suspend(current)
        return process

    def _run_loop(self, should_stop: Optional[Callable[[], bool]]) -> None:
        if self._running_process() is not None or self._current_gen is not None:
            raise SchedulerError("run() called from inside a process")
        heap = self._heap
        nowq = self._nowq
        clock = self.clock
        pool = self._event_pool
        heappop = heapq.heappop
        popleft = nowq.popleft
        while heap or nowq:
            if should_stop is not None and should_stop():
                break
            # Merge the zero-delay FIFO with the heap by (time, seq) so
            # the execution order is exactly the single-heap order.
            if nowq:
                if heap:
                    head = heap[0]
                    front = nowq[0]
                    if head[0] < front.time or (
                        head[0] == front.time and head[1] < front.seq
                    ):
                        event = heappop(heap)[2]
                    else:
                        event = popleft()
                else:
                    event = popleft()
            else:
                event = heappop(heap)[2]
            if not event.cancelled:
                time = event.time
                if time != clock._now:
                    clock._jump_to(time)
                self._events_processed += 1
                event.action()
            if event.pooled and len(pool) < 1024:
                event.action = None
                pool.append(event)

    def _raise_process_errors(self) -> None:
        for process in self._processes:
            if process.error is not None:
                error, process.error = process.error, None
                raise error

    # -- process internals -------------------------------------------------

    def _running_process(self) -> Optional[Process]:
        """The call process owning the current thread, if any."""
        return self._thread_procs.get(threading.get_ident())

    def current_process(self) -> Optional[Process]:
        """The process running right now: generator step or call thread.

        Unlike :meth:`_running_process` (thread-keyed, used by
        ``advance`` to decide whether to suspend), this also reports the
        generator process currently being stepped on the loop thread —
        what tracers need to attribute spans and instants to the right
        track.
        """
        current = self._current_gen
        if current is not None:
            return current
        return self._thread_procs.get(threading.get_ident())

    def _process_sleep(self, process: Process, seconds: float, label: str) -> float:
        """Suspend a call process for ``seconds`` of virtual time."""
        self.schedule_transient(seconds, process._grant_cb)
        self._suspend(process)
        self.clock.note(label)
        return self.clock.now

    def _suspend(self, process: Process) -> None:
        """Hand control to the loop; return when the process is regranted."""
        self._loop_wake.release()
        process._resume.acquire()

    def _grant(self, process: Process) -> None:
        """Loop-side handoff: let ``process`` run until it yields back."""
        process._resume.release()
        self._loop_wake.acquire()

    def _wake(self, process: Process, value: Any = None) -> None:
        """Schedule ``process`` to resume now (used by events and flows)."""
        if process._gen is not None:
            process._sendval = value
            self.schedule_transient(0.0, process._step_cb)
        else:
            self.schedule_transient(0.0, process._grant_cb)

    def _call_process_main(
        self,
        process: Process,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        kwargs: Dict[str, Any],
    ) -> None:
        process._resume.acquire()  # first grant: the spawn event fired
        process.started_at = self.clock.now
        try:
            process.result = fn(*args, **kwargs)
            if process._debt:
                self.clock.advance(0.0)  # settle before finished_at
        except BaseException as error:  # noqa: BLE001 - reported via run()
            process.error = error
        self._finish(process)
        self._loop_wake.release()  # hand control back; the worker re-parks

    def _finish(self, process: Process) -> None:
        process._done = True
        process.finished_at = self.clock._now
        waiters = process._waiters
        if waiters:
            process._waiters = []
            result = process.result
            for waiter in waiters:
                self._wake(waiter, result)
        if process._ident is not None:
            self._thread_procs.pop(process._ident, None)

    def _step_gen(self, process: Process) -> None:
        """Advance a generator process by one yield."""
        sendval = process._sendval
        process._sendval = None
        if process.started_at is None:
            process.started_at = self.clock._now
        self._current_gen = process
        try:
            item = process._gen.send(sendval)
        except StopIteration as stop:
            process.result = stop.value
            self._finish(process)
            return
        except BaseException as error:  # noqa: BLE001 - reported via run()
            process.error = error
            self._finish(process)
            return
        finally:
            self._current_gen = None
        if item is None:
            self.schedule_transient(0.0, process._step_cb)
        elif item is SUSPEND:
            pass  # parked: whoever handed out SUSPEND will _wake us
        elif isinstance(item, (int, float)):
            if item < 0:
                self._throw_gen(process, ValueError(f"cannot sleep {item} s"))
            else:
                self.schedule_transient(float(item), process._step_cb)
        elif isinstance(item, Process):
            if item._done:
                process._sendval = item.result
                self.schedule_transient(0.0, process._step_cb)
            else:
                item._waiters.append(process)
        elif isinstance(item, SimEvent):
            if not item._add_waiter(process):
                self.schedule_transient(0.0, process._step_cb)
        else:
            self._throw_gen(
                process,
                TypeError(
                    f"process {process.name!r} yielded {item!r}; expected a "
                    f"delay, a Process, or a SimEvent"
                ),
            )

    def _throw_gen(self, process: Process, error: BaseException) -> None:
        self._current_gen = process
        try:
            process._gen.throw(error)
        except StopIteration as stop:
            process.result = stop.value
        except BaseException as raised:  # noqa: BLE001 - reported via run()
            process.error = raised
        finally:
            self._current_gen = None
        self._finish(process)

    def __repr__(self) -> str:
        return (
            f"SimScheduler(now={self.clock.now:.6f}, "
            f"pending={len(self._heap) + len(self._nowq)}, "
            f"processes={len(self._processes)})"
        )
