"""repro — a full reproduction of *Gear: Enable Efficient Container
Storage and Deployment with a New Image Format* (ICDCS 2021).

The package is organized as the paper's system plus every substrate it
depends on:

* :mod:`repro.gear` — the Gear image format and framework (the paper's
  contribution): index, converter, registry, driver, file viewer, shared
  cache, commit path, and the big-file chunked-read extension.
* :mod:`repro.docker` — the Docker substrate: layered images, registry,
  Overlay2 graph driver, daemon.
* :mod:`repro.vfs` — an in-memory POSIX-like filesystem with a full
  overlay/union mount implementation.
* :mod:`repro.net` / :mod:`repro.storage` — simulated links, disks, and
  object stores on a deterministic virtual clock.
* :mod:`repro.dedup` / :mod:`repro.analysis` — the dedup granularity and
  redundancy analyses of the motivation section.
* :mod:`repro.workloads` — the synthetic Table I corpus and task models.
* :mod:`repro.baselines` — vanilla Docker and Slacker deployment.
* :mod:`repro.bench` — harnesses regenerating each table and figure.

Quickstart::

    from repro import make_testbed, CorpusBuilder, CorpusConfig
    from repro.bench.environment import publish_images
    from repro.bench.deploy import deploy_with_docker, deploy_with_gear

    corpus = CorpusBuilder(CorpusConfig(series_names=("nginx", "debian"),
                                        versions_cap=3)).build()
    testbed = make_testbed(bandwidth_mbps=100)
    publish_images(testbed, corpus.images)
    result = deploy_with_gear(testbed, corpus.images[-1])
    print(result.pull_s, result.run_s, result.network_bytes)
"""

from repro.bench.environment import Testbed, make_testbed
from repro.common import SimClock
from repro.docker import (
    Container,
    DockerDaemon,
    DockerRegistry,
    Image,
    ImageBuilder,
    Layer,
    Manifest,
    Overlay2Driver,
)
from repro.gear import (
    GearConverter,
    GearDriver,
    GearFile,
    GearFileViewer,
    GearIndex,
    GearRegistry,
    SharedFilePool,
)
from repro.net import Link, RpcTransport
from repro.vfs import FileSystemTree, OverlayMount
from repro.workloads import Corpus, CorpusBuilder, CorpusConfig

__version__ = "1.0.0"

__all__ = [
    "Testbed",
    "make_testbed",
    "SimClock",
    "Container",
    "DockerDaemon",
    "DockerRegistry",
    "Image",
    "ImageBuilder",
    "Layer",
    "Manifest",
    "Overlay2Driver",
    "GearConverter",
    "GearDriver",
    "GearFile",
    "GearFileViewer",
    "GearIndex",
    "GearRegistry",
    "SharedFilePool",
    "Link",
    "RpcTransport",
    "FileSystemTree",
    "OverlayMount",
    "Corpus",
    "CorpusBuilder",
    "CorpusConfig",
    "__version__",
]
