"""Deterministic synthetic image corpus (the Table I stand-in).

Generation model
----------------
* **Distro series** are single-layer base images whose whole payload
  churns heavily between versions (base-image refreshes change most
  files, §V-C).
* **Language series** stack a runtime layer (their payload) on a distro
  base pinned to 5-version epochs; the runtime churns every version.
* **Application series** stack runtime + app + config layers on a distro
  base.  The runtime refreshes only every few versions and may be
  *borrowed* from a Language series (same file contents, independently
  built layer — dedupable at file level, not at layer level).  The app
  payload churns at the category's rate; configs are small and volatile.
* Every file carries a **volatility** score; per-version churn rolls are
  deterministic functions of (series, path, version), so a stable file
  survives many versions while a volatile one changes almost every
  version.  Necessary-file selection mixes stable and volatile files to
  hit the category's Fig. 2 redundancy target.
* Changed files share ``1 - chunk_churn`` of their chunks with their
  predecessor, producing the file-vs-chunk dedup gap of Table II.

Everything is a pure function of ``CorpusConfig.seed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.blob import Blob
from repro.common.errors import NotFoundError, ReproError
from repro.common.rng import bounded_lognormal, rng_for
from repro.docker.image import Image, ImageConfig, Layer
from repro.vfs.inode import Metadata
from repro.vfs.tar import LayerArchive
from repro.vfs.tree import FileSystemTree
from repro.workloads.access import AccessTrace
from repro.workloads.series import (
    CATEGORIES,
    RUNTIME_SOURCE,
    SERIES,
    SeriesSpec,
)

#: App images pin their distro base to epochs of this many versions.
BASE_EPOCH = 5

#: Byte fraction of the distro base touched at startup (shell, libc, …).
BASE_NECESSARY_FRAC = 0.06

#: Files in the top volatility band are "release binaries": they change
#: on (almost) every version regardless of the category's average churn,
#: which is what keeps the necessary data of low-churn series from being
#: fully redundant across versions (Fig. 2).
RELEASE_BINARY_VOLATILITY = 0.80
RELEASE_BINARY_CHURN_BOOST = 0.70

#: Role layout per file index (10% executables, 50% libraries,
#: 10% config, 30% data) — container images are library-heavy.
_ROLES = ("bin", "lib", "lib", "lib", "lib", "lib", "config", "data", "data", "data")

_ROLE_MODE = {"bin": 0o755, "lib": 0o644, "config": 0o644, "data": 0o644}

#: Trace ordering: configs are parsed first, then executables load,
#: then libraries, then data.
_ROLE_ORDER = {"config": 0, "bin": 1, "lib": 2, "data": 3}


@dataclass(frozen=True)
class CorpusConfig:
    """Corpus generation parameters."""

    seed: int = 7
    #: Multiplier on per-group file counts (tests use ~0.1).
    file_scale: float = 1.0
    #: Multiplier on file sizes.
    size_scale: float = 1.0
    #: Restrict generation to these series names (None = full Table I).
    series_names: Optional[Tuple[str, ...]] = None
    #: Cap on versions per series (None = the catalog's counts).
    versions_cap: Optional[int] = None

    def selected_series(self) -> List[SeriesSpec]:
        specs = list(SERIES)
        if self.series_names is not None:
            wanted = set(self.series_names)
            unknown = wanted - {spec.name for spec in specs}
            if unknown:
                raise ReproError(f"unknown series: {sorted(unknown)}")
            # Always include the distro bases the selection depends on,
            # and any borrowed runtime's language series.
            needed = set(wanted)
            for spec in specs:
                if spec.name in wanted:
                    if spec.base_distro:
                        needed.add(spec.base_distro)
                    source = RUNTIME_SOURCE.get(spec.name)
                    if source is not None:
                        needed.add(source)
                        needed.add(next(
                            s.base_distro for s in specs if s.name == source
                        ) or spec.base_distro)
            specs = [spec for spec in specs if spec.name in needed]
        if self.versions_cap is not None:
            specs = [
                SeriesSpec(
                    name=spec.name,
                    category=spec.category,
                    versions=min(spec.versions, self.versions_cap),
                    base_distro=spec.base_distro,
                )
                for spec in specs
            ]
        return specs


@dataclass
class GeneratedImage:
    """One corpus image plus its startup trace."""

    spec: SeriesSpec
    tag: str
    image: Image
    trace: AccessTrace
    #: Zero-based version position within the series.
    tag_index: int = 0

    @property
    def reference(self) -> str:
        return self.image.reference

    @property
    def category(self) -> str:
        return self.spec.category


class Corpus:
    """The generated image corpus with lookup helpers."""

    def __init__(self, config: CorpusConfig, images: List[GeneratedImage]) -> None:
        self.config = config
        self.images = images
        self.by_series: Dict[str, List[GeneratedImage]] = {}
        self._by_reference: Dict[str, GeneratedImage] = {}
        for generated in images:
            self.by_series.setdefault(generated.spec.name, []).append(generated)
            self._by_reference[generated.reference] = generated

    def get(self, reference: str) -> GeneratedImage:
        try:
            return self._by_reference[reference]
        except KeyError:
            raise NotFoundError(f"corpus has no image {reference!r}") from None

    def references(self) -> List[str]:
        return [generated.reference for generated in self.images]

    def docker_images(self) -> List[Image]:
        return [generated.image for generated in self.images]

    def by_category(self) -> Dict[str, List[GeneratedImage]]:
        grouped: Dict[str, List[GeneratedImage]] = {c: [] for c in CATEGORIES}
        for generated in self.images:
            grouped[generated.category].append(generated)
        return {c: lst for c, lst in grouped.items() if lst}

    @property
    def image_count(self) -> int:
        return len(self.images)

    @property
    def total_uncompressed_bytes(self) -> int:
        return sum(g.image.uncompressed_size for g in self.images)

    def __repr__(self) -> str:
        return (
            f"Corpus(images={len(self.images)}, series={len(self.by_series)}, "
            f"bytes={self.total_uncompressed_bytes})"
        )


class _FileSet:
    """An evolving group of files (one logical layer's content)."""

    __slots__ = ("ns", "prefix", "files", "volatility", "role", "_next_index")

    def __init__(self, ns: str, prefix: str) -> None:
        self.ns = ns
        self.prefix = prefix
        self.files: Dict[str, Blob] = {}
        self.volatility: Dict[str, float] = {}
        self.role: Dict[str, str] = {}
        self._next_index = 0

    def populate(self, count: int, median: int, sigma: float) -> None:
        rng = rng_for(self.ns, "populate")
        for _ in range(count):
            self._add_file(rng, median, sigma, version=0)

    def _add_file(self, rng, median: int, sigma: float, version: int) -> str:
        index = self._next_index
        self._next_index += 1
        role = _ROLES[index % len(_ROLES)]
        ext = {"bin": "", "lib": ".so", "config": ".conf", "data": ".dat"}[role]
        path = f"{self.prefix}/d{index % 7}/f{index:05d}{ext}"
        size = int(bounded_lognormal(rng, median, sigma, 256, 24_000_000))
        self.files[path] = Blob.synthetic(f"{self.ns}/{path}/v{version}", size)
        self.volatility[path] = rng.random()
        self.role[path] = role
        return path

    def evolve(
        self,
        version: int,
        *,
        churn: float,
        chunk_churn: float,
        add_rate: float,
        median: int,
        sigma: float,
        remove_rate: float = 0.01,
    ) -> None:
        """Advance the group one version."""
        from repro.common.hashing import stable_unit_interval

        rng = rng_for(self.ns, "evolve", str(version))
        doomed: List[str] = []
        for path in list(self.files):
            roll = stable_unit_interval(self.ns, "roll", path, str(version))
            vol = self.volatility[path]
            # Per-file churn probability: every file has at least half the
            # category rate (releases touch broadly), scaled up with
            # volatility, with the release-binary band near-certain.
            churn_p = churn * (0.5 + 1.5 * vol)
            if vol > RELEASE_BINARY_VOLATILITY:
                churn_p += RELEASE_BINARY_CHURN_BOOST
            churn_p = min(0.98, churn_p)
            if roll < remove_rate * self.volatility[path]:
                doomed.append(path)
            elif roll < churn_p:
                self.files[path] = self.files[path].mutate(
                    f"{self.ns}/{path}/v{version}", chunk_churn
                )
        for path in doomed:
            del self.files[path]
            del self.volatility[path]
            del self.role[path]
        for _ in range(max(0, round(add_rate * max(1, len(self.files))))):
            self._add_file(rng, median, sigma, version=version)

    def total_bytes(self) -> int:
        return sum(blob.size for blob in self.files.values())

    def snapshot(self) -> "_FileSet":
        copy = _FileSet(self.ns, self.prefix)
        copy.files = dict(self.files)
        copy.volatility = dict(self.volatility)
        copy.role = dict(self.role)
        copy._next_index = self._next_index
        return copy


def _layer_from_filesets(filesets: Sequence[_FileSet]) -> Layer:
    tree = FileSystemTree()
    for fileset in filesets:
        for path, blob in fileset.files.items():
            mode = _ROLE_MODE[fileset.role[path]]
            tree.write_file(path, blob, meta=Metadata(mode=mode), parents=True)
    return Layer(LayerArchive.from_tree(tree))


def _select_necessary(
    fileset: _FileSet,
    *,
    byte_frac: float,
    stable_frac: float,
) -> List[Tuple[str, int]]:
    """Pick the startup-necessary files of one group.

    Takes ``stable_frac`` of the byte budget from low-volatility files
    (version-stable libraries and configs) and the remainder from
    high-volatility files (the per-version binaries a new release always
    replaces).  Selection order is deterministic by volatility rank, so
    the necessary set is consistent across versions wherever the
    underlying files survive.
    """
    budget = byte_frac * fileset.total_bytes()
    stable = sorted(
        (p for p, v in fileset.volatility.items() if v < 0.5),
        key=lambda p: (fileset.volatility[p], p),
    )
    volatile = sorted(
        (p for p, v in fileset.volatility.items() if v >= 0.5),
        key=lambda p: (-fileset.volatility[p], p),
    )
    picked: List[Tuple[str, int]] = []
    taken = 0.0

    def _take(pool: List[str], limit: float) -> None:
        nonlocal taken
        for path in pool:
            if taken >= limit:
                return
            size = fileset.files[path].size
            picked.append((path, size))
            taken += size

    _take(stable, stable_frac * budget)
    _take(volatile, budget)
    return picked


def _order_trace(
    selections: Sequence[Tuple[_FileSet, List[Tuple[str, int]]]],
) -> List[Tuple[str, int]]:
    ordered: List[Tuple[str, int]] = []
    tagged: List[Tuple[int, str, int]] = []
    for fileset, picks in selections:
        for path, size in picks:
            tagged.append((_ROLE_ORDER[fileset.role[path]], path, size))
    tagged.sort()
    for _, path, size in tagged:
        ordered.append((path, size))
    return ordered


class CorpusBuilder:
    """Generates the corpus from a :class:`CorpusConfig`."""

    def __init__(self, config: Optional[CorpusConfig] = None) -> None:
        self.config = config if config is not None else CorpusConfig()
        self._distro_images: Dict[str, List[Image]] = {}
        self._distro_filesets: Dict[str, List[_FileSet]] = {}
        self._lang_runtime: Dict[str, List[_FileSet]] = {}

    # -- public -----------------------------------------------------------

    def build(self) -> Corpus:
        specs = self.config.selected_series()
        generated: List[GeneratedImage] = []
        # Distros first (bases), then languages (runtime sources), then
        # the application categories.
        for spec in specs:
            if spec.category == "Linux Distro":
                generated.extend(self._build_distro_series(spec))
        for spec in specs:
            if spec.category == "Language":
                generated.extend(self._build_language_series(spec))
        for spec in specs:
            if spec.category not in ("Linux Distro", "Language"):
                generated.extend(self._build_app_series(spec))
        # Catalog (Table I) ordering for reports.
        order = {spec.name: i for i, spec in enumerate(SERIES)}
        generated.sort(key=lambda g: (order[g.spec.name], g.tag_index))
        return Corpus(self.config, generated)

    # -- per-category builders ------------------------------------------------

    def _scaled(self, count: int) -> int:
        return max(3, round(count * self.config.file_scale))

    def _sized(self, median: int) -> int:
        return max(256, round(median * self.config.size_scale))

    def _build_distro_series(self, spec: SeriesSpec) -> List[GeneratedImage]:
        profile = spec.profile
        ns = f"c{self.config.seed}/{spec.name}"
        base = _FileSet(f"{ns}/base", "/usr")
        base.populate(
            self._scaled(profile.app_files),
            self._sized(profile.app_file_median),
            profile.app_sigma,
        )
        images: List[GeneratedImage] = []
        filesets: List[_FileSet] = []
        for v, tag in enumerate(spec.tags()):
            if v > 0:
                base.evolve(
                    v,
                    churn=profile.app_churn,
                    chunk_churn=profile.chunk_churn,
                    add_rate=profile.add_rate,
                    median=self._sized(profile.app_file_median),
                    sigma=profile.app_sigma,
                )
            layer = _layer_from_filesets([base])
            config = ImageConfig.make(
                env={"PATH": "/usr/bin", "DISTRO": spec.name, "VERSION": tag},
                cmd=("/bin/sh", "-c", "echo hello"),
            )
            image = Image(spec.name, tag, [layer], config)
            snapshot = base.snapshot()
            filesets.append(snapshot)
            trace = self._trace_for(
                spec, tag, v,
                [(snapshot, _select_necessary(
                    snapshot,
                    byte_frac=profile.necessary_byte_frac,
                    stable_frac=profile.necessary_stable_frac,
                ))],
            )
            images.append(_generated(spec, v, tag, image, trace))
        self._distro_images[spec.name] = [g.image for g in images]
        self._distro_filesets[spec.name] = filesets
        return images

    def _build_language_series(self, spec: SeriesSpec) -> List[GeneratedImage]:
        profile = spec.profile
        ns = f"c{self.config.seed}/{spec.name}"
        runtime = _FileSet(f"{ns}/runtime", f"/usr/local/{spec.name}")
        runtime.populate(
            self._scaled(profile.runtime_files),
            self._sized(profile.runtime_median),
            profile.app_sigma,
        )
        app = _FileSet(f"{ns}/app", f"/opt/{spec.name}")
        app.populate(
            self._scaled(profile.app_files),
            self._sized(profile.app_file_median),
            profile.app_sigma,
        )
        images: List[GeneratedImage] = []
        snapshots: List[_FileSet] = []
        for v, tag in enumerate(spec.tags()):
            if v > 0:
                runtime.evolve(
                    v,
                    churn=profile.app_churn,
                    chunk_churn=profile.chunk_churn,
                    add_rate=profile.add_rate,
                    median=self._sized(profile.runtime_median),
                    sigma=profile.app_sigma,
                )
                app.evolve(
                    v,
                    churn=profile.app_churn,
                    chunk_churn=profile.chunk_churn,
                    add_rate=profile.add_rate,
                    median=self._sized(profile.app_file_median),
                    sigma=profile.app_sigma,
                )
            base_image = self._base_image(spec, v)
            layers = list(base_image.layers)
            layers.append(_layer_from_filesets([runtime]))
            layers.append(_layer_from_filesets([app]))
            config = ImageConfig.make(
                env={
                    "PATH": f"/usr/local/{spec.name}/bin:/usr/bin",
                    "LANG_RUNTIME": spec.name,
                    "VERSION": tag,
                },
                cmd=(f"/usr/local/{spec.name}/bin/run", "hello"),
            )
            image = Image(spec.name, tag, layers, config)
            runtime_snapshot = runtime.snapshot()
            snapshots.append(runtime_snapshot)
            app_snapshot = app.snapshot()
            selections = [
                self._base_selection(spec, v),
                (runtime_snapshot, _select_necessary(
                    runtime_snapshot,
                    byte_frac=profile.necessary_byte_frac,
                    stable_frac=profile.necessary_stable_frac,
                )),
                (app_snapshot, _select_necessary(
                    app_snapshot,
                    byte_frac=profile.necessary_byte_frac,
                    stable_frac=profile.necessary_stable_frac,
                )),
            ]
            trace = self._trace_for(spec, tag, v, selections)
            images.append(_generated(spec, v, tag, image, trace))
        self._lang_runtime[spec.name] = snapshots
        return images

    def _build_app_series(self, spec: SeriesSpec) -> List[GeneratedImage]:
        profile = spec.profile
        ns = f"c{self.config.seed}/{spec.name}"
        source = RUNTIME_SOURCE.get(spec.name)
        own_runtime: Optional[_FileSet] = None
        extras: Optional[_FileSet] = None
        if source is None:
            own_runtime = _FileSet(f"{ns}/runtime", f"/usr/lib/{spec.name}")
            own_runtime.populate(
                self._scaled(profile.runtime_files),
                self._sized(profile.runtime_median),
                profile.app_sigma,
            )
        else:
            # A few build-specific files so the borrowed runtime layer's
            # digest differs from the language series' own layer.
            extras = _FileSet(f"{ns}/runtime-extras", f"/usr/local/extras/{spec.name}")
            extras.populate(3, self._sized(8_000), 1.0)
        app = _FileSet(f"{ns}/app", f"/opt/{spec.name}")
        app.populate(
            self._scaled(profile.app_files),
            self._sized(profile.app_file_median),
            profile.app_sigma,
        )
        config_group = _FileSet(f"{ns}/config", f"/etc/{spec.name}")
        config_group.populate(self._scaled(12), self._sized(2_000), 1.0)

        images: List[GeneratedImage] = []
        for v, tag in enumerate(spec.tags()):
            refresh = profile.runtime_refresh
            if v > 0:
                app.evolve(
                    v,
                    churn=profile.app_churn,
                    chunk_churn=profile.chunk_churn,
                    add_rate=profile.add_rate,
                    median=self._sized(profile.app_file_median),
                    sigma=profile.app_sigma,
                )
                config_group.evolve(
                    v,
                    churn=0.85,
                    chunk_churn=0.9,
                    add_rate=0.02,
                    median=self._sized(2_000),
                    sigma=1.0,
                    remove_rate=0.0,
                )
                if own_runtime is not None and v % refresh == 0:
                    own_runtime.evolve(
                        v,
                        churn=0.35,
                        chunk_churn=profile.chunk_churn,
                        add_rate=profile.add_rate,
                        median=self._sized(profile.runtime_median),
                        sigma=profile.app_sigma,
                    )
            runtime_fs = self._runtime_fileset(spec, v, own_runtime, source)
            base_image = self._base_image(spec, v)
            layers = list(base_image.layers)
            runtime_sets = [runtime_fs] if extras is None else [runtime_fs, extras]
            layers.append(_layer_from_filesets(runtime_sets))
            layers.append(_layer_from_filesets([app]))
            layers.append(_layer_from_filesets([config_group]))
            config = ImageConfig.make(
                env={
                    "PATH": f"/opt/{spec.name}/bin:/usr/bin",
                    "APP": spec.name,
                    "VERSION": tag,
                },
                entrypoint=(f"/opt/{spec.name}/bin/start",),
                workdir=f"/opt/{spec.name}",
            )
            image = Image(spec.name, tag, layers, config)
            runtime_snapshot = runtime_fs.snapshot()
            app_snapshot = app.snapshot()
            config_snapshot = config_group.snapshot()
            selections = [
                self._base_selection(spec, v),
                (runtime_snapshot, _select_necessary(
                    runtime_snapshot,
                    byte_frac=profile.necessary_byte_frac,
                    stable_frac=profile.necessary_stable_frac,
                )),
                (app_snapshot, _select_necessary(
                    app_snapshot,
                    byte_frac=profile.necessary_byte_frac,
                    stable_frac=profile.necessary_stable_frac,
                )),
                (config_snapshot, [
                    (p, b.size) for p, b in sorted(config_snapshot.files.items())
                ]),
            ]
            trace = self._trace_for(spec, tag, v, selections)
            images.append(_generated(spec, v, tag, image, trace))
        return images

    # -- shared helpers -----------------------------------------------------------

    def _base_image(self, spec: SeriesSpec, version: int) -> Image:
        distro = self._distro_images.get(spec.base_distro)
        if distro is None:
            raise ReproError(
                f"{spec.name!r} requires base distro {spec.base_distro!r}, "
                f"which is not in the configured corpus"
            )
        epoch = min((version // BASE_EPOCH) * BASE_EPOCH, len(distro) - 1)
        return distro[epoch]

    def _base_fileset(self, spec: SeriesSpec, version: int) -> _FileSet:
        filesets = self._distro_filesets[spec.base_distro]
        epoch = min((version // BASE_EPOCH) * BASE_EPOCH, len(filesets) - 1)
        return filesets[epoch]

    def _base_selection(
        self, spec: SeriesSpec, version: int
    ) -> Tuple[_FileSet, List[Tuple[str, int]]]:
        base = self._base_fileset(spec, version)
        return base, _select_necessary(
            base, byte_frac=BASE_NECESSARY_FRAC, stable_frac=0.6
        )

    def _runtime_fileset(
        self,
        spec: SeriesSpec,
        version: int,
        own_runtime: Optional[_FileSet],
        source: Optional[str],
    ) -> _FileSet:
        if own_runtime is not None:
            return own_runtime
        assert source is not None
        snapshots = self._lang_runtime.get(source)
        if snapshots is None:
            raise ReproError(
                f"{spec.name!r} borrows runtime from {source!r}, which is "
                f"not in the configured corpus"
            )
        refresh = spec.profile.runtime_refresh
        epoch = min((version // refresh) * refresh, len(snapshots) - 1)
        return snapshots[epoch]

    def _trace_for(
        self,
        spec: SeriesSpec,
        tag: str,
        version: int,
        selections: Sequence[Tuple[_FileSet, List[Tuple[str, int]]]],
    ) -> AccessTrace:
        rng = rng_for(f"c{self.config.seed}/{spec.name}", "task", str(version))
        compute = spec.profile.task_compute_s * (0.9 + 0.2 * rng.random())
        return AccessTrace(
            reference=f"{spec.name}:{tag}",
            accesses=tuple(_order_trace(selections)),
            compute_s=compute,
        )


def _generated(
    spec: SeriesSpec, version: int, tag: str, image: Image, trace: AccessTrace
) -> GeneratedImage:
    return GeneratedImage(
        spec=spec, tag=tag, image=image, trace=trace, tag_index=version
    )
