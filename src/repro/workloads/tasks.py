"""Container startup task models.

§V-D: "the Linux Distro containers execute the 'echo hello' commands.
The Language containers compile and run a 'hello world' program … The
Database containers perform additions, deletions, updates, and queries on
a database.  The Web Component containers start a web server and respond
to a request.  The Application Platform and Others containers complete
their specific tasks."

A :class:`TaskModel` executes an :class:`~repro.workloads.access.AccessTrace`
against a container's root filesystem mount: it reads every necessary
file (which, under Gear, faults the file in) and advances the clock by
the task's compute time plus a small per-read filesystem cost.  Some
categories also write (databases persist records), exercising the
writable layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.clock import SimClock
from repro.workloads.access import AccessTrace

#: CPU/page-cache cost of serving one read through the mounted
#: filesystem once the file is local (lookup + copy).
PER_READ_COST_S = 0.00012

#: Local-disk read throughput for already-present content during the run
#: phase (page-cache-warm reads are faster than cold disk, but charging
#: a nominal rate keeps big-file reads from being free).
LOCAL_READ_BPS = 900e6


@dataclass
class TaskResult:
    """Outcome of running a startup task in a container."""

    reference: str
    files_read: int
    bytes_read: int
    bytes_written: int
    duration_s: float
    #: Elapsed virtual seconds (within the task) until the startup read
    #: set — every access in the trace — was fully satisfied.  The
    #: service is *ready* here; writes and compute after this point are
    #: steady-state work, not startup latency (ROADMAP item 5b).
    ready_s: float = 0.0


@dataclass(frozen=True)
class TaskModel:
    """One category's startup task."""

    category: str
    #: Files written during the task and their size (databases write
    #: WALs, web servers write logs, …).
    writes: int = 0
    write_bytes: int = 0

    def run(
        self,
        clock: SimClock,
        mount,
        trace: AccessTrace,
    ) -> TaskResult:
        """Drive the trace through ``mount``, advancing ``clock``.

        ``mount`` is any object with ``read_blob``/``write_file`` —
        an Overlay2 mount, a Gear File Viewer, or a Slacker device view.
        Reads of missing content advance the clock inside the mount's
        fault path; this method adds local read costs and task compute.
        """
        timer = clock.timer()
        bytes_read = 0
        for path, _ in trace.accesses:
            blob = mount.read_blob(path)
            bytes_read += blob.size
            clock.advance(
                PER_READ_COST_S + blob.size / LOCAL_READ_BPS, "task-read"
            )
        # The startup read set is satisfied: the service is ready.  The
        # instant is free when no tracer is attached (null-object path).
        ready_s = timer.elapsed()
        clock.instant("ready", ref=trace.reference)
        bytes_written = 0
        for i in range(self.writes):
            payload = b"x" * self.write_bytes
            mount.write_file(f"/var/run/task-{i}.out", payload, parents=True)
            bytes_written += self.write_bytes
            clock.advance(self.write_bytes / LOCAL_READ_BPS, "task-write")
        clock.advance(trace.compute_s, "task-compute")
        return TaskResult(
            reference=trace.reference,
            files_read=trace.file_count,
            bytes_read=bytes_read,
            bytes_written=bytes_written,
            duration_s=timer.elapsed(),
            ready_s=ready_s,
        )


_TASKS = {
    "Linux Distro": TaskModel(category="Linux Distro"),
    "Language": TaskModel(category="Language", writes=1, write_bytes=4096),
    "Database": TaskModel(category="Database", writes=4, write_bytes=65536),
    "Web Component": TaskModel(category="Web Component", writes=1, write_bytes=8192),
    "Application Platform": TaskModel(
        category="Application Platform", writes=3, write_bytes=32768
    ),
    "Others": TaskModel(category="Others", writes=1, write_bytes=4096),
}


def task_for_category(category: str) -> TaskModel:
    """The startup task model for a Table I category."""
    try:
        return _TASKS[category]
    except KeyError:
        raise KeyError(f"no task model for category {category!r}") from None
