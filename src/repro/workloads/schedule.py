"""Deployment schedules: who deploys what, in what order.

The paper measures single deployments and one version sequence (Fig. 10).
Real nodes see a *mix*: popular images recur (Docker Hub popularity is
heavy-tailed — the paper's own dataset is the "top 50 most popular"
series), versions roll forward, and occasionally a brand-new series
appears.  A :class:`ScheduleBuilder` generates such a stream
deterministically so cache-behaviour experiments run on realistic
arrival patterns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.rng import rng_for
from repro.workloads.corpus import Corpus, GeneratedImage


@dataclass(frozen=True)
class ScheduledDeployment:
    """One entry in a node's deployment stream."""

    position: int
    image: GeneratedImage
    #: True when this reference was deployed earlier in the schedule.
    is_repeat: bool


def zipf_weights(n: int, skew: float = 1.0) -> List[float]:
    """Zipf popularity weights for ranks 1..n."""
    if n <= 0:
        raise ValueError("need at least one rank")
    if skew < 0:
        raise ValueError("skew must be non-negative")
    return [1.0 / (rank**skew) for rank in range(1, n + 1)]


class ScheduleBuilder:
    """Generates deterministic deployment streams from a corpus."""

    def __init__(self, corpus: Corpus, *, seed: str = "schedule") -> None:
        self.corpus = corpus
        self.seed = seed

    def popularity_stream(
        self,
        length: int,
        *,
        skew: float = 1.0,
        version_drift: float = 0.15,
    ) -> List[ScheduledDeployment]:
        """A node's day: zipf-popular series, versions drifting forward.

        Each event picks a series by popularity rank and deploys that
        series' *current* version on this node; with probability
        ``version_drift`` the series first advances to its next version
        (a release rolled out), so later events naturally mix repeats of
        hot images with fresh versions.
        """
        if length < 0:
            raise ValueError("length must be non-negative")
        series_names = sorted(self.corpus.by_series)
        weights = zipf_weights(len(series_names), skew)
        rng = rng_for(self.seed, "popularity", str(length), str(skew))
        current_version: Dict[str, int] = {name: 0 for name in series_names}
        seen: set = set()
        schedule: List[ScheduledDeployment] = []
        for position in range(length):
            name = rng.choices(series_names, weights=weights, k=1)[0]
            versions = self.corpus.by_series[name]
            if (
                rng.random() < version_drift
                and current_version[name] < len(versions) - 1
            ):
                current_version[name] += 1
            image = versions[current_version[name]]
            reference = image.reference
            schedule.append(
                ScheduledDeployment(
                    position=position,
                    image=image,
                    is_repeat=reference in seen,
                )
            )
            seen.add(reference)
        return schedule

    def rolling_update_stream(self, series: str) -> List[ScheduledDeployment]:
        """Fig. 10's pattern: every version of one series, in order."""
        versions = self.corpus.by_series.get(series)
        if not versions:
            raise KeyError(f"corpus has no series {series!r}")
        return [
            ScheduledDeployment(position=index, image=image, is_repeat=False)
            for index, image in enumerate(versions)
        ]

    def repeat_rate(self, schedule: Sequence[ScheduledDeployment]) -> float:
        """Fraction of events that redeploy an already-seen reference."""
        if not schedule:
            return 0.0
        return sum(1 for event in schedule if event.is_repeat) / len(schedule)
