"""Deployment schedules: who deploys what, in what order — and when.

The paper measures single deployments and one version sequence (Fig. 10).
Real nodes see a *mix*: popular images recur (Docker Hub popularity is
heavy-tailed — the paper's own dataset is the "top 50 most popular"
series), versions roll forward, and occasionally a brand-new series
appears.  A :class:`ScheduleBuilder` generates such a stream
deterministically so cache-behaviour experiments run on realistic
arrival patterns.

For the FaaS workload (:mod:`repro.net.faas`) the builder also
generates *timed* arrival processes: :meth:`ScheduleBuilder.
invocation_stream` draws Poisson inter-arrival gaps whose rate is
piecewise-constant over seeded :class:`BurstWindow` spikes, assigning
each arrival a Zipf-popular function backed by a corpus image.  The
stream is a pure function of ``(corpus, seed, parameters)`` — the
virtual-time arrival instants are part of the stream, so two runs see
byte-identical invocation timelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.rng import rng_for
from repro.workloads.corpus import Corpus, GeneratedImage


@dataclass(frozen=True)
class ScheduledDeployment:
    """One entry in a node's deployment stream."""

    position: int
    image: GeneratedImage
    #: True when this reference was deployed earlier in the schedule.
    is_repeat: bool


@dataclass(frozen=True)
class BurstWindow:
    """A traffic spike: the arrival rate is multiplied inside the window.

    ``factor=10.0`` models the ISSUE's "10x invocation burst"; windows
    may overlap, in which case their factors multiply.
    """

    start_s: float
    duration_s: float
    factor: float

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError("burst start must be non-negative")
        if self.duration_s <= 0:
            raise ValueError("burst duration must be positive")
        if self.factor <= 0:
            raise ValueError("burst factor must be positive")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def covers(self, at_s: float) -> bool:
        return self.start_s <= at_s < self.end_s


@dataclass(frozen=True)
class ScheduledInvocation:
    """One timed function invocation in a FaaS arrival stream."""

    position: int
    #: Virtual-time arrival instant (seconds from stream start).
    at_s: float
    #: Stable function name (``fn-0017``); many functions can share an
    #: image, mirroring layer reuse across Lambda functions.
    function: str
    image: GeneratedImage
    #: True when this *function* was invoked earlier in the stream (its
    #: node will see a warm start if the container is still resident).
    is_repeat: bool


def zipf_weights(n: int, skew: float = 1.0) -> List[float]:
    """Zipf popularity weights for ranks 1..n."""
    if n <= 0:
        raise ValueError("need at least one rank")
    if skew < 0:
        raise ValueError("skew must be non-negative")
    return [1.0 / (rank**skew) for rank in range(1, n + 1)]


class ScheduleBuilder:
    """Generates deterministic deployment streams from a corpus."""

    def __init__(self, corpus: Corpus, *, seed: str = "schedule") -> None:
        self.corpus = corpus
        self.seed = seed

    def popularity_stream(
        self,
        length: int,
        *,
        skew: float = 1.0,
        version_drift: float = 0.15,
    ) -> List[ScheduledDeployment]:
        """A node's day: zipf-popular series, versions drifting forward.

        Each event picks a series by popularity rank and deploys that
        series' *current* version on this node; with probability
        ``version_drift`` the series first advances to its next version
        (a release rolled out), so later events naturally mix repeats of
        hot images with fresh versions.
        """
        if length < 0:
            raise ValueError("length must be non-negative")
        series_names = sorted(self.corpus.by_series)
        weights = zipf_weights(len(series_names), skew)
        rng = rng_for(self.seed, "popularity", str(length), str(skew))
        current_version: Dict[str, int] = {name: 0 for name in series_names}
        seen: set = set()
        schedule: List[ScheduledDeployment] = []
        for position in range(length):
            name = rng.choices(series_names, weights=weights, k=1)[0]
            versions = self.corpus.by_series[name]
            if (
                rng.random() < version_drift
                and current_version[name] < len(versions) - 1
            ):
                current_version[name] += 1
            image = versions[current_version[name]]
            reference = image.reference
            schedule.append(
                ScheduledDeployment(
                    position=position,
                    image=image,
                    is_repeat=reference in seen,
                )
            )
            seen.add(reference)
        return schedule

    def invocation_stream(
        self,
        *,
        duration_s: float,
        rate_per_s: float,
        functions: int,
        skew: float = 1.0,
        bursts: Sequence[BurstWindow] = (),
    ) -> List[ScheduledInvocation]:
        """A seeded Poisson/bursty FaaS arrival process over the corpus.

        Arrivals are a non-homogeneous Poisson process whose rate is
        ``rate_per_s`` scaled by every :class:`BurstWindow` covering the
        current instant (piecewise-constant thinning-free construction:
        each gap is drawn at the rate in force when it starts, which is
        exact for rates constant between arrivals and deterministic
        either way).  Each arrival invokes one of ``functions`` stable
        function names chosen by Zipf rank, and every function is bound
        to a corpus image round-robin by rank, so hot functions map to a
        small set of hot images.  Raises :class:`ValueError` on an empty
        corpus — a FaaS platform with no images has nothing to invoke.
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if rate_per_s <= 0:
            raise ValueError("rate must be positive")
        if functions < 1:
            raise ValueError("need at least one function")
        images = [
            image
            for name in sorted(self.corpus.by_series)
            for image in self.corpus.by_series[name]
        ]
        if not images:
            raise ValueError("corpus has no images to invoke")
        weights = zipf_weights(functions, skew)
        function_names = [f"fn-{rank:04d}" for rank in range(functions)]
        rng = rng_for(
            self.seed,
            "invocations",
            str(duration_s),
            str(rate_per_s),
            str(functions),
            str(skew),
        )
        seen: set = set()
        stream: List[ScheduledInvocation] = []
        now = 0.0
        while True:
            rate = rate_per_s
            for burst in bursts:
                if burst.covers(now):
                    rate *= burst.factor
            now += rng.expovariate(rate)
            if now >= duration_s:
                break
            rank = rng.choices(range(functions), weights=weights, k=1)[0]
            function = function_names[rank]
            stream.append(
                ScheduledInvocation(
                    position=len(stream),
                    at_s=now,
                    function=function,
                    image=images[rank % len(images)],
                    is_repeat=function in seen,
                )
            )
            seen.add(function)
        return stream

    def rolling_update_stream(self, series: str) -> List[ScheduledDeployment]:
        """Fig. 10's pattern: every version of one series, in order."""
        versions = self.corpus.by_series.get(series)
        if not versions:
            raise KeyError(f"corpus has no series {series!r}")
        return [
            ScheduledDeployment(position=index, image=image, is_repeat=False)
            for index, image in enumerate(versions)
        ]

    def repeat_rate(self, schedule: Sequence[ScheduledDeployment]) -> float:
        """Fraction of events that redeploy an already-seen reference."""
        if not schedule:
            return 0.0
        return sum(1 for event in schedule if event.is_repeat) / len(schedule)
