"""Workloads: the Table I image catalog, synthetic corpus, and tasks.

The paper evaluates on the top-50 most popular Docker Hub image series
(971 images, Table I).  Those images cannot be downloaded here, so
:mod:`repro.workloads.corpus` synthesizes a corpus with the same
*structure*: 50 series in six categories, ~20 versions each, shared
distro bases, per-category version churn, and per-image startup traces.
Generation is fully deterministic in the seed.
"""

from repro.workloads.corpus import Corpus, CorpusBuilder, CorpusConfig
from repro.workloads.series import (
    CATEGORIES,
    CategoryProfile,
    SERIES,
    SeriesSpec,
    series_by_category,
)
from repro.workloads.access import AccessTrace
from repro.workloads.tasks import TaskModel, task_for_category

__all__ = [
    "Corpus",
    "CorpusBuilder",
    "CorpusConfig",
    "CATEGORIES",
    "CategoryProfile",
    "SERIES",
    "SeriesSpec",
    "series_by_category",
    "AccessTrace",
    "TaskModel",
    "task_for_category",
]
