"""Long- and short-running service workloads (Fig. 11).

Long-running: memtier-style closed-loop load against database containers
(Memcached, Redis, 1:10 SET–GET) and ab-style load against web servers
(Nginx, Httpd).  Once a container's working set is resident, requests are
pure CPU + page-cache work — identical under Gear and Docker, which is
the figure's point: lazy retrieval costs nothing at steady state.

Short-running: the custom benchmark of §V-F repeats launch → request →
destroy 100 times; Gear's teardown touches only the inode caches of the
files the container actually used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.common.clock import SimClock
from repro.common.rng import rng_for
from repro.workloads.access import AccessTrace

#: CPU time one service request costs (parse + handle + respond).
REQUEST_CPU_S = 0.00009

#: Page-cache read cost per file touched while serving a request.
WARM_READ_COST_S = 0.000012


@dataclass(frozen=True)
class ServiceSpec:
    """One long-running service workload."""

    name: str
    #: Number of distinct image files in the per-request working set.
    working_set_files: int
    #: Files touched per request (sampled from the working set).
    reads_per_request: int
    #: Fraction of requests that also write (SET in the 1:10 ratio ⇒ 0.09
    #: for the databases; log appends for the web servers).
    write_fraction: float
    write_bytes: int


SERVICES: Tuple[ServiceSpec, ...] = (
    ServiceSpec("redis", working_set_files=24, reads_per_request=2,
                write_fraction=0.09, write_bytes=128),
    ServiceSpec("memcached", working_set_files=16, reads_per_request=2,
                write_fraction=0.09, write_bytes=128),
    ServiceSpec("nginx", working_set_files=40, reads_per_request=3,
                write_fraction=0.02, write_bytes=256),
    ServiceSpec("httpd", working_set_files=40, reads_per_request=3,
                write_fraction=0.02, write_bytes=256),
)


def service_spec(name: str) -> ServiceSpec:
    """Look a service workload up by name (KeyError when absent)."""
    for spec in SERVICES:
        if spec.name == name:
            return spec
    raise KeyError(f"no such service: {name!r}")


@dataclass(frozen=True)
class ServiceRunResult:
    """Throughput measurement for one container."""

    service: str
    requests: int
    duration_s: float

    @property
    def requests_per_second(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.requests / self.duration_s


def run_service(
    clock: SimClock,
    mount,
    trace: AccessTrace,
    spec: ServiceSpec,
    *,
    requests: int = 10_000,
    seed: str = "svc",
) -> ServiceRunResult:
    """Drive a closed-loop request load against a mounted container.

    The working set is the head of the startup trace (the service's
    binaries, libraries, and content roots).  First touches pay whatever
    the mount's fault path charges (Gear downloads, Slacker block pulls,
    nothing for Docker); subsequent reads are warm.
    """
    rng = rng_for(seed, spec.name)
    working_set = [
        path for path, _ in trace.accesses[: spec.working_set_files]
    ]
    if not working_set:
        raise ValueError("trace too short to derive a working set")
    timer = clock.timer()
    for request_index in range(requests):
        for _ in range(spec.reads_per_request):
            path = working_set[rng.randrange(len(working_set))]
            mount.read_blob(path)
            clock.advance(WARM_READ_COST_S, "svc-read")
        if rng.random() < spec.write_fraction:
            mount.write_file(
                f"/var/lib/{spec.name}/w{request_index % 64}.dat",
                b"x" * spec.write_bytes,
                parents=True,
            )
        clock.advance(REQUEST_CPU_S, "svc-cpu")
    return ServiceRunResult(
        service=spec.name,
        requests=requests,
        duration_s=timer.elapsed(),
    )


@dataclass(frozen=True)
class LifecycleResult:
    """Average phase times over repeated launch/request/destroy cycles."""

    system: str
    launch_s: float
    request_s: float
    destroy_s: float

    @property
    def total_s(self) -> float:
        return self.launch_s + self.request_s + self.destroy_s
