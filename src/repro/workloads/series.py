"""The Table I catalog: 50 image series in six categories.

Per-category :class:`CategoryProfile` knobs encode the paper's qualitative
findings (§V-C): Linux Distro and Language series are *base images* whose
updates change most of their data (hence low file-level savings, 20.5%
and 32.8%), while application categories change mostly application data
between versions (savings 46.7%–60.9%).  The numeric values were
calibrated (seed 7) against Table II, Fig. 2, Fig. 7 and Fig. 8; see
EXPERIMENTS.md for paper-vs-measured.

Scaling note: real images hold tens of thousands of mostly-small files;
generating that many Python objects per image would make every benchmark
minutes-long for no fidelity gain.  The corpus therefore uses ~40× fewer
files that are ~40× larger, keeping image *byte* sizes realistic
(hundreds of MB).  Per-file cost constants elsewhere (disk metadata ops,
per-request network overhead) are calibrated against the paper's measured
times at this file-count scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Category display order used across figures.
CATEGORIES: Tuple[str, ...] = (
    "Linux Distro",
    "Language",
    "Database",
    "Web Component",
    "Application Platform",
    "Others",
)


@dataclass(frozen=True)
class CategoryProfile:
    """Generation knobs for one category of image series."""

    #: Number of application-payload files (before corpus scaling).
    app_files: int
    #: Median application file size in bytes (lognormal).
    app_file_median: int
    #: Lognormal sigma for file sizes (heavier tail = bigger files).
    app_sigma: float
    #: Fraction of app files replaced between consecutive versions.
    app_churn: float
    #: Fraction of a changed file's chunks that actually differ (drives
    #: the file-level vs chunk-level dedup gap in Table II).
    chunk_churn: float
    #: Fraction of app files newly added per version.
    add_rate: float
    #: Files and median size of the series' own runtime layer (unused
    #: when the series borrows a Language series' runtime).
    runtime_files: int
    runtime_median: int
    #: Versions between runtime-layer refreshes (1 = every version).
    runtime_refresh: int
    #: Target fraction of runtime+app bytes accessed at startup
    #: (necessary data; remote-image literature reports 6.4%–33%, §II-D).
    necessary_byte_frac: float
    #: Of the necessary bytes, the fraction drawn from version-stable
    #: content (libs/config) rather than per-version binaries.  Higher
    #: values mean more cross-version redundancy in Fig. 2.
    necessary_stable_frac: float
    #: Seconds of task compute during the container's startup task (§V-D
    #: tasks: echo hello, compile-and-run, CRUD, serve a request, …).
    task_compute_s: float


#: Calibrated per-category profiles.
CATEGORY_PROFILES: Dict[str, CategoryProfile] = {
    "Linux Distro": CategoryProfile(
        app_files=150,
        app_file_median=160_000,
        app_sigma=1.7,
        app_churn=0.74,
        chunk_churn=0.90,
        add_rate=0.02,
        runtime_files=0,
        runtime_median=0,
        runtime_refresh=1,
        necessary_byte_frac=0.30,
        necessary_stable_frac=0.35,
        task_compute_s=0.15,
    ),
    "Language": CategoryProfile(
        app_files=30,
        app_file_median=60_000,
        app_sigma=1.6,
        app_churn=0.47,
        chunk_churn=0.90,
        add_rate=0.03,
        runtime_files=260,
        runtime_median=180_000,
        runtime_refresh=1,
        necessary_byte_frac=0.32,
        necessary_stable_frac=0.25,
        task_compute_s=0.9,
    ),
    "Database": CategoryProfile(
        app_files=320,
        app_file_median=150_000,
        app_sigma=1.9,
        app_churn=0.24,
        chunk_churn=0.85,
        add_rate=0.03,
        runtime_files=140,
        runtime_median=120_000,
        runtime_refresh=5,
        necessary_byte_frac=0.38,
        necessary_stable_frac=0.58,
        task_compute_s=1.6,
    ),
    "Web Component": CategoryProfile(
        app_files=240,
        app_file_median=120_000,
        app_sigma=1.8,
        app_churn=0.125,
        chunk_churn=0.85,
        add_rate=0.02,
        runtime_files=120,
        runtime_median=100_000,
        runtime_refresh=5,
        necessary_byte_frac=0.30,
        necessary_stable_frac=0.10,
        task_compute_s=1.0,
    ),
    "Application Platform": CategoryProfile(
        app_files=380,
        app_file_median=130_000,
        app_sigma=1.8,
        app_churn=0.135,
        chunk_churn=0.85,
        add_rate=0.04,
        runtime_files=150,
        runtime_median=110_000,
        runtime_refresh=4,
        necessary_byte_frac=0.34,
        necessary_stable_frac=0.50,
        task_compute_s=2.0,
    ),
    "Others": CategoryProfile(
        app_files=200,
        app_file_median=110_000,
        app_sigma=1.8,
        app_churn=0.20,
        chunk_churn=0.85,
        add_rate=0.03,
        runtime_files=100,
        runtime_median=90_000,
        runtime_refresh=4,
        necessary_byte_frac=0.32,
        necessary_stable_frac=0.15,
        task_compute_s=0.8,
    ),
}


@dataclass(frozen=True)
class SeriesSpec:
    """One image series (a name plus its version count and lineage)."""

    name: str
    category: str
    versions: int
    #: Distro series whose image supplies the base layers ("" for distro
    #: series themselves).
    base_distro: str

    @property
    def profile(self) -> CategoryProfile:
        return CATEGORY_PROFILES[self.category]

    def tags(self) -> List[str]:
        """Version tags, oldest first (``v1`` .. ``vN``)."""
        return [f"v{i + 1}" for i in range(self.versions)]


def _spec(name: str, category: str, base: str, versions: int = 20) -> SeriesSpec:
    return SeriesSpec(name=name, category=category, versions=versions, base_distro=base)


#: Table I, with the paper's version-count exceptions: hello-world,
#: centos, and eclipse-mosquitto "have fewer than 20 versions"; the
#: counts below make the corpus total exactly 971 images.
SERIES: Tuple[SeriesSpec, ...] = (
    # Linux Distro (6) — their own bases.
    _spec("alpine", "Linux Distro", ""),
    _spec("amazonlinux", "Linux Distro", ""),
    _spec("busybox", "Linux Distro", ""),
    _spec("centos", "Linux Distro", "", versions=12),
    _spec("debian", "Linux Distro", ""),
    _spec("ubuntu", "Linux Distro", ""),
    # Language (6).
    _spec("golang", "Language", "debian"),
    _spec("java", "Language", "debian"),
    _spec("openjdk", "Language", "debian"),
    _spec("php", "Language", "debian"),
    _spec("python", "Language", "debian"),
    _spec("ruby", "Language", "debian"),
    # Database (11).
    _spec("cassandra", "Database", "debian"),
    _spec("couchbase", "Database", "ubuntu"),
    _spec("crate", "Database", "centos"),
    _spec("elasticsearch", "Database", "centos"),
    _spec("influxdb", "Database", "debian"),
    _spec("mariadb", "Database", "ubuntu"),
    _spec("memcached", "Database", "debian"),
    _spec("mongo", "Database", "ubuntu"),
    _spec("mysql", "Database", "debian"),
    _spec("postgres", "Database", "debian"),
    _spec("redis", "Database", "debian"),
    # Web Component (11).
    _spec("consul", "Web Component", "alpine"),
    _spec("eclipse-mosquitto", "Web Component", "alpine", versions=16),
    _spec("haproxy", "Web Component", "debian"),
    _spec("httpd", "Web Component", "debian"),
    _spec("kibana", "Web Component", "centos"),
    _spec("kong", "Web Component", "alpine"),
    _spec("nginx", "Web Component", "debian"),
    _spec("node", "Web Component", "debian"),
    _spec("telegraf", "Web Component", "alpine"),
    _spec("tomcat", "Web Component", "debian"),
    _spec("traefik", "Web Component", "alpine"),
    # Application Platform (8).
    _spec("drupal", "Application Platform", "debian"),
    _spec("ghost", "Application Platform", "debian"),
    _spec("jenkins", "Application Platform", "debian"),
    _spec("nextcloud", "Application Platform", "debian"),
    _spec("rabbitmq", "Application Platform", "ubuntu"),
    _spec("solr", "Application Platform", "debian"),
    _spec("sonarqube", "Application Platform", "alpine"),
    _spec("wordpress", "Application Platform", "debian"),
    # Others (8).
    _spec("chronograf", "Others", "alpine"),
    _spec("docker", "Others", "alpine"),
    _spec("gradle", "Others", "debian"),
    _spec("hello-world", "Others", "busybox", versions=3),
    _spec("logstash", "Others", "centos"),
    _spec("maven", "Others", "debian"),
    _spec("registry", "Others", "alpine"),
    _spec("vault", "Others", "alpine"),
)

#: App series that reuse a Language series' runtime payload: the same
#: *file contents* end up inside a layer built independently per series
#: (real images install the same JRE/PHP packages in different builds),
#: so the layers' digests differ while the files dedup — the core gap
#: between layer-level and file-level sharing the paper exploits.
RUNTIME_SOURCE: Dict[str, str] = {
    "tomcat": "java",
    "jenkins": "openjdk",
    "solr": "openjdk",
    "sonarqube": "openjdk",
    "cassandra": "openjdk",
    "elasticsearch": "openjdk",
    "logstash": "openjdk",
    "gradle": "openjdk",
    "maven": "openjdk",
    "crate": "openjdk",
    "drupal": "php",
    "wordpress": "php",
    "nextcloud": "php",
}


def series_by_category() -> Dict[str, List[SeriesSpec]]:
    """Group the catalog by category, preserving catalog order."""
    grouped: Dict[str, List[SeriesSpec]] = {name: [] for name in CATEGORIES}
    for spec in SERIES:
        grouped[spec.category].append(spec)
    return grouped


def get_series(name: str) -> SeriesSpec:
    """Look a series up by name (KeyError when absent)."""
    for spec in SERIES:
        if spec.name == name:
            return spec
    raise KeyError(f"no such series: {name!r}")


def total_image_count() -> int:
    """Total images in the catalog (971, matching §V-A)."""
    return sum(spec.versions for spec in SERIES)
