"""Startup access traces.

An :class:`AccessTrace` lists the files a container touches while
performing its category's deployment task (§V-D): the *necessary data*.
Traces drive the run phase of every deployment experiment — under Docker
the reads are local; under Gear each first read of a stub faults the file
in; under Slacker each read fetches the file's blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class AccessTrace:
    """The ordered set of files one container start reads."""

    reference: str
    #: ``(path, size)`` in access order.
    accesses: Tuple[Tuple[str, int], ...]
    #: Task compute seconds overlapping the reads (CPU work of the
    #: category's startup task).
    compute_s: float

    @property
    def paths(self) -> List[str]:
        return [path for path, _ in self.accesses]

    @property
    def file_count(self) -> int:
        return len(self.accesses)

    @property
    def total_bytes(self) -> int:
        return sum(size for _, size in self.accesses)

    def head(self, n: int) -> "AccessTrace":
        """A truncated trace (used by partial-startup experiments)."""
        return AccessTrace(
            reference=self.reference,
            accesses=self.accesses[:n],
            compute_s=self.compute_s,
        )


def redundancy_ratio(traces: Sequence[AccessTrace]) -> float:
    """Fig. 2's metric: the redundant share of necessary data in a series.

    Sums necessary bytes over all the traces, dedups by file identity
    (here: by (path-independent) content size + path since traces carry
    no fingerprints — callers with access to images should prefer
    :func:`repro.analysis.redundancy.series_redundancy`, which dedups by
    true content fingerprint).
    """
    total = 0
    seen = set()
    unique = 0
    for trace in traces:
        for path, size in trace.accesses:
            total += size
            key = (path, size)
            if key not in seen:
                seen.add(key)
                unique += size
    if total == 0:
        return 0.0
    return 1.0 - unique / total
