"""A content-addressed object store (the MinIO stand-in).

The Gear Registry "runs a file server to store Gear files.  A Gear file
can be found through its name (i.e., the fingerprint of the corresponding
file)" (§III-C), implemented on MinIO with three HTTP interfaces: query,
upload, download (§IV).  :class:`ObjectStore` provides those verbs over an
in-memory bucket, with byte accounting for the storage experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.common.errors import NotFoundError, StorageError


@dataclass(frozen=True)
class StoredObject:
    """One named object with logical and stored (compressed) sizes."""

    key: str
    size: int
    stored_size: int
    #: Monotonic admission number: the store's upload counter at the time
    #: this object landed.  Lets maintenance passes (garbage collection)
    #: order objects against a point in time without wall clocks.
    seq: int = 0


class ObjectStore:
    """A flat key → object bucket with dedup-by-name semantics.

    Keys are content fingerprints, so storing the same key twice is a
    no-op (content-addressed stores never hold two copies).  ``payload``
    objects (arbitrary Python values — blobs, archives) ride along for
    functional correctness; sizes drive the storage accounting.
    """

    def __init__(self, name: str = "objects") -> None:
        self.name = name
        self._objects: Dict[str, Tuple[StoredObject, object]] = {}
        self._upload_seq = 0

    # -- the three registry verbs ---------------------------------------

    def query(self, key: str) -> bool:
        """Existence check (the registry's ``query`` interface)."""
        return key in self._objects

    def upload(
        self, key: str, payload: object, size: int, stored_size: Optional[int] = None
    ) -> bool:
        """Store an object; returns False when the key already existed."""
        if size < 0:
            raise StorageError(f"negative size for object {key!r}")
        if key in self._objects:
            return False
        record = StoredObject(
            key=key,
            size=size,
            stored_size=stored_size if stored_size is not None else size,
            seq=self._upload_seq,
        )
        self._upload_seq += 1
        self._objects[key] = (record, payload)
        return True

    def download(self, key: str) -> Tuple[StoredObject, object]:
        """Fetch an object and its metadata."""
        try:
            return self._objects[key]
        except KeyError:
            raise NotFoundError(f"object not found: {key!r}") from None

    # -- management ------------------------------------------------------

    def delete(self, key: str) -> None:
        if key not in self._objects:
            raise NotFoundError(f"object not found: {key!r}")
        del self._objects[key]

    def keys(self) -> Iterator[str]:
        return iter(sorted(self._objects))

    def stat(self, key: str) -> StoredObject:
        return self.download(key)[0]

    @property
    def upload_epoch(self) -> int:
        """The ``seq`` the *next* successful upload will receive.

        A snapshot of this value marks a point in admission order:
        objects with ``seq >= epoch`` arrived after the snapshot.
        """
        return self._upload_seq

    @property
    def object_count(self) -> int:
        return len(self._objects)

    @property
    def total_size(self) -> int:
        """Sum of logical (uncompressed) object sizes."""
        return sum(record.size for record, _ in self._objects.values())

    @property
    def total_stored_size(self) -> int:
        """Sum of on-disk (possibly compressed) object sizes."""
        return sum(record.stored_size for record, _ in self._objects.values())

    def __contains__(self, key: str) -> bool:
        return key in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def __repr__(self) -> str:
        return (
            f"ObjectStore({self.name!r}, objects={len(self._objects)}, "
            f"stored={self.total_stored_size})"
        )
