"""Disk throughput models.

Figure 6 relates Gear conversion time to image size and disk type: the
average image converts in ~46 s on the testbed's HDD, and "the conversion
time of the node image series can be reduced by 65.7% when using SSDs
(from 105 s to 36 s)".  Conversion is dominated by sequential reads/writes
of layer data plus per-file metadata operations (traversal, inode
creation) — exactly the two cost terms modelled here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.clock import SimClock
from repro.common.units import MiB


@dataclass(frozen=True)
class DiskProfile:
    """Performance profile of a storage device."""

    name: str
    #: Sustained sequential throughput, bytes/s.
    sequential_bps: float
    #: Fixed cost per file operation (open/create/stat), seconds.  On an
    #: HDD this includes seek time; on an SSD it is mostly syscall and
    #: allocation overhead.
    per_file_op_s: float

    def __post_init__(self) -> None:
        if self.sequential_bps <= 0:
            raise ValueError("sequential throughput must be positive")
        if self.per_file_op_s < 0:
            raise ValueError("per-file cost must be non-negative")


#: The testbed's WD Purple 6 TB surveillance HDD: ~110 MiB/s sustained,
#: a few milliseconds of seek per small-file operation.
HDD = DiskProfile(name="hdd", sequential_bps=110 * MiB, per_file_op_s=0.0038)

#: A SATA SSD: ~500 MiB/s sustained, microsecond-scale metadata ops.  The
#: profile is calibrated so node-series conversion drops by ≈66% (Fig. 6).
SSD = DiskProfile(name="ssd", sequential_bps=500 * MiB, per_file_op_s=0.0009)


class Disk:
    """A device consuming virtual time for I/O against a clock."""

    def __init__(self, clock: SimClock, profile: DiskProfile = HDD) -> None:
        self.clock = clock
        self.profile = profile
        self.bytes_read = 0
        self.bytes_written = 0
        self.file_ops = 0

    def read_time(self, num_bytes: int, file_ops: int = 0) -> float:
        """Time to read ``num_bytes`` touching ``file_ops`` files."""
        if num_bytes < 0 or file_ops < 0:
            raise ValueError("byte and op counts must be non-negative")
        return (
            num_bytes / self.profile.sequential_bps
            + file_ops * self.profile.per_file_op_s
        )

    def read(self, num_bytes: int, file_ops: int = 0, label: str = "") -> float:
        duration = self.read_time(num_bytes, file_ops)
        self.clock.advance(duration, label or "disk-read")
        self.bytes_read += num_bytes
        self.file_ops += file_ops
        return duration

    def write(
        self,
        num_bytes: int,
        file_ops: int = 0,
        label: str = "",
        extra_s: float = 0.0,
        deferred: bool = False,
    ) -> float:
        # Writes share the sequential profile; container-image workloads
        # are read-mostly and the asymmetry is irrelevant at this fidelity.
        #
        # ``extra_s`` folds an adjacent CPU stage (e.g. decompression)
        # into the same clock advance, so a decompress-then-store pair
        # costs one scheduler suspension instead of two.
        #
        # ``deferred`` accrues the duration as virtual-time debt on the
        # calling actor instead of advancing immediately; the debt settles
        # in the actor's next advance (or at the next shared-state
        # interaction), saving a scheduler suspension for purely local
        # write sequences.
        duration = self.read_time(num_bytes, file_ops) + extra_s
        if deferred:
            self.clock.advance_deferred(duration, label or "disk-write")
        else:
            self.clock.advance(duration, label or "disk-write")
        self.bytes_written += num_bytes
        self.file_ops += file_ops
        return duration

    def metadata_op(
        self, count: int = 1, label: str = "", deferred: bool = False
    ) -> float:
        """Pure metadata operations (mkdir, link, unlink)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        duration = count * self.profile.per_file_op_s
        if deferred:
            self.clock.advance_deferred(duration, label or "disk-meta")
        else:
            self.clock.advance(duration, label or "disk-meta")
        self.file_ops += count
        return duration

    def __repr__(self) -> str:
        return f"Disk({self.profile.name})"
