"""Storage devices and object stores.

:mod:`repro.storage.disk` models the paper's testbed disks (a WD Purple
HDD; SSD as the Fig. 6 what-if) for the conversion-time experiment.
:mod:`repro.storage.objectstore` is the MinIO stand-in backing the Gear
Registry: a content-addressed bucket with query/upload/download, the three
HTTP interfaces §IV describes.
"""

from repro.storage.disk import Disk, HDD, SSD
from repro.storage.objectstore import ObjectStore

__all__ = ["Disk", "HDD", "SSD", "ObjectStore"]
