"""Corpus-wide deduplication analysis."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

from repro.blob.compressibility import blob_compressed_size, chunk_compressed_size
from repro.docker.image import Image


@dataclass(frozen=True)
class DedupReport:
    """Outcome of one deduplication pass over a corpus.

    ``storage_bytes`` is what the registry would store (unique objects,
    compressed where the scheme compresses); ``logical_bytes`` is the
    same data uncompressed; ``object_count`` is the number of unique
    managed objects — the management-cost axis of Table II.
    """

    granularity: str
    object_count: int
    logical_bytes: int
    storage_bytes: int

    def saving_vs(self, other: "DedupReport") -> float:
        """Fractional storage saving relative to another report."""
        if other.storage_bytes == 0:
            return 0.0
        return 1.0 - self.storage_bytes / other.storage_bytes


def no_dedup(images: Sequence[Image]) -> DedupReport:
    """Baseline: every image stored whole and uncompressed.

    Table II's "No" column is the unpacked corpus (370 GB for 971
    images); objects are whole images.
    """
    total = sum(image.uncompressed_size for image in images)
    return DedupReport(
        granularity="none",
        object_count=len(images),
        logical_bytes=total,
        storage_bytes=total,
    )


def layer_level_dedup(images: Sequence[Image]) -> DedupReport:
    """What a stock Docker registry does: unique compressed layers."""
    logical: Dict[str, int] = {}
    stored: Dict[str, int] = {}
    for image in images:
        for layer in image.layers:
            logical[layer.digest] = layer.uncompressed_size
            stored[layer.digest] = layer.compressed_size
    return DedupReport(
        granularity="layer",
        object_count=len(stored),
        logical_bytes=sum(logical.values()),
        storage_bytes=sum(stored.values()),
    )


def file_level_dedup(images: Sequence[Image]) -> DedupReport:
    """Unique files across all unpacked images, compressed per file.

    This is the granularity Gear adopts (§II-D): near-chunk-level space
    savings at ~16× fewer objects.
    """
    logical: Dict[str, int] = {}
    stored: Dict[str, int] = {}
    for image in images:
        tree = image.flatten()
        for _, node in tree.iter_files():
            assert node.blob is not None
            fingerprint = node.blob.fingerprint
            if fingerprint not in logical:
                logical[fingerprint] = node.blob.size
                stored[fingerprint] = blob_compressed_size(node.blob)
    return DedupReport(
        granularity="file",
        object_count=len(stored),
        logical_bytes=sum(logical.values()),
        storage_bytes=sum(stored.values()),
    )


def chunk_level_dedup(images: Sequence[Image]) -> DedupReport:
    """Unique 128 KB chunks across all unpacked images."""
    logical: Dict[str, int] = {}
    stored: Dict[str, int] = {}
    for image in images:
        tree = image.flatten()
        for _, node in tree.iter_files():
            assert node.blob is not None
            for chunk in node.blob.chunks:
                if chunk.token not in logical:
                    logical[chunk.token] = chunk.size
                    stored[chunk.token] = chunk_compressed_size(chunk)
    return DedupReport(
        granularity="chunk",
        object_count=len(stored),
        logical_bytes=sum(logical.values()),
        storage_bytes=sum(stored.values()),
    )


def full_table(images: Sequence[Image]) -> Dict[str, DedupReport]:
    """All four Table II columns for a corpus."""
    return {
        "none": no_dedup(images),
        "layer": layer_level_dedup(images),
        "file": file_level_dedup(images),
        "chunk": chunk_level_dedup(images),
    }
