"""Deduplication engines at the three granularities of Table II.

The paper motivates file-level management by comparing registry storage
under no dedup, layer-level, file-level, and 128 KB chunk-level dedup
(§II-D, Table II).  Each engine consumes a set of images and reports the
unique-object count and stored byte totals, with and without compression.
"""

from repro.dedup.engines import (
    DedupReport,
    chunk_level_dedup,
    file_level_dedup,
    layer_level_dedup,
    no_dedup,
)

__all__ = [
    "DedupReport",
    "no_dedup",
    "layer_level_dedup",
    "file_level_dedup",
    "chunk_level_dedup",
]
