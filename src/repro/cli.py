"""Command-line interface: ``python -m repro.cli <command>``.

Commands:

* ``demo``     — the quickstart flow (build → convert → lazy deploy);
* ``dedup``    — Table II dedup study on a corpus subset;
* ``storage``  — Fig. 7-style Docker-vs-Gear registry footprints;
* ``deploy``   — deploy one series under docker/gear/slacker at a chosen
  bandwidth and print the pull/run breakdown;
* ``crash``    — crash-consistency sweep: kill a Gear deployment at each
  instrumented crash point, fsck, resume, and check the golden
  resume-equivalence invariant;
* ``chunks``   — chunk-granular big-file sweep: a concurrent reader wave
  pulls ranges of a model file chunk by chunk under clean / chunk-fault /
  mid-chunk-crash / byzantine scenarios; exits nonzero unless every run
  ends byte-identical to a whole-file control with zero poisoned pool
  commits, zero duplicate chunk fetches, and zero re-fetched salvaged
  chunks after crash recovery;
* ``ha``       — highly-available registry sweep: a client fleet deploys
  against a replicated Gear registry tier under healthy / outage /
  brownout / byzantine / overload scenarios and the report carries
  failover, hedging, and load-shedding accounting;
* ``trace``    — telemetry run: deploy under Gear with the span tracer
  attached, print the critical-path phase table, and export a Chrome
  ``trace_event`` JSON (Perfetto-loadable) plus a flat metrics dump;
* ``edge``     — multi-tier edge/P2P sweep: a fleet deploys through
  peer-serving edge sites under quiet / churn / byzantine scenarios;
  exits nonzero on any integrity violation or degraded fallback.
  ``--equivalence`` instead checks a zero-churn single-node edge run is
  byte- and time-identical to the single-tier testbed;
* ``faas``     — serverless spike sweep: a Zipf-popular function fleet
  invoked on a seeded Poisson/bursty schedule, each cold start pulling
  through node pool → shared cache tier → registry; exits nonzero when
  any invocation fails, any container filesystem diverges from the
  fault-free registry-only control, or stampede suppression slips;
* ``perf``     — simulator throughput: events/sec on the canonical
  microflow and deploy-wave scenarios, with cross-mode equivalence and
  double-run determinism gates (exit 1 on drift);
* ``slo``      — readiness-aware SLO gate: fleet, edge, FaaS, and
  overlapped-prefetch scenarios each run with the virtual-time timeline
  sampler attached, declarative objectives (time-to-ready and deploy
  tails, zero degraded fallbacks, zero poisoned commits) are evaluated
  with windowed burn rates over the sampled series, and every scenario
  is run twice — exit 1 on any violated objective or any byte drift
  between the two runs' timeline/SLO JSON;
* ``catalog``  — list the Table I series catalog.

All commands run entirely in-process on the simulated testbed; sizes and
times are virtual but deterministic in ``--seed``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.analysis import compute_dedup_table
from repro.baselines.slacker import SlackerDriver
from repro.bench.deploy import (
    deploy_with_docker,
    deploy_with_gear,
    deploy_with_gear_overlapped,
    deploy_with_gear_resumable,
    deploy_with_slacker,
)
from repro.bench.deploy import container_fs_digest, viewer_fs_digest
from repro.bench.environment import (
    make_edge_testbed,
    make_faas_testbed,
    make_testbed,
    make_timeline_sampler,
    publish_images,
)
from repro.bench.reporting import format_table, gb, pct
from repro.bench.storage import compare_storage
from repro.blob import Blob, DEFAULT_CHUNK_SIZE
from repro.common.clock import SimClock, SimScheduler
from repro.common.errors import ClientCrash
from repro.common.stats import percentile
from repro.common.units import MiB
from repro.gear.bigfile import ChunkFetchStats, ChunkedGearFileViewer
from repro.gear.gearfile import GearFile
from repro.gear.index import GearIndex
from repro.gear.journal import IntentJournal
from repro.gear.pool import SharedFilePool
from repro.gear.recovery import fsck
from repro.gear.registry import GearRegistry
from repro.gear.viewer import GearFileViewer
from repro.net.faults import (
    BrownoutWindow,
    CrashInjector,
    CrashPlan,
    CrashPoint,
    FaultPlan,
    FaultyLink,
    OutageWindow,
    byzantine_plan,
    chunk_plan,
)
from repro.net.link import Link
from repro.net.resilience import RetryPolicy
from repro.net.transport import RpcTransport
from repro.vfs.tree import FileSystemTree
from repro.net.faas import FAAS_TIER_ENDPOINT, FaasPlatform
from repro.net.topology import Cluster, EdgeCluster, HACluster
from repro.gear.prefetch import TraceRecorder
from repro.obs import (
    Objective,
    critical_path,
    dump_json,
    evaluate,
    format_report,
    metrics_snapshot,
    trace_json,
)
from repro.workloads.corpus import CorpusBuilder, CorpusConfig
from repro.workloads.schedule import BurstWindow, ScheduleBuilder
from repro.workloads.series import SERIES


def _corpus(args, series: Optional[tuple] = None):
    return CorpusBuilder(
        CorpusConfig(
            seed=args.seed,
            file_scale=args.scale,
            size_scale=args.scale,
            series_names=series or (tuple(args.series) if args.series else None),
            versions_cap=args.versions,
        )
    ).build()


def cmd_catalog(args) -> int:
    """List the Table I series catalog."""
    rows = [
        (spec.name, spec.category, spec.versions, spec.base_distro or "-")
        for spec in SERIES
    ]
    print(format_table(["Series", "Category", "Versions", "Base"], rows))
    return 0


def _run_demo() -> int:
    from repro import ImageBuilder

    testbed = make_testbed(bandwidth_mbps=100)
    image = (
        ImageBuilder("app", "v1")
        .add_file("/bin/app", b"\x7fELF" * 50_000, mode=0o755)
        .add_file("/etc/app.conf", "mode=demo\n")
        .build()
    )
    testbed.docker_registry.push_image(image)
    index, report = testbed.converter.convert("app:v1")
    print(f"converted app:v1 -> {index.reference} "
          f"({report.gear_files_new} gear files, index {report.index_bytes} B)")
    container, deploy_report = testbed.gear_driver.deploy("app.gear:v1")
    print(f"deployed {container.id}: index pull took {deploy_report.pull_s:.3f} s")
    container.mount.read_bytes("/etc/app.conf")
    print(f"first read faulted {container.mount.fault_stats.remote_fetches} "
          f"file(s); wire bytes: {testbed.link.log.total_bytes}")
    return 0


def cmd_dedup(args) -> int:
    """Table II dedup study on the configured corpus subset."""
    corpus = _corpus(args)
    table = compute_dedup_table(corpus.docker_images())
    print(
        format_table(
            ["Granularity", "Stored (GB)", "Objects", "Reduction"],
            [
                (name, gb(size), f"{objects:,}",
                 pct(1 - size / table.none.storage_bytes))
                for name, size, objects in table.rows()
            ],
        )
    )
    return 0


def cmd_storage(args) -> int:
    """Docker-vs-Gear registry footprint for the configured corpus."""
    corpus = _corpus(args)
    whole = compare_storage("corpus", corpus.images)
    print(
        format_table(
            ["Registry", "Stored (GB)"],
            [
                ("Docker", gb(whole.docker_bytes)),
                ("Gear (files+indexes)", gb(whole.gear_bytes)),
            ],
        )
    )
    print(f"saving: {pct(whole.saving_fraction)}  "
          f"(index share {pct(whole.index_share)})")
    return 0


def _fault_plan(args) -> "Optional[FaultPlan]":
    """Build the fault plan the deploy flags describe (None = clean wire)."""
    outages = ()
    if args.outage_len > 0:
        outages = (
            OutageWindow(start_s=args.outage_start, duration_s=args.outage_len),
        )
    if not (args.drop_rate or args.corrupt_rate or outages):
        return None
    targets = tuple(args.fault_target) if args.fault_target else None
    return FaultPlan(
        seed=f"cli-{args.fault_seed}",
        drop_rate=args.drop_rate,
        corrupt_rate=args.corrupt_rate,
        outages=outages,
        targets=targets,
    )


def _cmd_deploy_fleet(args) -> int:
    """Fleet contention mode: N clients deploy concurrently.

    One image; per-system clusters; clients share the registry uplink
    under fair sharing.  Reports per-client latency percentiles and
    uplink utilization — deterministic, so two runs emit identical JSON
    (the `scripts/check.sh` determinism gate relies on this).
    """
    if args.drop_rate or args.corrupt_rate or args.outage_len:
        print("deploy: fault injection is not supported with --clients > 1",
              file=sys.stderr)
        return 2
    corpus = _corpus(args, series=(args.target,))
    generated = corpus.by_series[args.target][0]
    concurrency = args.concurrency or args.clients
    report = {
        "target": generated.reference,
        "bandwidth_mbps": args.bandwidth,
        "clients": args.clients,
        "concurrency": concurrency,
        "systems": {},
    }
    actions = {
        "docker": lambda node: deploy_with_docker(node.testbed, generated),
        "gear": lambda node: deploy_with_gear(
            node.testbed, generated, clear_cache=True
        ),
    }
    for system, action in actions.items():
        cluster = Cluster(args.clients, bandwidth_mbps=args.bandwidth)
        publish_images(cluster.registry_testbed, [generated], convert=True)
        wave = cluster.deploy_wave(action, concurrency=concurrency)
        report["systems"][system] = wave.as_dict()
    if args.json:
        print(json.dumps(report, sort_keys=True))
        return 0
    print(
        f"fleet deploy of {generated.reference}: {args.clients} clients, "
        f"{concurrency} concurrent @ {args.bandwidth:g} Mbps"
    )
    print(
        format_table(
            ["System", "p50 (s)", "p95 (s)", "p99 (s)", "Makespan (s)",
             "Uplink util", "Egress (MB)"],
            [
                (
                    system,
                    f"{wave['p50_s']:.2f}",
                    f"{wave['p95_s']:.2f}",
                    f"{wave['p99_s']:.2f}",
                    f"{wave['makespan_s']:.2f}",
                    pct(wave["utilization"]),
                    f"{wave['egress_bytes'] / 1e6:.1f}",
                )
                for system, wave in report["systems"].items()
            ],
        )
    )
    return 0


def cmd_deploy(args) -> int:
    """Deploy one series under Docker, Gear, and Slacker."""
    if args.clients > 1 or args.concurrency:
        return _cmd_deploy_fleet(args)
    corpus = _corpus(args, series=(args.target,))
    images = corpus.by_series[args.target]
    plan = _fault_plan(args)
    testbed = make_testbed(bandwidth_mbps=args.bandwidth, fault_plan=plan)
    publish_images(testbed, corpus.images, convert=True)
    testbed.arm_faults()
    slacker = SlackerDriver(testbed.clock, testbed.link)
    rows = []
    for generated in images:
        docker = deploy_with_docker(testbed.fresh_client(), generated)
        gear = deploy_with_gear(testbed, generated)
        slk = deploy_with_slacker(slacker, testbed, generated)
        row = [
            generated.tag,
            f"{docker.pull_s:.2f}/{docker.run_s:.2f}",
            f"{gear.pull_s:.2f}/{gear.run_s:.2f}",
            f"{slk.pull_s:.2f}/{slk.run_s:.2f}",
        ]
        if plan is not None:
            flags = "degraded" if gear.degraded else "-"
            row.append(f"{gear.retries}/{gear.errors}/{flags}")
        rows.append(tuple(row))
    print(f"deploying {args.target} @ {args.bandwidth} Mbps — pull/run (s)")
    headers = ["Version", "Docker", "Gear", "Slacker"]
    if plan is not None:
        headers.append("Gear retry/err/mode")
        print(f"fault plan: drop={plan.drop_rate} corrupt={plan.corrupt_rate} "
              f"outages={[(o.start_s, o.duration_s) for o in plan.outages]} "
              f"targets={plan.targets or 'all'}")
    print(format_table(headers, rows))
    return 0


def cmd_crash(args) -> int:
    """Crash-consistency sweep over every instrumented crash point.

    For each point: deploy on a fresh testbed, let the injected crash
    kill the client, fsck the local store, resume, and compare the
    resumed container fs against an uncrashed control run.  Exit code 1
    when any point violates resume equivalence or re-fetches a file
    recovery had already committed.
    """
    corpus = _corpus(args, series=(args.target,))
    generated = corpus.by_series[args.target][0]

    def run_point(plan):
        testbed = make_testbed(bandwidth_mbps=args.bandwidth)
        publish_images(testbed, [generated], convert=True)
        return deploy_with_gear_resumable(testbed, generated, plan)

    control = run_point(None)
    report = {
        "target": generated.reference,
        "bandwidth_mbps": args.bandwidth,
        "crash_seed": args.crash_seed,
        "control": {
            "total_s": control.result.total_s,
            "network_bytes": control.result.network_bytes,
            "fs_digest": control.fs_digest,
        },
        "points": {},
    }
    ok = True
    for point in CrashPoint:
        plan = CrashPlan(
            point=point,
            seed=f"cli-{args.crash_seed}",
            op_index=args.crash_op if args.crash_op >= 0 else None,
        )
        out = run_point(plan)
        equivalent = out.fs_digest == control.fs_digest
        ok = ok and equivalent and out.refetched_committed == 0
        report["points"][point.value] = {
            "crashed": out.crashed,
            "crash_op": out.crash_op,
            "crash_at_s": out.crash_at_s,
            "crashed_run_s": out.crashed_run_s,
            "crashed_network_bytes": out.crashed_network_bytes,
            "recovery_s": out.recovery_s,
            "recovery": out.recovery.as_dict() if out.recovery else None,
            "committed_before_crash": out.committed_before_crash,
            "refetched_committed": out.refetched_committed,
            "resumed_total_s": out.result.total_s,
            "resumed_network_bytes": out.result.network_bytes,
            "fs_equivalent": equivalent,
        }
    if args.json:
        print(json.dumps(report, sort_keys=True))
        return 0 if ok else 1
    print(
        f"crash sweep of {generated.reference} @ {args.bandwidth:g} Mbps "
        f"(control: {control.result.total_s:.2f} s, "
        f"{control.result.network_bytes} B)"
    )
    print(
        format_table(
            ["Point", "Died (s)", "fsck (s)", "Resume (s)", "Refetched",
             "Equivalent"],
            [
                (
                    point,
                    f"{cell['crash_at_s']:.3f}",
                    f"{cell['recovery_s']:.4f}",
                    f"{cell['resumed_total_s']:.3f}",
                    str(cell["refetched_committed"]),
                    "yes" if cell["fs_equivalent"] else "NO",
                )
                for point, cell in report["points"].items()
            ],
        )
    )
    return 0 if ok else 1


#: The ``chunks`` sweep's scenarios over the chunk-granular read path.
CHUNK_SCENARIOS = ("clean", "chunk-faults", "crash", "byzantine")

#: Paths inside the chunks-sweep image: one big model file (chunked) and
#: one small config (whole-file path, exercised by the same wave).
_CHUNK_BIG_PATH = "/models/weights.bin"
_CHUNK_SMALL_PATH = "/etc/app.conf"


def _chunk_scenario_plan(scenario: str, seed: str):
    """The label-scoped fault plan for one chunks-sweep scenario."""
    if scenario == "chunk-faults":
        # Detected half the time (wire checksum → transport retry) and
        # undetected the rest (slips to chunk verification).
        return chunk_plan(
            seed=f"cli-chunks-{seed}",
            drop_rate=0.04,
            corrupt_rate=0.10,
            corrupt_detect_rate=0.5,
        )
    if scenario == "byzantine":
        # Every corruption slides past the wire checksum: only per-chunk
        # fingerprint verification stands between it and the pool.
        return chunk_plan(
            seed=f"cli-chunks-byz-{seed}",
            corrupt_rate=0.15,
            corrupt_detect_rate=0.0,
        )
    return None


def _chunk_env(args, plan=None):
    """A fresh single-node chunk testbed: registry pre-seeded, no faults
    on the (local) uploads, chunk-labelled faults only on the wire."""
    clock = SimClock()
    if plan is not None:
        link = FaultyLink(clock, plan, bandwidth_mbps=args.bandwidth)
    else:
        link = Link(clock, bandwidth_mbps=args.bandwidth)
    transport = RpcTransport(
        link,
        retry_policy=RetryPolicy(seed=f"cli-chunks-rpc-{args.chunk_seed}"),
    )
    registry = GearRegistry()
    transport.bind(registry.endpoint())
    root = FileSystemTree()
    root.write_file(
        _CHUNK_BIG_PATH,
        Blob.synthetic(f"model-{args.chunk_seed}", args.big_mib * MiB),
        parents=True,
    )
    root.write_file(_CHUNK_SMALL_PATH, b"mode=chunks\n", parents=True)
    index = GearIndex.from_tree("ai.gear", "v1", root)
    for _, node in root.iter_files():
        registry.upload(GearFile.from_blob(node.blob))
    pool = SharedFilePool()
    journal = IntentJournal(clock)
    return clock, link, transport, index, pool, journal


def _chunk_viewer(transport, index, pool, journal, args, *, crash=None):
    return ChunkedGearFileViewer(
        index,
        pool,
        transport=transport,
        journal=journal,
        crash=crash,
        big_file_threshold=1 * MiB,
        chunk_retry=RetryPolicy(seed=f"cli-chunks-verify-{args.chunk_seed}"),
        chunk_stats=ChunkFetchStats(),
    )


def _chunk_wave(clock, viewer, size, clients):
    """``clients`` concurrent readers covering the big file with
    overlapping ranges (each reads its slice plus the neighbour's, so
    single-flight coalescing is exercised on every boundary chunk)."""
    span = max(1, size // clients)

    def reader(client_id):
        start = min(client_id * span, max(0, size - span))
        length = min(size - start, 2 * span)
        viewer.read_range(_CHUNK_BIG_PATH, start, length)
        viewer.read_range(_CHUNK_SMALL_PATH, 0, 4)

    with SimScheduler(clock) as scheduler:
        for client_id in range(clients):
            scheduler.spawn(reader, client_id, name=f"reader-{client_id:03d}")
        scheduler.run()


def _pool_audit(pool) -> int:
    """Committed pool entries whose content does not hash to their name
    (poisoned commits — must be zero under every fault scenario)."""
    bad = 0
    for identity in pool.identities():
        inode = pool.peek(identity)
        assert inode is not None
        if identity.startswith("uid-"):
            continue
        if inode.blob is None or inode.blob.fingerprint != identity:
            bad += 1
    return bad


def cmd_chunks(args) -> int:
    """Chunk-granular read-path sweep (§VII big-file lazy loading).

    A fault-free whole-file control establishes the golden filesystem
    digest; each scenario then runs a ``--clients``-wide concurrent wave
    of overlapping ``read_range`` calls through the chunked viewer and
    must end byte-identical to the control with zero poisoned pool
    commits, zero duplicate chunk fetches, and zero leaked partials.
    The ``crash`` scenario additionally kills the client mid-chunk,
    fscks, resumes, and requires that no salvaged (verified) chunk is
    re-fetched.  Exit code 1 on any violation.
    """
    size = args.big_mib * MiB
    total_chunks = (size + DEFAULT_CHUNK_SIZE - 1) // DEFAULT_CHUNK_SIZE

    # Control: fault-free whole-file viewer, both files read in full.
    clock, link, transport, index, pool, journal = _chunk_env(args)
    control = GearFileViewer(
        index, pool, transport=transport, journal=journal
    )
    control.read_blob(_CHUNK_BIG_PATH)
    control.read_blob(_CHUNK_SMALL_PATH)
    control_digest = viewer_fs_digest(control)
    control_bytes = link.log.total_bytes

    scenarios = args.scenario if args.scenario else list(CHUNK_SCENARIOS)
    report = {
        "bandwidth_mbps": args.bandwidth,
        "clients": args.clients,
        "big_file_bytes": size,
        "total_chunks": total_chunks,
        "chunk_seed": args.chunk_seed,
        "control": {
            "fs_digest": control_digest,
            "network_bytes": control_bytes,
        },
        "scenarios": {},
    }
    ok = True
    for scenario in scenarios:
        plan = _chunk_scenario_plan(scenario, args.chunk_seed)
        clock, link, transport, index, pool, journal = _chunk_env(args, plan)
        viewer = _chunk_viewer(transport, index, pool, journal, args)
        identity = index.entries[_CHUNK_BIG_PATH].identity
        cell = {}

        if scenario == "crash":
            # Phase 1: a sequential deployment dies mid-chunk.
            injector = CrashInjector(
                clock,
                CrashPlan(
                    point=CrashPoint.MID_FETCH,
                    seed=f"cli-chunks-crash-{args.chunk_seed}",
                    op_index=args.crash_op if args.crash_op >= 0 else None,
                    horizon=max(2, total_chunks // 2),
                ),
            )
            crashed_viewer = _chunk_viewer(
                transport, index, pool, journal, args, crash=injector
            )
            try:
                crashed_viewer.read_range(_CHUNK_BIG_PATH, 0, size)
                cell["crashed"] = False
            except ClientCrash:
                cell["crashed"] = True
            # Phase 2: restart + fsck salvages every verified chunk.
            recovery = fsck(pool, [index], [], journal, clock=clock)
            partial = pool.partials.get(identity)
            salvaged = len(partial.present) if partial is not None else 0
            cell["recovery_s"] = recovery.fsck_s
            cell["chunks_salvaged"] = recovery.chunks_salvaged
            cell["torn_chunks_dropped"] = recovery.torn_chunks_dropped
            # Phase 3: the resumed wave must re-fetch only what is missing.
            _chunk_wave(clock, viewer, size, args.clients)
            refetched_verified = viewer.chunk_stats.chunks_fetched - (
                total_chunks - salvaged
            )
            cell["refetched_verified"] = refetched_verified
            ok = ok and cell["crashed"] and refetched_verified == 0
        else:
            _chunk_wave(clock, viewer, size, args.clients)

        stats = viewer.chunk_stats
        digest = viewer_fs_digest(viewer)
        equivalent = digest == control_digest
        poisoned = _pool_audit(pool)
        cell.update(
            fs_digest=digest,
            fs_equivalent=equivalent,
            wave_s=clock.now,
            network_bytes=link.log.total_bytes,
            chunks_fetched=stats.chunks_fetched,
            chunk_bytes_fetched=stats.chunk_bytes_fetched,
            chunk_integrity_failures=stats.chunk_integrity_failures,
            chunk_refetches=stats.chunk_refetches,
            coalesced_waits=stats.coalesced_waits,
            duplicate_chunk_fetches=stats.duplicate_chunk_fetches,
            sequential_fallbacks=stats.sequential_fallbacks,
            parallel_fetches=stats.parallel_fetches,
            promotions=stats.promotions,
            poisoned_commits=poisoned,
            partials_leaked=len(pool.partials),
            promoted=pool.contains(identity),
        )
        ok = ok and equivalent and poisoned == 0
        ok = ok and stats.duplicate_chunk_fetches == 0
        ok = ok and len(pool.partials) == 0 and pool.contains(identity)
        if scenario == "byzantine":
            # The scenario must actually exercise chunk verification.
            ok = ok and stats.chunk_integrity_failures > 0
        report["scenarios"][scenario] = cell
    if args.json:
        print(json.dumps(report, sort_keys=True))
        return 0 if ok else 1
    print(
        f"chunks sweep @ {args.bandwidth:g} Mbps, {args.clients} readers, "
        f"{args.big_mib} MiB model ({total_chunks} chunks; control "
        f"{control_bytes} B)"
    )
    print(
        format_table(
            ["Scenario", "Fetched", "BadChunks", "Coalesced", "Dup",
             "Poisoned", "Equivalent"],
            [
                (
                    name,
                    str(cell["chunks_fetched"]),
                    str(cell["chunk_integrity_failures"]),
                    str(cell["coalesced_waits"]),
                    str(cell["duplicate_chunk_fetches"]),
                    str(cell["poisoned_commits"]),
                    "yes" if cell["fs_equivalent"] else "NO",
                )
                for name, cell in report["scenarios"].items()
            ],
        )
    )
    return 0 if ok else 1


#: The ``ha`` sweep's fault scenarios; replica 0 is always the afflicted
#: one so primary-first selection exercises the failover machinery.
HA_SCENARIOS = ("healthy", "outage", "brownout", "byzantine", "overload")


def _ha_scenario_kwargs(scenario: str, args) -> dict:
    """HACluster construction kwargs for one named scenario."""
    kwargs = {
        "replicas": args.replicas,
        "bandwidth_mbps": args.bandwidth,
        "strategy": args.strategy,
        "hedging": not args.no_hedging,
        "seed": f"cli-ha-{args.ha_seed}",
    }
    if scenario == "outage":
        plan = FaultPlan(
            outages=(OutageWindow(start_s=0.0, duration_s=1e9),),
            seed=f"cli-ha-outage-{args.ha_seed}",
        )
        kwargs["replica_fault_plans"] = [plan]
    elif scenario == "brownout":
        plan = FaultPlan(
            brownouts=(
                BrownoutWindow(start_s=0.0, duration_s=1e9, factor=6.0),
            ),
            seed=f"cli-ha-brownout-{args.ha_seed}",
        )
        kwargs["replica_fault_plans"] = [plan]
    elif scenario == "byzantine":
        kwargs["replica_fault_plans"] = [
            byzantine_plan(seed=f"cli-ha-byzantine-{args.ha_seed}")
        ]
    elif scenario == "overload":
        kwargs["admission_capacity"] = args.admission
    elif scenario != "healthy":
        raise ValueError(f"unknown HA scenario {scenario!r}")
    return kwargs


def cmd_ha(args) -> int:
    """HA registry sweep: fleet deploys under fault scenarios.

    Replica 0 takes the fault in every scenario; the other replicas stay
    healthy, so no deployment may fall back to degraded Docker mode —
    exit code 1 if any does.  Runs are deterministic in the seeds (the
    `scripts/check.sh` HA gate double-runs the JSON output).
    """
    scenarios = args.scenario or list(HA_SCENARIOS)
    unknown = [s for s in scenarios if s not in HA_SCENARIOS]
    if unknown:
        print(f"ha: unknown scenario(s) {unknown}; "
              f"expected {list(HA_SCENARIOS)}", file=sys.stderr)
        return 2
    corpus = _corpus(args, series=(args.target,))
    generated = corpus.by_series[args.target][0]
    concurrency = args.concurrency or args.clients
    report = {
        "target": generated.reference,
        "bandwidth_mbps": args.bandwidth,
        "clients": args.clients,
        "concurrency": concurrency,
        "replicas": args.replicas,
        "strategy": args.strategy,
        "hedging": not args.no_hedging,
        "scenarios": {},
    }
    ok = True
    for scenario in scenarios:
        cluster = HACluster(
            args.clients, **_ha_scenario_kwargs(scenario, args)
        )
        publish_images(cluster.registry_testbed, [generated], convert=True)
        cluster.registry_testbed.arm_faults()
        wave = cluster.deploy_wave(
            lambda node: deploy_with_gear(node.testbed, generated),
            concurrency=concurrency,
        )
        ok = ok and wave.degraded == 0
        report["scenarios"][scenario] = wave.as_dict()
    if args.json:
        print(json.dumps(report, sort_keys=True))
        return 0 if ok else 1
    print(
        f"HA sweep of {generated.reference}: {args.clients} clients, "
        f"{concurrency} concurrent, {args.replicas} replicas "
        f"@ {args.bandwidth:g} Mbps ({args.strategy}, "
        f"hedging {'off' if args.no_hedging else 'on'})"
    )
    print(
        format_table(
            ["Scenario", "p50 (s)", "p99 (s)", "Hedge rate", "Failovers",
             "Sheds", "Trips", "Demoted", "Degraded"],
            [
                (
                    scenario,
                    f"{wave['p50_s']:.2f}",
                    f"{wave['p99_s']:.2f}",
                    pct(wave["hedge_rate"]),
                    str(wave["failovers"]),
                    str(wave["sheds"]),
                    str(wave["breaker_trips"]),
                    str(wave["demotions"]),
                    str(wave["degraded"]),
                )
                for scenario, wave in report["scenarios"].items()
            ],
        )
    )
    return 0 if ok else 1


EDGE_SCENARIOS = ("quiet", "churn", "byzantine", "churn+byzantine")


def _edge_scenario_kwargs(scenario: str, args) -> dict:
    """EdgeCluster construction kwargs for one named scenario."""
    kwargs = {
        "bandwidth_mbps": args.bandwidth,
        "lan_mbps": args.lan_bandwidth,
        "sites": args.sites,
        "gossip_interval_s": args.gossip_interval,
        "seed": f"cli-edge-{args.edge_seed}",
    }
    if "churn" in scenario:
        kwargs["churn_rate_per_s"] = args.churn_rate
        kwargs["churn_horizon_s"] = args.churn_horizon
    if "byzantine" in scenario:
        # One corrupt-serving peer in the first wave batch, so it holds
        # files early and gets selected by later batches.
        kwargs["byzantine"] = (min(1, args.clients - 1),)
    if scenario == "churn+byzantine":
        # The full adversity menu adds one peer crash mid-serve.
        kwargs["crash_node"] = 0
        kwargs["crash_op_index"] = 0
    return kwargs


def _edge_deploy_sequence(testbed, images) -> dict:
    """Deploy each image in order on one client; exact-valued record.

    Used by the ``--equivalence`` gate: every field (virtual times, wire
    bytes, container digests) must match bit-for-bit between the
    single-tier testbed and a peer-less edge node.
    """
    record = {"total_s": [], "network_bytes": [], "fs_digests": []}
    for generated in images:
        result = deploy_with_gear(testbed, generated)
        container = testbed.gear_driver.containers()[-1]
        record["total_s"].append(result.total_s)
        record["network_bytes"].append(result.network_bytes)
        record["fs_digests"].append(container_fs_digest(container))
    return record


def cmd_edge_equivalence(args) -> int:
    """Zero-churn equivalence gate: edge chain == single-tier registry.

    With no peers holding a file and an empty site cache, the edge
    failover chain must degenerate to exactly the single-tier registry
    call — tracker and site-cache bookkeeping charge zero virtual time
    and zero wire bytes.  Deploys a version series on both topologies and
    compares times, bytes, and container digests exactly.
    """
    corpus = _corpus(args, series=(args.target,))
    images = corpus.by_series[args.target]

    control_bed = make_testbed(bandwidth_mbps=args.bandwidth)
    publish_images(control_bed, images, convert=True)
    control = _edge_deploy_sequence(control_bed.fresh_client(), images)

    edge_bed = make_edge_testbed(
        bandwidth_mbps=args.bandwidth,
        lan_mbps=args.lan_bandwidth,
        sites=args.sites,
        gossip_interval_s=args.gossip_interval,
        seed=f"cli-edge-{args.edge_seed}",
    )
    publish_images(edge_bed, images, convert=True)
    edge = _edge_deploy_sequence(edge_bed.edge.client(), images)

    identical = control == edge
    report = {
        "target": args.target,
        "versions": len(images),
        "bandwidth_mbps": args.bandwidth,
        "identical": identical,
        "control": control,
        "edge": edge,
        "edge_stats": edge_bed.edge.stats.as_dict(),
    }
    if args.json:
        print(json.dumps(report, sort_keys=True))
    else:
        verdict = "identical" if identical else "DIVERGED"
        print(
            f"edge equivalence on {args.target} x{len(images)}: {verdict} "
            f"(control p50 {percentile(control['total_s'], 50):.3f}s)"
        )
    return 0 if identical else 1


def cmd_edge(args) -> int:
    """Edge/P2P scenario sweep: fleet deploys through peer-serving sites.

    Every scenario must complete all deploys with zero degraded
    fallbacks and zero integrity violations (no poisoned bytes in any
    pool or site cache); byzantine scenarios must additionally blacklist
    the corrupt peer.  Exit code 1 on any violation.  Runs are
    deterministic in the seeds (the `scripts/check.sh` edge gate
    double-runs the JSON output).
    """
    if args.equivalence:
        return cmd_edge_equivalence(args)
    scenarios = args.scenario or list(EDGE_SCENARIOS)
    unknown = [s for s in scenarios if s not in EDGE_SCENARIOS]
    if unknown:
        print(f"edge: unknown scenario(s) {unknown}; "
              f"expected {list(EDGE_SCENARIOS)}", file=sys.stderr)
        return 2
    corpus = _corpus(args, series=(args.target,))
    generated = corpus.by_series[args.target][0]
    concurrency = args.concurrency or max(1, args.clients // 4)
    report = {
        "target": generated.reference,
        "bandwidth_mbps": args.bandwidth,
        "lan_mbps": args.lan_bandwidth,
        "clients": args.clients,
        "concurrency": concurrency,
        "sites": args.sites,
        "scenarios": {},
    }
    ok = True
    for scenario in scenarios:
        cluster = EdgeCluster(
            args.clients, **_edge_scenario_kwargs(scenario, args)
        )
        publish_images(cluster.registry_testbed, [generated], convert=True)
        wave = cluster.deploy_wave(
            lambda node: deploy_with_gear(node.testbed, generated),
            concurrency=concurrency,
        )
        violations = cluster.fabric.audit_integrity()
        summary = wave.as_dict()
        summary["integrity_violations"] = len(violations)
        scenario_ok = wave.degraded == 0 and not violations
        if "byzantine" in scenario:
            scenario_ok = scenario_ok and wave.blacklists >= 1
        ok = ok and scenario_ok
        report["scenarios"][scenario] = summary
    if args.json:
        print(json.dumps(report, sort_keys=True))
        return 0 if ok else 1
    print(
        f"Edge sweep of {generated.reference}: {args.clients} clients, "
        f"{concurrency} concurrent, {args.sites} site(s), "
        f"WAN {args.bandwidth:g} Mbps / LAN {args.lan_bandwidth:g} Mbps"
    )
    print(
        format_table(
            ["Scenario", "p50 (s)", "p99 (s)", "Peer hits", "Offload",
             "Stale", "Blacklists", "Crashes", "Degraded", "Violations"],
            [
                (
                    scenario,
                    f"{wave['p50_s']:.2f}",
                    f"{wave['p99_s']:.2f}",
                    str(wave["peer_hits"]),
                    pct(wave["offload_rate"]),
                    str(wave["stale_resolutions"]),
                    str(wave["blacklists"]),
                    str(wave["peer_crashes"]),
                    str(wave["degraded"]),
                    str(wave["integrity_violations"]),
                )
                for scenario, wave in report["scenarios"].items()
            ],
        )
    )
    return 0 if ok else 1


FAAS_SCENARIOS = ("steady", "spike", "spike+outage", "spike+byzantine")


def _faas_bursts(scenario: str, args) -> tuple:
    if "spike" not in scenario:
        return ()
    return (BurstWindow(args.spike_start, args.spike_len, args.spike_factor),)


def _faas_testbed_kwargs(scenario: str, args) -> dict:
    """make_faas_testbed kwargs for one named scenario."""
    kwargs = {
        "bandwidth_mbps": args.bandwidth,
        "tier_mbps": args.tier_bandwidth,
        "tier_capacity_bytes": args.tier_capacity or None,
        "tier_ttl_s": args.tier_ttl or None,
        "tier_admission_capacity": args.admission or None,
        "ha_replicas": args.replicas,
        "seed": f"cli-faas-{args.faas_seed}",
    }
    if "outage" in scenario:
        # Mid-spike shared-tier outage: the window sits inside the burst,
        # scoped to the tier pseudo-endpoint so the registry stays up.
        kwargs["tier_fault_plan"] = FaultPlan(
            seed=f"cli-faas-{args.faas_seed}",
            outages=(OutageWindow(
                start_s=args.outage_start, duration_s=args.outage_len
            ),),
            targets=(FAAS_TIER_ENDPOINT,),
        )
    return kwargs


def _faas_control_digests(args, corpus) -> dict:
    """Fault-free registry-only control: reference → container fs digest.

    The byte-identical acceptance bar: every cold start in every
    scenario must produce exactly these filesystems, no matter which
    tier served the bytes.
    """
    control_bed = make_testbed(bandwidth_mbps=args.bandwidth)
    publish_images(control_bed, corpus.images, convert=True)
    client = control_bed.fresh_client()
    digests = {}
    for generated in corpus.images:
        deploy_with_gear(client, generated)
        container = client.gear_driver.containers()[-1]
        digests[generated.reference] = container_fs_digest(container)
    return digests


def cmd_faas(args) -> int:
    """Serverless invocation-spike sweep over the three-tier cache chain.

    Every scenario must complete every invocation (zero failures, zero
    degraded fallbacks), produce container filesystems byte-identical to
    the fault-free registry-only control, keep stampede suppression
    intact (zero duplicate upstream fetches), and leave no poisoned
    bytes in any pool or the tier cache; byzantine scenarios must
    additionally demote the tier.  Exit code 1 on any violation.  Runs
    are deterministic in the seeds (the ``scripts/check.sh`` faas gate
    double-runs the JSON output).
    """
    scenarios = args.scenario or list(FAAS_SCENARIOS)
    unknown = [s for s in scenarios if s not in FAAS_SCENARIOS]
    if unknown:
        print(f"faas: unknown scenario(s) {unknown}; "
              f"expected {list(FAAS_SCENARIOS)}", file=sys.stderr)
        return 2
    corpus = _corpus(args)
    control = _faas_control_digests(args, corpus)
    report = {
        "images": len(corpus.images),
        "functions": args.functions,
        "nodes": args.nodes,
        "duration_s": args.duration,
        "rate_per_s": args.rate,
        "bandwidth_mbps": args.bandwidth,
        "tier_mbps": args.tier_bandwidth,
        "replicas": args.replicas,
        "scenarios": {},
    }
    ok = True
    for scenario in scenarios:
        bed = make_faas_testbed(**_faas_testbed_kwargs(scenario, args))
        publish_images(bed, corpus.images, convert=True)
        if "byzantine" in scenario:
            bed.faas.tier.byzantine = True
        platform = FaasPlatform(
            bed,
            bed.faas,
            nodes=args.nodes,
            keep_warm_s=args.keep_warm or None,
            seed=f"cli-faas-{args.faas_seed}",
        )
        stream = ScheduleBuilder(
            corpus, seed=f"cli-faas-{args.faas_seed}"
        ).invocation_stream(
            duration_s=args.duration,
            rate_per_s=args.rate,
            functions=args.functions,
            skew=args.skew,
            bursts=_faas_bursts(scenario, args),
        )
        run = platform.run(stream)
        violations = bed.faas.audit_integrity()
        mismatches = sum(
            1
            for reference, digest in run.fs_digests.items()
            if control.get(reference) != digest
        )
        summary = run.as_dict()
        del summary["fs_digests"]  # bulky; the control check distills it
        summary["integrity_violations"] = len(violations)
        summary["control_mismatches"] = mismatches
        scenario_ok = (
            run.failures == 0
            and run.degraded == 0
            and run.digest_conflicts == 0
            and mismatches == 0
            and summary["fabric"]["duplicate_upstream_fetches"] == 0
            and not violations
        )
        if "byzantine" in scenario:
            scenario_ok = scenario_ok and summary["fabric"]["demotions"] >= 1
        summary["ok"] = scenario_ok
        ok = ok and scenario_ok
        report["scenarios"][scenario] = summary
    if args.json:
        print(json.dumps(report, sort_keys=True))
        return 0 if ok else 1
    print(
        f"FaaS sweep: {args.functions} functions over {len(corpus.images)} "
        f"images, {args.nodes} nodes, {args.rate:g}/s for {args.duration:g}s "
        f"(spike x{args.spike_factor:g} at {args.spike_start:g}s)"
    )
    print(
        format_table(
            ["Scenario", "Cold", "Warm", "p50 cold (s)", "p99.9 cold (s)",
             "Sheds", "Coalesced", "Fallbacks", "Saved MB", "Fail", "OK"],
            [
                (
                    scenario,
                    str(s["cold_starts"]),
                    str(s["warm_starts"]),
                    f"{s['cold_p50_s']:.2f}",
                    f"{s['cold_p999_s']:.2f}",
                    str(s["fabric"]["tier_sheds"]),
                    str(s["fabric"]["tier_coalesced"]),
                    str(s["fabric"]["registry_fallbacks"]),
                    f"{s['fabric']['egress_saved_bytes'] / 1e6:.2f}",
                    str(s["failures"]),
                    "yes" if s["ok"] else "NO",
                )
                for scenario, s in report["scenarios"].items()
            ],
        )
    )
    return 0 if ok else 1


SLO_SCENARIOS = ("fleet", "edge", "faas", "prefetch")

#: Declarative objectives per scenario.  Latency thresholds are generous
#: — this gate certifies the readiness plumbing, burn-rate evaluation,
#: and determinism, not paper numbers — but ``degraded`` and
#: ``poisoned_commits`` are exact zeros: no objective may be met by
#: silently falling back or committing bad bytes.
SLO_OBJECTIVES = {
    "fleet": (
        Objective("ready_p99_s", 300.0, series="ready_s",
                  window_s=5.0, budget=0.5),
        Objective("deploy_p99_s", 400.0),
        Objective("degraded", 0.0, comparator="=="),
        Objective("poisoned_commits", 0.0, comparator="=="),
    ),
    "edge": (
        Objective("ready_p99_s", 300.0, series="ready_s",
                  window_s=5.0, budget=0.5),
        Objective("deploy_p99_s", 400.0),
        Objective("degraded", 0.0, comparator="=="),
        Objective("poisoned_commits", 0.0, comparator="=="),
    ),
    "faas": (
        Objective("ready_p99_s", 120.0, series="cold_ready_s",
                  window_s=2.0, budget=0.5),
        Objective("deploy_p99_s", 180.0),
        Objective("degraded", 0.0, comparator="=="),
        Objective("poisoned_commits", 0.0, comparator="=="),
    ),
    "prefetch": (
        Objective("ready_over_pull", 1.0),
        Objective("degraded", 0.0, comparator="=="),
        Objective("poisoned_commits", 0.0, comparator="=="),
    ),
}


def _slo_fleet(args, seed: str):
    """Fleet wave under Gear with the timeline sampler attached."""
    corpus = _corpus(args, series=(args.target,))
    generated = corpus.by_series[args.target][0]
    cluster = Cluster(args.clients, bandwidth_mbps=args.bandwidth)
    publish_images(cluster.registry_testbed, [generated], convert=True)
    sampler = make_timeline_sampler(
        cluster.registry_testbed, period_s=0.5, seed=f"{seed}-fleet"
    )
    degraded_total = [0]

    def action(node):
        result = deploy_with_gear(node.testbed, generated, clear_cache=True)
        if result.degraded:
            degraded_total[0] += 1
        return result

    wave = cluster.deploy_wave(action, sampler=sampler)
    poisoned = sum(
        _pool_audit(node.testbed.gear_driver.pool) for node in cluster.nodes
    )
    observed = {
        "ready_p99_s": wave.ready_p99_s,
        "deploy_p99_s": wave.p99_s,
        "degraded": float(degraded_total[0]),
        "poisoned_commits": float(poisoned),
    }
    return observed, sampler, {"wave": wave.as_dict()}


def _slo_edge(args, seed: str):
    """Edge wave: peer-served Gear deploys, LAN probes sampled."""
    corpus = _corpus(args, series=(args.target,))
    generated = corpus.by_series[args.target][0]
    cluster = EdgeCluster(
        args.clients,
        bandwidth_mbps=args.bandwidth,
        sites=2,
        seed=f"{seed}-edge",
    )
    publish_images(cluster.registry_testbed, [generated], convert=True)
    sampler = make_timeline_sampler(
        cluster.registry_testbed, period_s=0.5, seed=f"{seed}-edge"
    )
    wave = cluster.deploy_wave(
        lambda node: deploy_with_gear(node.testbed, generated, clear_cache=True),
        sampler=sampler,
    )
    violations = cluster.fabric.audit_integrity()
    observed = {
        "ready_p99_s": wave.ready_p99_s,
        "deploy_p99_s": wave.p99_s,
        "degraded": float(wave.degraded),
        "poisoned_commits": float(len(violations)),
    }
    return observed, sampler, {"wave": wave.as_dict()}


def _slo_faas(args, seed: str):
    """FaaS invocation stream with cold-start readiness sampled."""
    corpus = _corpus(args)
    bed = make_faas_testbed(
        bandwidth_mbps=args.bandwidth, seed=f"{seed}-faas"
    )
    publish_images(bed, corpus.images, convert=True)
    platform = FaasPlatform(bed, bed.faas, nodes=2, seed=f"{seed}-faas")
    stream = ScheduleBuilder(corpus, seed=f"{seed}-faas").invocation_stream(
        duration_s=6.0, rate_per_s=3.0, functions=10, skew=1.1
    )
    sampler = make_timeline_sampler(bed, period_s=0.5, seed=f"{seed}-faas")
    run = platform.run(stream, sampler=sampler)
    violations = bed.faas.audit_integrity()
    observed = {
        "ready_p99_s": run.cold_ready_p99_s,
        "deploy_p99_s": run.cold_p99_s,
        "degraded": float(run.degraded + run.failures),
        "poisoned_commits": float(len(violations)),
    }
    summary = run.as_dict()
    del summary["fs_digests"]  # bulky; integrity audit distills it
    return observed, sampler, {"run": summary}


def _slo_prefetch(args, seed: str):
    """Overlapped prefetch judged against readiness, not pull-complete.

    The SOCI-style claim: with a recorded startup profile streaming in
    while the task runs, the service is *ready* before a full
    docker-style image pull would even complete.  ``ready_over_pull``
    is overlapped-Gear time-to-ready over Docker pull-complete time —
    the objective holds at ``<= 1.0`` and the scenario additionally
    requires a strict win.
    """
    corpus = _corpus(args, series=(args.target,))
    generated = corpus.by_series[args.target][0]
    # Slow wire so fetch latency dominates and the overlap is visible:
    # the full pull scales with the whole image while readiness scales
    # with the startup read set, so the win widens as the wire slows
    # (at 60 Mbps the race is a coin flip; at 30 Mbps it is decisive).
    testbed = make_testbed(bandwidth_mbps=min(args.bandwidth, 30.0))
    publish_images(testbed, corpus.images, convert=True)
    name, _, tag = generated.reference.partition(":")
    gear_ref = f"{name}.gear:{tag}"
    warm = testbed.fresh_client()
    deploy_with_gear(warm, generated)
    recorder = TraceRecorder()
    recorder.record(gear_ref, warm.gear_driver.containers()[-1].mount)
    docker = deploy_with_docker(testbed.fresh_client(), generated)
    client = testbed.fresh_client()
    overlapped = deploy_with_gear_overlapped(
        client, generated, recorder, clear_cache=True
    )
    observed = {
        "ready_over_pull": overlapped.ready_s / docker.pull_s,
        "degraded": float(overlapped.degraded),
        "poisoned_commits": float(_pool_audit(client.gear_driver.pool)),
    }
    extras = {
        "prefetch": {
            "overlapped_ready_s": overlapped.ready_s,
            "overlapped_total_s": overlapped.total_s,
            "docker_pull_s": docker.pull_s,
            "docker_total_s": docker.total_s,
            "strict_win": overlapped.ready_s < docker.pull_s,
        }
    }
    return observed, None, extras


_SLO_RUNNERS = {
    "fleet": _slo_fleet,
    "edge": _slo_edge,
    "faas": _slo_faas,
    "prefetch": _slo_prefetch,
}


def _slo_scenario_payload(scenario: str, args, seed: str):
    """One scenario run → (JSON-ready payload, objectives-met flag)."""
    observed, sampler, extras = _SLO_RUNNERS[scenario](args, seed)
    report = evaluate(SLO_OBJECTIVES[scenario], observed, sampler=sampler)
    payload = {"observed": observed, "slo": report.as_dict()}
    if sampler is not None:
        payload["timeline"] = sampler.as_dict()
    payload.update(extras)
    ok = report.ok
    if scenario == "prefetch":
        ok = ok and extras["prefetch"]["strict_win"]
    return payload, ok


def cmd_slo(args) -> int:
    """Readiness-aware SLO gate across the wave scenario matrix.

    Every scenario runs *twice* with identical seeds; the two payloads
    (observed values, burn rates, the full sampled timeline) must be
    byte-identical under canonical JSON — a drift means the sampler or
    the readiness plumbing perturbed the simulation.  Exit code 1 on
    any violated objective or any nondeterministic replay.
    """
    scenarios = args.scenario or list(SLO_SCENARIOS)
    unknown = [s for s in scenarios if s not in SLO_SCENARIOS]
    if unknown:
        print(f"slo: unknown scenario(s) {unknown}; "
              f"expected {list(SLO_SCENARIOS)}", file=sys.stderr)
        return 2
    seed = f"cli-slo-{args.slo_seed}"
    report = {
        "clients": args.clients,
        "bandwidth_mbps": args.bandwidth,
        "slo_seed": args.slo_seed,
        "scenarios": {},
    }
    ok = True
    for scenario in scenarios:
        payload, objectives_ok = _slo_scenario_payload(scenario, args, seed)
        replay, _ = _slo_scenario_payload(scenario, args, seed)
        deterministic = dump_json(payload) == dump_json(replay)
        payload["deterministic"] = deterministic
        payload["ok"] = objectives_ok and deterministic
        ok = ok and payload["ok"]
        report["scenarios"][scenario] = payload
    if args.json:
        print(json.dumps(report, sort_keys=True))
        return 0 if ok else 1
    print(
        f"SLO gate: {args.clients} clients @ {args.bandwidth:g} Mbps "
        f"(seed {args.slo_seed}); every scenario double-run"
    )
    rows = []
    for scenario, payload in report["scenarios"].items():
        slo = payload["slo"]
        burn = max(
            (o["burn_rate"] for o in slo["objectives"]), default=0.0
        )
        ready = payload["observed"].get("ready_p99_s")
        rows.append((
            scenario,
            "-" if ready is None else f"{ready:.2f}",
            f"{burn:.2f}",
            ",".join(slo["violated"]) or "-",
            "yes" if payload["deterministic"] else "NO",
            "yes" if payload["ok"] else "NO",
        ))
    print(format_table(
        ["Scenario", "Ready p99 (s)", "Max burn", "Violated",
         "Deterministic", "OK"],
        rows,
    ))
    return 0 if ok else 1


#: Coverage floor for the single-deploy trace gate: the span tree must
#: account for at least this fraction of the deploy makespan.
TRACE_COVERAGE_FLOOR = 0.95
#: Float tolerance when checking phase totals against the deploy total.
TRACE_SUM_TOLERANCE = 1e-6


def cmd_trace(args) -> int:
    """Telemetry run: trace a Gear deployment and analyse its makespan.

    Single-client mode (the default) deploys one image with the span
    tracer attached and gates on instrumentation quality: the span tree
    must cover >= 95% of the deploy makespan and the per-phase exclusive
    times must sum to the deploy total within float tolerance (exit 1
    otherwise).  ``--clients N`` runs a concurrent fleet wave instead;
    the client spans live on spawned tracks there, so the wave root's
    attribution is reported but not gated.

    ``--out-dir`` writes ``trace.json`` (Chrome ``trace_event``, loads
    in Perfetto / chrome://tracing) and ``metrics.json`` (the flat
    registry snapshot).  Both files are canonical JSON: two runs with
    the same seed are byte-identical (the `scripts/check.sh`
    trace-determinism gate diffs them).
    """
    corpus = _corpus(args, series=(args.target,))
    generated = corpus.by_series[args.target][0]
    wave_mode = args.clients > 1
    if wave_mode:
        cluster = Cluster(args.clients, bandwidth_mbps=args.bandwidth)
        testbed = cluster.registry_testbed
        publish_images(testbed, [generated], convert=True)
        tracer = testbed.attach_tracer()
        concurrency = args.concurrency or args.clients
        cluster.deploy_wave(
            lambda node: deploy_with_gear(node.testbed, generated),
            concurrency=concurrency,
        )
        root = "wave"
        deploy_total_s = None
    else:
        testbed = make_testbed(bandwidth_mbps=args.bandwidth)
        publish_images(testbed, [generated], convert=True)
        tracer = testbed.attach_tracer()
        result = deploy_with_gear(testbed, generated)
        root = "deploy"
        deploy_total_s = result.total_s

    path = critical_path(tracer, root=root)
    if path is None:
        print(f"trace: no finished {root!r} span recorded", file=sys.stderr)
        return 1

    ok = True
    problems = []
    if not wave_mode:
        if path.coverage < TRACE_COVERAGE_FLOOR:
            ok = False
            problems.append(
                f"coverage {path.coverage:.3f} < {TRACE_COVERAGE_FLOOR}"
            )
        if abs(path.phase_sum() - path.total_s) > TRACE_SUM_TOLERANCE:
            ok = False
            problems.append(
                f"phase sum {path.phase_sum():.9f} != total {path.total_s:.9f}"
            )
        if (
            deploy_total_s is not None
            and abs(path.total_s - deploy_total_s) > TRACE_SUM_TOLERANCE
        ):
            ok = False
            problems.append(
                f"span total {path.total_s:.9f} != "
                f"deploy total {deploy_total_s:.9f}"
            )

    written = {}
    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
        trace_path = os.path.join(args.out_dir, "trace.json")
        with open(trace_path, "w") as handle:
            handle.write(trace_json(tracer))
        written["trace"] = trace_path
        if testbed.metrics is not None:
            metrics_path = os.path.join(args.out_dir, "metrics.json")
            with open(metrics_path, "w") as handle:
                handle.write(dump_json(metrics_snapshot(testbed.metrics)))
            written["metrics"] = metrics_path

    if args.json:
        report = {
            "target": generated.reference,
            "bandwidth_mbps": args.bandwidth,
            "mode": "wave" if wave_mode else "single",
            "root": path.root_name,
            "total_s": path.total_s,
            "coverage": path.coverage,
            "phases": path.phases,
            "phase_counts": path.phase_counts,
            "phase_sum_s": path.phase_sum(),
            "concurrent_s": path.concurrent_s,
            "chain": [
                {"name": s.name, "duration_s": s.duration_s, "share": s.share}
                for s in path.chain
            ],
            "spans": len(tracer.finished_spans()),
            "ok": ok,
        }
        print(json.dumps(report, sort_keys=True))
    else:
        print(
            f"traced gear deploy of {generated.reference} "
            f"@ {args.bandwidth:g} Mbps "
            f"({len(tracer.finished_spans())} spans)"
        )
        print(format_report(path))
        for key, dest in written.items():
            print(f"wrote {key}: {dest}")
        for problem in problems:
            print(f"trace gate FAILED: {problem}", file=sys.stderr)
    return 0 if ok else 1


def cmd_perf(args) -> int:
    """Simulator throughput check: microflows + a small deploy wave.

    Runs the canonical speed scenarios from :mod:`repro.bench.speed`,
    prints the events/sec table, and gates on two invariants (exit 1 on
    either failing):

    * **cross-mode equivalence** — generator and thread execution of the
      microflows scenario must report identical deterministic fields
      (events, virtual seconds, simulated bytes);
    * **double-run determinism** — re-running each scenario must replay
      those fields byte-identically.

    ``--json`` emits only the deterministic fields (plus the recorded
    pre-refactor baseline), so the output is artifact-stable; wall-clock
    throughput goes to the human-readable table alone.
    """
    from repro.bench.speed import (
        BASELINE_MICROFLOW_EVENTS_PER_S,
        run_deploy_wave,
        run_microflows,
    )

    reports = {
        ("microflows", mode): run_microflows(args.clients, args.transfers,
                                             mode=mode,
                                             bandwidth_mbps=args.bandwidth)
        for mode in ("thread", "gen")
    }
    reports[("deploy_wave", "thread")] = run_deploy_wave(
        args.wave_clients, scale=args.scale, seed=args.seed
    )

    ok = True
    problems = []
    gen = reports[("microflows", "gen")].deterministic()
    thread = reports[("microflows", "thread")].deterministic()
    gen.pop("mode"), thread.pop("mode")
    if gen != thread:
        ok = False
        problems.append(f"cross-mode drift: gen={gen} thread={thread}")
    for (scenario, mode), report in list(reports.items()):
        if scenario == "microflows":
            again = run_microflows(args.clients, args.transfers, mode=mode,
                                   bandwidth_mbps=args.bandwidth)
        else:
            again = run_deploy_wave(args.wave_clients, scale=args.scale,
                                    seed=args.seed)
        if again.deterministic() != report.deterministic():
            ok = False
            problems.append(
                f"double-run drift in {scenario}/{mode}: "
                f"{again.deterministic()} != {report.deterministic()}"
            )

    if args.json:
        payload = {
            "scenarios": [
                report.deterministic() for report in reports.values()
            ],
            "baseline_microflow_events_per_s": BASELINE_MICROFLOW_EVENTS_PER_S,
            "ok": ok,
        }
        print(json.dumps(payload, sort_keys=True))
    else:
        print(
            f"simulator throughput — microflows {args.clients}x"
            f"{args.transfers} @ {args.bandwidth:g} Mbps, "
            f"deploy wave {args.wave_clients} clients"
        )
        print(
            format_table(
                ["Scenario", "Mode", "Events", "Virtual (s)", "Sim MB",
                 "Wall (s)", "Events/s"],
                [
                    (
                        scenario,
                        mode,
                        str(r.events),
                        f"{r.virtual_s:.3f}",
                        f"{r.simulated_bytes / 1e6:.1f}",
                        f"{r.wall_s:.3f}",
                        f"{r.events_per_s:,.0f}",
                    )
                    for (scenario, mode), r in reports.items()
                ],
            )
        )
        speedup = (
            reports[("microflows", "gen")].events_per_s
            / BASELINE_MICROFLOW_EVENTS_PER_S
        )
        print(
            f"gen-mode microflows: {speedup:.1f}x the recorded "
            f"pre-refactor baseline "
            f"({BASELINE_MICROFLOW_EVENTS_PER_S:,.0f} ev/s)"
        )
        for problem in problems:
            print(f"perf gate FAILED: {problem}", file=sys.stderr)
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (shared options on every command)."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", type=int, default=7)
    common.add_argument(
        "--scale", type=float, default=0.4,
        help="file-count/size scale of the synthetic corpus",
    )
    common.add_argument("--versions", type=int, default=6,
                        help="versions per series")
    common.add_argument(
        "--series", nargs="*", default=["nginx", "tomcat"],
        help="series to generate (default: nginx tomcat)",
    )
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Gear (ICDCS 2021) reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("catalog", parents=[common],
                   help="list the Table I series catalog")
    sub.add_parser("demo", parents=[common],
                   help="build -> convert -> lazy deploy walkthrough")
    sub.add_parser("dedup", parents=[common], help="Table II dedup study")
    sub.add_parser("storage", parents=[common],
                   help="Docker vs Gear registry footprint")
    deploy = sub.add_parser("deploy", parents=[common],
                            help="deploy a series under all systems")
    deploy.add_argument("--target", default="nginx")
    deploy.add_argument("--bandwidth", type=float, default=100.0)
    fleet = deploy.add_argument_group(
        "fleet contention",
        "deploy one image from N clients at once; transfers fair-share "
        "the registry uplink and the report carries latency percentiles",
    )
    fleet.add_argument("--clients", type=int, default=1,
                       help="number of client nodes (1 = classic mode)")
    fleet.add_argument("--concurrency", type=int, default=0,
                       help="clients deploying simultaneously per wave "
                            "(default: all of them)")
    fleet.add_argument("--json", action="store_true",
                       help="emit the fleet report as one JSON line")
    faults = deploy.add_argument_group(
        "fault injection",
        "deterministic wire faults (off by default; any flag enables "
        "the FaultyLink + default RetryPolicy)",
    )
    faults.add_argument("--drop-rate", type=float, default=0.0,
                        help="probability a transfer is lost (timeout)")
    faults.add_argument("--corrupt-rate", type=float, default=0.0,
                        help="probability a response payload is corrupted")
    faults.add_argument("--outage-start", type=float, default=0.0,
                        help="outage start, seconds after deployment begins")
    faults.add_argument("--outage-len", type=float, default=0.0,
                        help="outage duration in seconds (0 = no outage)")
    faults.add_argument("--fault-seed", default="0",
                        help="seed token for the fault decision stream")
    faults.add_argument(
        "--fault-target", nargs="*", default=["gear-registry"],
        help="endpoint names the plan applies to (empty = all traffic)",
    )
    crash = sub.add_parser(
        "crash", parents=[common],
        help="crash/fsck/resume sweep over every crash point",
    )
    crash.add_argument("--target", default="nginx")
    crash.add_argument("--bandwidth", type=float, default=100.0)
    crash.add_argument("--crash-seed", default="0",
                       help="seed token for the crash-instant draw")
    crash.add_argument(
        "--crash-op", type=int, default=-1,
        help="explicit occurrence index of the crash point "
             "(-1 = deterministic seeded draw)",
    )
    crash.add_argument("--json", action="store_true",
                       help="emit the sweep report as one JSON line")
    chunks = sub.add_parser(
        "chunks", parents=[common],
        help="chunk-granular big-file read sweep under fault scenarios",
    )
    chunks.add_argument("--bandwidth", type=float, default=904.0)
    chunks.add_argument("--clients", type=int, default=32,
                        help="concurrent range readers in the wave")
    chunks.add_argument("--big-mib", type=int, default=8,
                        help="model-file size in MiB (128 KiB chunks)")
    chunks.add_argument(
        "--scenario", nargs="*", default=None,
        help=f"scenarios to run (default: all of {list(CHUNK_SCENARIOS)})",
    )
    chunks.add_argument("--chunk-seed", default="7",
                        help="seed token for the fault, retry-jitter, and "
                             "crash streams")
    chunks.add_argument(
        "--crash-op", type=int, default=-1,
        help="explicit chunk index for the mid-fetch crash "
             "(-1 = deterministic seeded draw)",
    )
    chunks.add_argument("--json", action="store_true",
                        help="emit the sweep report as one JSON line")
    ha = sub.add_parser(
        "ha", parents=[common],
        help="highly-available registry sweep under fault scenarios",
    )
    ha.add_argument("--target", default="nginx")
    ha.add_argument("--bandwidth", type=float, default=904.0)
    ha.add_argument("--clients", type=int, default=8,
                    help="number of client nodes in the fleet")
    ha.add_argument("--concurrency", type=int, default=0,
                    help="clients deploying simultaneously per wave "
                         "(default: all of them)")
    ha.add_argument("--replicas", type=int, default=3,
                    help="Gear registry replicas")
    ha.add_argument("--strategy", default="primary-first",
                    choices=["primary-first", "least-loaded", "p2c"],
                    help="replica selection strategy")
    ha.add_argument("--no-hedging", action="store_true",
                    help="disable hedged second fetches")
    ha.add_argument("--admission", type=int, default=2,
                    help="per-replica admission capacity in the "
                         "overload scenario")
    ha.add_argument(
        "--scenario", nargs="*", default=None,
        help=f"scenarios to run (default: all of {list(HA_SCENARIOS)})",
    )
    ha.add_argument("--ha-seed", default="0",
                    help="seed token for replica selection, hedging, "
                         "backoff, and fault streams")
    ha.add_argument("--json", action="store_true",
                    help="emit the sweep report as one JSON line")
    edge = sub.add_parser(
        "edge", parents=[common],
        help="multi-tier edge/P2P sweep under churn/byzantine scenarios",
    )
    edge.add_argument("--target", default="nginx")
    edge.add_argument("--bandwidth", type=float, default=200.0,
                      help="registry WAN uplink in Mbps")
    edge.add_argument("--lan-bandwidth", type=float, default=904.0,
                      help="intra-site LAN bandwidth in Mbps")
    edge.add_argument("--clients", type=int, default=8,
                      help="number of edge nodes in the fleet")
    edge.add_argument("--concurrency", type=int, default=0,
                      help="clients deploying simultaneously per wave "
                           "(default: clients/4, so later batches can "
                           "peer-fetch from earlier ones)")
    edge.add_argument("--sites", type=int, default=1,
                      help="edge sites (nodes join round-robin)")
    edge.add_argument("--gossip-interval", type=float, default=0.25,
                      help="tracker refresh period in virtual seconds")
    edge.add_argument("--churn-rate", type=float, default=2.0,
                      help="join/leave events per virtual second in "
                           "churn scenarios")
    edge.add_argument("--churn-horizon", type=float, default=10.0,
                      help="churn schedule horizon in virtual seconds")
    edge.add_argument(
        "--scenario", nargs="*", default=None,
        help=f"scenarios to run (default: all of {list(EDGE_SCENARIOS)})",
    )
    edge.add_argument("--edge-seed", default="0",
                      help="seed token for peer selection, gossip jitter, "
                           "churn, and crash streams")
    edge.add_argument("--equivalence", action="store_true",
                      help="instead of the sweep, check a peer-less edge "
                           "run is byte- and time-identical to the "
                           "single-tier testbed")
    edge.add_argument("--json", action="store_true",
                      help="emit the report as one JSON line")
    faas = sub.add_parser(
        "faas", parents=[common],
        help="serverless spike sweep over the three-tier cache chain",
    )
    faas.add_argument("--bandwidth", type=float, default=200.0,
                      help="registry WAN uplink in Mbps")
    faas.add_argument("--tier-bandwidth", type=float, default=904.0,
                      help="shared-tier serving bandwidth in Mbps")
    faas.add_argument("--nodes", type=int, default=6,
                      help="FaaS worker nodes (functions hash onto them)")
    faas.add_argument("--functions", type=int, default=40,
                      help="distinct functions (Zipf-popular, images "
                           "assigned round-robin by rank)")
    faas.add_argument("--duration", type=float, default=20.0,
                      help="invocation-stream horizon in virtual seconds")
    faas.add_argument("--rate", type=float, default=6.0,
                      help="baseline Poisson arrival rate per second")
    faas.add_argument("--skew", type=float, default=1.0,
                      help="Zipf popularity skew across functions")
    faas.add_argument("--spike-start", type=float, default=8.0,
                      help="burst window start in virtual seconds")
    faas.add_argument("--spike-len", type=float, default=4.0,
                      help="burst window length in virtual seconds")
    faas.add_argument("--spike-factor", type=float, default=10.0,
                      help="arrival-rate multiplier inside the burst")
    faas.add_argument("--outage-start", type=float, default=9.0,
                      help="shared-tier outage start (mid-spike default)")
    faas.add_argument("--outage-len", type=float, default=2.0,
                      help="shared-tier outage length in virtual seconds")
    faas.add_argument("--tier-capacity", type=int, default=0,
                      help="shared-tier cache capacity in bytes "
                           "(0 = unbounded)")
    faas.add_argument("--tier-ttl", type=float, default=0.0,
                      help="shared-tier entry TTL in virtual seconds "
                           "(0 = no expiry)")
    faas.add_argument("--admission", type=int, default=4,
                      help="tier admission capacity: concurrent upstream "
                           "fills before shedding (0 = unbounded)")
    faas.add_argument("--keep-warm", type=float, default=6.0,
                      help="reap containers idle this many virtual "
                           "seconds (0 = keep forever)")
    faas.add_argument("--replicas", type=int, default=2,
                      help="HA Gear registry replicas behind the tier "
                           "(0 = single registry)")
    faas.add_argument(
        "--scenario", nargs="*", default=None,
        help=f"scenarios to run (default: all of {list(FAAS_SCENARIOS)})",
    )
    faas.add_argument("--faas-seed", default="0",
                      help="seed token for arrivals, placement, backoff, "
                           "and fault streams")
    faas.add_argument("--json", action="store_true",
                      help="emit the sweep report as one JSON line")
    perf = sub.add_parser(
        "perf", parents=[common],
        help="simulator throughput: events/sec on canonical scenarios",
    )
    perf.add_argument("--clients", type=int, default=256,
                      help="microflow clients (1024 = the benchmark shape)")
    perf.add_argument("--transfers", type=int, default=4,
                      help="transfers per microflow client")
    perf.add_argument("--bandwidth", type=float, default=200.0,
                      help="shared microflow link bandwidth in Mbps")
    perf.add_argument("--wave-clients", type=int, default=64,
                      help="clients in the Gear deploy-wave scenario")
    perf.add_argument("--json", action="store_true",
                      help="emit deterministic fields as one JSON line "
                           "(wall-clock throughput is table-only)")
    slo = sub.add_parser(
        "slo", parents=[common],
        help="readiness-aware SLO gate: objectives + burn rates over "
             "fleet/edge/faas/prefetch, double-run for determinism",
    )
    slo.add_argument("--scenario", nargs="*", default=None,
                     help=f"subset of {list(SLO_SCENARIOS)} (default: all)")
    slo.add_argument("--target", default="nginx")
    slo.add_argument("--bandwidth", type=float, default=200.0)
    slo.add_argument("--clients", type=int, default=6,
                     help="fleet/edge wave size")
    slo.add_argument("--slo-seed", type=int, default=1,
                     help="scenario seed (corpus seed stays --seed)")
    slo.add_argument("--json", action="store_true",
                     help="emit the full report (timelines included) as "
                          "one JSON line")
    trace = sub.add_parser(
        "trace", parents=[common],
        help="trace a Gear deployment; critical path + Chrome trace export",
    )
    trace.add_argument("--target", default="nginx")
    trace.add_argument("--bandwidth", type=float, default=100.0)
    trace.add_argument("--clients", type=int, default=1,
                       help="fleet wave mode when > 1 (roots at 'wave')")
    trace.add_argument("--concurrency", type=int, default=0,
                       help="clients deploying simultaneously per wave "
                            "(default: all of them)")
    trace.add_argument("--out-dir", default=None,
                       help="write trace.json + metrics.json here "
                            "(trace.json loads in Perfetto)")
    trace.add_argument("--json", action="store_true",
                       help="emit the critical-path report as one JSON line")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "catalog":
        return cmd_catalog(args)
    if args.command == "demo":
        return _run_demo()
    if args.command == "dedup":
        return cmd_dedup(args)
    if args.command == "storage":
        return cmd_storage(args)
    if args.command == "deploy":
        return cmd_deploy(args)
    if args.command == "crash":
        return cmd_crash(args)
    if args.command == "chunks":
        return cmd_chunks(args)
    if args.command == "ha":
        return cmd_ha(args)
    if args.command == "edge":
        return cmd_edge(args)
    if args.command == "faas":
        return cmd_faas(args)
    if args.command == "trace":
        return cmd_trace(args)
    if args.command == "perf":
        return cmd_perf(args)
    if args.command == "slo":
        return cmd_slo(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
