"""Container objects and lifecycle."""

from __future__ import annotations

import enum
import itertools
from typing import Optional

from repro.common.errors import ReproError
from repro.docker.image import Image, ImageConfig
from repro.vfs.overlay import OverlayMount

_container_ids = itertools.count(1)


class ContainerState(enum.Enum):
    """Lifecycle states a container moves through."""

    CREATED = "created"
    RUNNING = "running"
    STOPPED = "stopped"
    DELETED = "deleted"


class Container:
    """A running (or runnable) instance of an image.

    Holds the union mount providing its root filesystem and the image
    config (env, entrypoint) its process would see.  Workload task models
    drive file accesses through :attr:`mount`.
    """

    def __init__(self, image: Image, mount: OverlayMount) -> None:
        self.id = f"ctr-{next(_container_ids):06d}"
        self.image = image
        self.mount = mount
        self.state = ContainerState.CREATED

    @property
    def config(self) -> ImageConfig:
        return self.image.config

    @property
    def rootfs(self) -> OverlayMount:
        return self.mount

    def start(self) -> None:
        if self.state not in (ContainerState.CREATED, ContainerState.STOPPED):
            raise ReproError(f"cannot start container in state {self.state.value}")
        self.state = ContainerState.RUNNING

    def stop(self) -> None:
        if self.state is not ContainerState.RUNNING:
            raise ReproError(f"cannot stop container in state {self.state.value}")
        self.state = ContainerState.STOPPED

    def delete(self) -> None:
        if self.state is ContainerState.RUNNING:
            raise ReproError("stop the container before deleting it")
        self.state = ContainerState.DELETED

    @property
    def writable_bytes(self) -> int:
        """Bytes written to the container's writable layer."""
        return self.mount.upper.total_file_bytes()

    def __repr__(self) -> str:
        return f"Container({self.id}, {self.image.reference!r}, {self.state.value})"
