"""The Overlay2-style graph driver.

"The graph driver is responsible for saving the image in the local storage
and making image layers locally available for reuse … and for providing a
complete and correct root file system for the container" (§II-C).  This
driver keeps each layer's extracted ``diff/`` tree keyed by digest —
shared across every image and container on the node, which is the
layer-level local sharing Docker provides (and the level Gear improves on
with file-level sharing).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.errors import NotFoundError
from repro.common.hashing import Digest
from repro.docker.image import Image, Layer
from repro.vfs.overlay import OverlayMount
from repro.vfs.tree import FileSystemTree


class Overlay2Driver:
    """Local layer storage plus union-mount construction."""

    def __init__(self) -> None:
        #: digest → (layer object, extracted read-only diff tree)
        self._layers: Dict[Digest, Tuple[Layer, FileSystemTree]] = {}
        self.mounts_created = 0

    # -- layer store -------------------------------------------------------

    def has_layer(self, digest: Digest) -> bool:
        return digest in self._layers

    def register_layer(self, layer: Layer) -> bool:
        """Extract a layer into local storage; False when already present."""
        if layer.digest in self._layers:
            return False
        diff = layer.diff_tree().freeze()
        self._layers[layer.digest] = (layer, diff)
        return True

    def get_layer(self, digest: Digest) -> Layer:
        try:
            return self._layers[digest][0]
        except KeyError:
            raise NotFoundError(f"layer not in local storage: {digest.short()}") from None

    def diff_tree(self, digest: Digest) -> FileSystemTree:
        try:
            return self._layers[digest][1]
        except KeyError:
            raise NotFoundError(f"layer not in local storage: {digest.short()}") from None

    def remove_layer(self, digest: Digest) -> None:
        if digest not in self._layers:
            raise NotFoundError(f"layer not in local storage: {digest.short()}")
        del self._layers[digest]

    @property
    def layer_count(self) -> int:
        return len(self._layers)

    @property
    def stored_bytes(self) -> int:
        """Local uncompressed layer bytes (layers are extracted on disk)."""
        return sum(layer.uncompressed_size for layer, _ in self._layers.values())

    def missing_layers(self, image: Image) -> List[Layer]:
        """Layers of ``image`` not yet present locally, bottom-up order."""
        return [layer for layer in image.layers if not self.has_layer(layer.digest)]

    # -- mounts --------------------------------------------------------------

    def mount(self, image: Image, upper: Optional[FileSystemTree] = None) -> OverlayMount:
        """Union-mount an image's layers under a fresh writable layer.

        Lowers are ordered top-most layer first, matching overlayfs's
        ``lowerdir`` ordering (§II-C, Fig. 1b).
        """
        for layer in image.layers:
            if not self.has_layer(layer.digest):
                raise NotFoundError(
                    f"cannot mount {image.reference!r}: layer "
                    f"{layer.digest.short()} not local"
                )
        lowers = [self.diff_tree(layer.digest) for layer in reversed(image.layers)]
        self.mounts_created += 1
        return OverlayMount(lowers, upper)

    def __repr__(self) -> str:
        return f"Overlay2Driver(layers={self.layer_count})"
