"""The Docker registry service.

Stores manifests and compressed layer tarballs, deduplicating layers by
digest (§II-B): "Layer-level deduplication is carried out by comparing the
digests of the layers to be stored with the digests of the layers already
in the registry.  Unique layers will be sent to and stored in the
registry."

The registry exposes an RPC endpoint so clients pay simulated network
costs for manifests and layer downloads; it can also be used in-process by
the storage experiments, which only need byte accounting.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.errors import NotFoundError
from repro.common.hashing import Digest
from repro.docker.image import Image, Layer, Manifest
from repro.net.transport import RpcEndpoint
from repro.storage.objectstore import ObjectStore


class DockerRegistry:
    """A registry holding manifests and layer blobs."""

    ENDPOINT_NAME = "docker-registry"

    def __init__(self, name: str = "registry") -> None:
        self.name = name
        self._manifests: Dict[str, Manifest] = {}
        self._layers = ObjectStore(name=f"{name}-layers")
        #: Layers kept as objects so clients can re-extract them.
        self._layer_objects: Dict[Digest, Layer] = {}

    # -- push side ---------------------------------------------------------

    def has_layer(self, digest: Digest) -> bool:
        return self._layers.query(digest)

    def push_layer(self, layer: Layer) -> bool:
        """Store a layer blob; returns False when deduplicated away."""
        stored = self._layers.upload(
            layer.digest,
            layer,
            size=layer.uncompressed_size,
            stored_size=layer.compressed_size,
        )
        if stored:
            self._layer_objects[layer.digest] = layer
        return stored

    def push_manifest(self, manifest: Manifest) -> None:
        for digest in manifest.layer_digests:
            if not self.has_layer(digest):
                raise NotFoundError(
                    f"cannot publish {manifest.reference!r}: missing layer "
                    f"{digest.short()}"
                )
        self._manifests[manifest.reference] = manifest

    def push_image(self, image: Image) -> Tuple[int, int]:
        """Push an image in-process (no network accounting).

        Returns ``(layers_sent, layers_deduplicated)``.
        """
        sent = 0
        deduped = 0
        for layer in image.layers:
            if self.push_layer(layer):
                sent += 1
            else:
                deduped += 1
        self.push_manifest(image.manifest())
        return sent, deduped

    # -- pull side -----------------------------------------------------------

    def get_manifest(self, reference: str) -> Manifest:
        try:
            return self._manifests[reference]
        except KeyError:
            raise NotFoundError(f"no such image: {reference!r}") from None

    def get_layer(self, digest: Digest) -> Layer:
        try:
            return self._layer_objects[digest]
        except KeyError:
            raise NotFoundError(f"no such layer: {digest.short()}") from None

    def has_manifest(self, reference: str) -> bool:
        return reference in self._manifests

    def delete_manifest(self, reference: str) -> None:
        if reference not in self._manifests:
            raise NotFoundError(f"no such image: {reference!r}")
        del self._manifests[reference]

    def delete_layer(self, digest: Digest) -> None:
        """Remove a layer blob (GC and loss-injection experiments).

        Manifests referencing the layer are left in place — exactly the
        dangling-reference state a registry-side disk failure produces;
        subsequent pulls fail with :class:`NotFoundError`.
        """
        if not self._layers.query(digest):
            raise NotFoundError(f"no such layer: {digest.short()}")
        self._layers.delete(digest)
        del self._layer_objects[digest]

    # -- accounting ----------------------------------------------------------

    @property
    def manifest_count(self) -> int:
        return len(self._manifests)

    @property
    def layer_count(self) -> int:
        return len(self._layers)

    @property
    def stored_bytes(self) -> int:
        """Registry footprint: compressed layers + manifests (§II-B)."""
        manifests = sum(m.size_bytes for m in self._manifests.values())
        return self._layers.total_stored_size + manifests

    @property
    def uncompressed_layer_bytes(self) -> int:
        return self._layers.total_size

    def references(self) -> List[str]:
        return sorted(self._manifests)

    def layer_digests(self) -> Iterator[str]:
        return self._layers.keys()

    # -- RPC surface -----------------------------------------------------------

    def endpoint(self) -> RpcEndpoint:
        """Bind the registry's remote interface.

        Response sizes: manifests cost their JSON size; layer downloads
        cost the *compressed* tarball size (layers travel compressed,
        §II-B); queries and uploads cost framing only (upload payload
        bytes are charged by the transport on the request side).
        """
        endpoint = RpcEndpoint(self.ENDPOINT_NAME)
        endpoint.register(
            "get_manifest",
            lambda reference: (
                (manifest := self.get_manifest(reference)),
                manifest.size_bytes,
            ),
        )
        endpoint.register(
            "has_layer", lambda digest: (self.has_layer(digest), 16)
        )
        endpoint.register(
            "get_layer",
            lambda digest: (
                (layer := self.get_layer(digest)),
                layer.compressed_size,
            ),
        )
        endpoint.register(
            "push_layer", lambda layer: (self.push_layer(layer), 16)
        )
        endpoint.register(
            "push_manifest",
            lambda manifest: (self.push_manifest(manifest), 16),
        )
        return endpoint

    def __repr__(self) -> str:
        return (
            f"DockerRegistry(images={self.manifest_count}, "
            f"layers={self.layer_count}, bytes={self.stored_bytes})"
        )
