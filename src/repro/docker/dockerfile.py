"""A Dockerfile mini-language for building images.

The corpus generator builds images programmatically, but a
Docker-compatible framework should also build them the way users do: from
a build script.  This module implements the subset of Dockerfile
instructions the reproduction's workloads need:

``FROM <ref>|scratch``, ``COPY <path> <content…>``, ``RUN rm -rf <path>``,
``RUN mkdir -p <path>``, ``RUN ln -s <target> <path>``, ``ENV K=V``,
``WORKDIR``, ``ENTRYPOINT``, ``CMD``, ``LABEL``, and ``#`` comments.

``COPY`` sources come from a *build context* mapping (path → content),
mirroring the directory a real build sends to the daemon.  Each ``RUN``
and each contiguous group of ``COPY`` instructions commits one layer, so
layer structure matches what Docker would produce closely enough for the
dedup experiments to be meaningful on hand-built images too.
"""

from __future__ import annotations

import shlex
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.blob import Blob
from repro.common.errors import ReproError
from repro.docker.builder import ImageBuilder
from repro.docker.image import Image, ImageConfig


class DockerfileError(ReproError):
    """A build script failed to parse or execute."""

    def __init__(self, line_no: int, line: str, reason: str) -> None:
        super().__init__(f"line {line_no}: {reason}: {line!r}")
        self.line_no = line_no
        self.line = line
        self.reason = reason


@dataclass(frozen=True)
class Instruction:
    """One parsed Dockerfile instruction."""

    line_no: int
    keyword: str
    args: Tuple[str, ...]
    raw: str


def parse(text: str) -> List[Instruction]:
    """Parse Dockerfile text into instructions.

    Supports ``#`` comments, blank lines, and ``\\`` line continuations.
    """
    instructions: List[Instruction] = []
    pending = ""
    pending_start = 0
    for line_no, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        if not pending and (not stripped or stripped.startswith("#")):
            continue
        if not pending:
            pending_start = line_no
        if stripped.endswith("\\"):
            pending += stripped[:-1] + " "
            continue
        pending += stripped
        line = pending
        pending = ""
        try:
            tokens = shlex.split(line)
        except ValueError as exc:
            raise DockerfileError(pending_start, line, f"unparseable ({exc})")
        if not tokens:
            continue
        keyword = tokens[0].upper()
        instructions.append(
            Instruction(
                line_no=pending_start,
                keyword=keyword,
                args=tuple(tokens[1:]),
                raw=line,
            )
        )
    if pending:
        raise DockerfileError(pending_start, pending, "dangling continuation")
    return instructions


class DockerfileBuilder:
    """Executes a parsed Dockerfile against a build context.

    ``resolve_base`` maps a ``FROM`` reference to an :class:`Image`
    (usually the local daemon's image store or a registry lookup).
    """

    def __init__(
        self,
        name: str,
        tag: str,
        *,
        context: Optional[Dict[str, "Blob | bytes | str"]] = None,
        resolve_base: Optional[Callable[[str], Image]] = None,
    ) -> None:
        self.name = name
        self.tag = tag
        self.context = dict(context or {})
        self.resolve_base = resolve_base
        self._builder: Optional[ImageBuilder] = None
        self._env: Dict[str, str] = {}
        self._labels: Dict[str, str] = {}
        self._workdir = "/"
        self._entrypoint: Tuple[str, ...] = ()
        self._cmd: Tuple[str, ...] = ()
        #: COPY groups coalesce into one layer until a RUN breaks them.
        self._copy_group_open = False

    # -- public ------------------------------------------------------------

    def build(self, text: str) -> Image:
        instructions = parse(text)
        if not instructions or instructions[0].keyword != "FROM":
            line = instructions[0] if instructions else None
            raise DockerfileError(
                line.line_no if line else 1,
                line.raw if line else "",
                "build scripts must start with FROM",
            )
        for instruction in instructions:
            self._execute(instruction)
        if self._builder is None:
            raise DockerfileError(1, "", "FROM was never executed")
        self._seal_layer()
        self._builder.set_config(
            ImageConfig.make(
                env=self._env,
                entrypoint=self._entrypoint,
                cmd=self._cmd,
                workdir=self._workdir,
                labels=self._labels,
            )
        )
        return self._builder.build()

    # -- execution ----------------------------------------------------------

    def _execute(self, instruction: Instruction) -> None:
        handler = getattr(self, f"_op_{instruction.keyword.lower()}", None)
        if handler is None:
            raise DockerfileError(
                instruction.line_no, instruction.raw,
                f"unsupported instruction {instruction.keyword}",
            )
        handler(instruction)

    def _require_builder(self, instruction: Instruction) -> ImageBuilder:
        if self._builder is None:
            raise DockerfileError(
                instruction.line_no, instruction.raw, "no FROM yet"
            )
        return self._builder

    def _seal_layer(self) -> None:
        if self._builder is not None and self._builder.has_pending_changes():
            self._builder.commit_layer()
        self._copy_group_open = False

    def _op_from(self, instruction: Instruction) -> None:
        if self._builder is not None:
            raise DockerfileError(
                instruction.line_no, instruction.raw,
                "multi-stage builds are not supported",
            )
        if len(instruction.args) != 1:
            raise DockerfileError(
                instruction.line_no, instruction.raw, "FROM takes one reference"
            )
        reference = instruction.args[0]
        if reference == "scratch":
            base = None
        else:
            if self.resolve_base is None:
                raise DockerfileError(
                    instruction.line_no, instruction.raw,
                    "FROM needs a base resolver",
                )
            base = self.resolve_base(reference)
        self._builder = ImageBuilder(self.name, self.tag, base=base)
        if base is not None:
            self._env = base.config.env_dict()
            self._labels = dict(base.config.labels)
            self._workdir = base.config.workdir
            self._entrypoint = base.config.entrypoint
            self._cmd = base.config.cmd

    def _op_copy(self, instruction: Instruction) -> None:
        builder = self._require_builder(instruction)
        if len(instruction.args) != 2:
            raise DockerfileError(
                instruction.line_no, instruction.raw, "COPY takes <src> <dst>"
            )
        src, dst = instruction.args
        if src not in self.context:
            raise DockerfileError(
                instruction.line_no, instruction.raw,
                f"context has no entry {src!r}",
            )
        destination = dst if dst.startswith("/") else self._join_workdir(dst)
        builder.add_file(destination, self.context[src])
        self._copy_group_open = True

    def _op_run(self, instruction: Instruction) -> None:
        builder = self._require_builder(instruction)
        if self._copy_group_open:
            self._seal_layer()
        args = instruction.args
        if len(args) >= 2 and args[0] == "rm" and args[1] in ("-rf", "-r", "-f"):
            for victim in args[2:]:
                builder.remove(self._absolute(victim))
        elif len(args) >= 2 and args[0] == "mkdir":
            targets = args[2:] if args[1] == "-p" else args[1:]
            for target in targets:
                builder.mkdir(self._absolute(target))
        elif len(args) == 4 and args[0] == "ln" and args[1] == "-s":
            builder.add_symlink(self._absolute(args[3]), args[2])
        elif len(args) >= 2 and args[0] == "touch":
            for target in args[1:]:
                builder.add_file(self._absolute(target), b"")
        else:
            raise DockerfileError(
                instruction.line_no, instruction.raw,
                "RUN supports rm/mkdir/ln -s/touch in this reproduction",
            )
        self._seal_layer()

    def _op_env(self, instruction: Instruction) -> None:
        self._require_builder(instruction)
        for pair in instruction.args:
            key, sep, value = pair.partition("=")
            if not sep:
                raise DockerfileError(
                    instruction.line_no, instruction.raw, "ENV takes K=V pairs"
                )
            self._env[key] = value

    def _op_label(self, instruction: Instruction) -> None:
        self._require_builder(instruction)
        for pair in instruction.args:
            key, sep, value = pair.partition("=")
            if not sep:
                raise DockerfileError(
                    instruction.line_no, instruction.raw, "LABEL takes K=V pairs"
                )
            self._labels[key] = value

    def _op_workdir(self, instruction: Instruction) -> None:
        builder = self._require_builder(instruction)
        if len(instruction.args) != 1:
            raise DockerfileError(
                instruction.line_no, instruction.raw, "WORKDIR takes one path"
            )
        self._workdir = self._absolute(instruction.args[0])
        builder.mkdir(self._workdir)

    def _op_entrypoint(self, instruction: Instruction) -> None:
        self._require_builder(instruction)
        self._entrypoint = instruction.args

    def _op_cmd(self, instruction: Instruction) -> None:
        self._require_builder(instruction)
        self._cmd = instruction.args

    # -- helpers -----------------------------------------------------------------

    def _absolute(self, path: str) -> str:
        return path if path.startswith("/") else self._join_workdir(path)

    def _join_workdir(self, path: str) -> str:
        from repro.vfs import paths

        return paths.join(self._workdir, *path.split("/"))


def build_from_dockerfile(
    text: str,
    name: str,
    tag: str,
    *,
    context: Optional[Dict[str, "Blob | bytes | str"]] = None,
    resolve_base: Optional[Callable[[str], Image]] = None,
) -> Image:
    """One-shot convenience wrapper around :class:`DockerfileBuilder`."""
    return DockerfileBuilder(
        name, tag, context=context, resolve_base=resolve_base
    ).build(text)
