"""Building layered images.

:class:`ImageBuilder` plays the role of ``docker build``: it starts from
scratch or from a base image, records filesystem mutations into a pending
diff, and commits each diff as a new read-only layer.  The synthetic
corpus generator uses it to produce realistic version chains (shared base
layers, small top layers), and the Gear storage path uses it to package a
Gear index as a single-layer image (§III-C).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.blob import Blob
from repro.common.errors import ReproError
from repro.docker.image import Image, ImageConfig, Layer
from repro.vfs.inode import Metadata
from repro.vfs.overlay import OverlayMount
from repro.vfs.tar import LayerArchive
from repro.vfs.tree import FileSystemTree


class ImageBuilder:
    """Accumulates layers, exposing Dockerfile-like mutation steps."""

    def __init__(
        self,
        name: str,
        tag: str,
        *,
        base: Optional[Image] = None,
        config: Optional[ImageConfig] = None,
    ) -> None:
        self.name = name
        self.tag = tag
        self._layers: List[Layer] = list(base.layers) if base is not None else []
        self._config = config or (base.config if base is not None else ImageConfig.make())
        self._mount: Optional[OverlayMount] = None

    # -- the working diff --------------------------------------------------

    @property
    def mount(self) -> OverlayMount:
        """The writable build filesystem (lazy so FROM-only builds are free)."""
        if self._mount is None:
            lowers = [layer.diff_tree().freeze() for layer in reversed(self._layers)]
            self._mount = OverlayMount(lowers)
        return self._mount

    def add_file(
        self,
        path: str,
        content: "Blob | bytes | str",
        *,
        mode: int = 0o644,
        parents: bool = True,
    ) -> "ImageBuilder":
        """COPY-like step: place a file into the working diff."""
        if parents:
            from repro.vfs import paths

            parent, _ = paths.parent_and_name(path)
            self.mount.mkdir(parent, parents=True, exist_ok=True)
        self.mount.write_file(path, content, meta=Metadata(mode=mode))
        return self

    def add_symlink(self, path: str, target: str) -> "ImageBuilder":
        from repro.vfs import paths

        parent, _ = paths.parent_and_name(path)
        self.mount.mkdir(parent, parents=True, exist_ok=True)
        self.mount.symlink(path, target)
        return self

    def mkdir(self, path: str) -> "ImageBuilder":
        self.mount.mkdir(path, parents=True, exist_ok=True)
        return self

    def remove(self, path: str) -> "ImageBuilder":
        """RUN rm -rf — records whiteouts against lower layers."""
        self.mount.remove(path, recursive=True)
        return self

    def set_config(self, config: ImageConfig) -> "ImageBuilder":
        self._config = config
        return self

    def with_env(self, **env: str) -> "ImageBuilder":
        merged = self._config.env_dict()
        merged.update(env)
        self._config = ImageConfig.make(
            env=merged,
            entrypoint=self._config.entrypoint,
            cmd=self._config.cmd,
            workdir=self._config.workdir,
            labels=dict(self._config.labels),
        )
        return self

    # -- layer / image production -----------------------------------------

    def commit_layer(self) -> Layer:
        """Seal the working diff into a read-only layer."""
        if self._mount is None:
            raise ReproError("no pending changes to commit")
        archive = LayerArchive.from_tree(self._mount.upper)
        layer = Layer(archive)
        self._layers.append(layer)
        self._mount = None
        return layer

    def has_pending_changes(self) -> bool:
        if self._mount is None:
            return False
        # Whiteouts count as changes: a diff that only deletes files still
        # produces a layer.
        return any(True for _ in self._mount.upper.walk("/", include_whiteouts=True))

    def build(self) -> Image:
        """Finish: commit any pending diff and return the image."""
        if self._mount is not None and self.has_pending_changes():
            self.commit_layer()
        if not self._layers:
            raise ReproError(f"image {self.name}:{self.tag} has no layers")
        return Image(self.name, self.tag, self._layers, self._config)


def image_from_tree(
    name: str,
    tag: str,
    tree: FileSystemTree,
    *,
    config: Optional[ImageConfig] = None,
    gear_index: bool = False,
) -> Image:
    """Package a whole tree as a single-layer image.

    This is exactly how Gear indexes are made distributable: "Gear index
    is organized as a single-layer Docker image so that it is accessible
    by Docker commands" (§III-C).
    """
    archive = LayerArchive.from_tree(tree)
    return Image(name, tag, [Layer(archive)], config, gear_index=gear_index)


def layer_from_files(
    files: Sequence[tuple],
) -> Layer:
    """Build a standalone layer from ``(path, content)`` pairs (tests)."""
    tree = FileSystemTree()
    for path, content in files:
        tree.write_file(path, content, parents=True)
    return Layer(LayerArchive.from_tree(tree))
