"""Images, layers, and manifests."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ReproError
from repro.common.hashing import Digest, sha256_tokens
from repro.vfs.tar import LayerArchive
from repro.vfs.tree import FileSystemTree


class Layer:
    """One read-only image layer: a tar archive plus its identity.

    Matches §II-A: "Each layer is identified by its digest, the SHA256
    hash value of the layer's content."
    """

    __slots__ = ("archive",)

    def __init__(self, archive: LayerArchive) -> None:
        self.archive = archive

    @property
    def digest(self) -> Digest:
        return self.archive.digest

    @property
    def uncompressed_size(self) -> int:
        return self.archive.uncompressed_size

    @property
    def compressed_size(self) -> int:
        return self.archive.compressed_size

    @property
    def file_count(self) -> int:
        return self.archive.file_count

    def diff_tree(self) -> FileSystemTree:
        """The layer's content as an overlay lower (whiteouts preserved)."""
        return self.archive.extract_diff()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Layer):
            return NotImplemented
        return self.digest == other.digest

    def __hash__(self) -> int:
        return hash(self.digest)

    def __repr__(self) -> str:
        return f"Layer({self.digest.short()}, {self.uncompressed_size}B)"


@dataclass(frozen=True)
class ImageConfig:
    """Runtime configuration carried by an image.

    The Gear Converter must copy "the environmental variables and the
    configuration from the original Docker image to the new image"
    (§III-C); keeping config first-class lets tests verify that.
    """

    env: Tuple[Tuple[str, str], ...] = ()
    entrypoint: Tuple[str, ...] = ()
    cmd: Tuple[str, ...] = ()
    workdir: str = "/"
    labels: Tuple[Tuple[str, str], ...] = ()

    @classmethod
    def make(
        cls,
        *,
        env: Optional[Dict[str, str]] = None,
        entrypoint: Optional[Sequence[str]] = None,
        cmd: Optional[Sequence[str]] = None,
        workdir: str = "/",
        labels: Optional[Dict[str, str]] = None,
    ) -> "ImageConfig":
        return cls(
            env=tuple(sorted((env or {}).items())),
            entrypoint=tuple(entrypoint or ()),
            cmd=tuple(cmd or ()),
            workdir=workdir,
            labels=tuple(sorted((labels or {}).items())),
        )

    def env_dict(self) -> Dict[str, str]:
        return dict(self.env)

    def identity_tokens(self) -> List[str]:
        tokens = [f"env:{k}={v}" for k, v in self.env]
        tokens.extend(f"entrypoint:{part}" for part in self.entrypoint)
        tokens.extend(f"cmd:{part}" for part in self.cmd)
        tokens.append(f"workdir:{self.workdir}")
        tokens.extend(f"label:{k}={v}" for k, v in self.labels)
        return tokens


@dataclass(frozen=True)
class Manifest:
    """The JSON document the registry serves for an image reference.

    "the most important [configuration] is the digests of the image's
    layers" (§II-B).  ``layer_sizes`` carries compressed sizes so the
    client can account download volume, as real manifests do.
    """

    name: str
    tag: str
    layer_digests: Tuple[Digest, ...]
    layer_sizes: Tuple[int, ...]
    config: ImageConfig
    #: Marks manifests whose single layer is a Gear index (§III-C stores
    #: Gear indexes "as a single-layer Docker image").  An unmodified
    #: client ignores it; the Gear driver dispatches on it.
    gear_index: bool = False

    def __post_init__(self) -> None:
        if len(self.layer_digests) != len(self.layer_sizes):
            raise ReproError("layer digest/size lists must align")

    @property
    def reference(self) -> str:
        return f"{self.name}:{self.tag}"

    @property
    def digest(self) -> Digest:
        tokens = [self.name, self.tag, *self.layer_digests]
        tokens.extend(str(size) for size in self.layer_sizes)
        tokens.extend(self.config.identity_tokens())
        tokens.append(f"gear_index:{self.gear_index}")
        return sha256_tokens(tokens)

    @property
    def size_bytes(self) -> int:
        """Approximate serialized manifest size (it is a small JSON doc)."""
        return 512 + 128 * len(self.layer_digests)


class Image:
    """A complete local image: manifest-level info plus layer objects."""

    def __init__(
        self,
        name: str,
        tag: str,
        layers: Sequence[Layer],
        config: Optional[ImageConfig] = None,
        *,
        gear_index: bool = False,
    ) -> None:
        if not layers:
            raise ReproError("an image needs at least one layer")
        self.name = name
        self.tag = tag
        self.layers: Tuple[Layer, ...] = tuple(layers)
        self.config = config if config is not None else ImageConfig.make()
        self.gear_index = gear_index

    @property
    def reference(self) -> str:
        return f"{self.name}:{self.tag}"

    def manifest(self) -> Manifest:
        return Manifest(
            name=self.name,
            tag=self.tag,
            layer_digests=tuple(layer.digest for layer in self.layers),
            layer_sizes=tuple(layer.compressed_size for layer in self.layers),
            config=self.config,
            gear_index=self.gear_index,
        )

    @property
    def uncompressed_size(self) -> int:
        return sum(layer.uncompressed_size for layer in self.layers)

    @property
    def compressed_size(self) -> int:
        return sum(layer.compressed_size for layer in self.layers)

    @property
    def file_count(self) -> int:
        return sum(layer.file_count for layer in self.layers)

    def flatten(self) -> FileSystemTree:
        """Apply all layers bottom-up into one root filesystem tree.

        This is what the Gear Converter does before walking the result
        ("the converter decompresses and then saves the layers starting
        from the bottom layer to the top layer", §III-B).
        """
        tree = FileSystemTree()
        for layer in self.layers:
            layer.archive.apply_to(tree)
        return tree

    def __repr__(self) -> str:
        return (
            f"Image({self.reference!r}, layers={len(self.layers)}, "
            f"size={self.uncompressed_size})"
        )
