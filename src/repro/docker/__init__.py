"""The Docker substrate.

A functional reimplementation of the parts of Docker 18.09 the paper
builds on (§II): layered images identified by SHA-256 digests, manifests,
a registry storing compressed layer tarballs with layer-level dedup, the
Overlay2 graph driver, and a daemon with pull / run / commit / push.

The Gear framework (:mod:`repro.gear`) plugs into this substrate exactly
where the paper plugs into Docker: Gear indexes travel as single-layer
Docker images through the unmodified registry/daemon path, and the Gear
File Viewer extends the Overlay2 mount.
"""

from repro.docker.container import Container, ContainerState
from repro.docker.daemon import DockerDaemon
from repro.docker.graphdriver import Overlay2Driver
from repro.docker.image import Image, ImageConfig, Layer, Manifest
from repro.docker.builder import ImageBuilder
from repro.docker.registry import DockerRegistry

__all__ = [
    "Container",
    "ContainerState",
    "DockerDaemon",
    "Overlay2Driver",
    "Image",
    "ImageConfig",
    "Layer",
    "Manifest",
    "ImageBuilder",
    "DockerRegistry",
]
