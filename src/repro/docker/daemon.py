"""The Docker daemon (client-side engine).

Implements the two deployment steps of §II-C: (1) retrieve the manifest
and download layers "that are not yet present at the local storage", and
(2) configure and launch the container instance through the graph driver.
Also implements ``commit`` (writable layer → new read-only layer, §II-A)
and ``push``.

Cost model
----------
* network: every manifest/layer transfer goes through the RPC transport
  and pays link costs;
* extraction: downloaded layers are decompressed and written to local
  storage at the client disk's sequential rate, plus a per-file metadata
  cost — this is why Docker's deployment time does not collapse to pure
  transfer time even on a fast network (§V-E2 observes 6.08 s average for
  Tomcat at 1000 Mbps, far above the raw transfer time);
* container start: a fixed runtime setup cost (namespace/cgroup/mount
  configuration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.clock import SimClock
from repro.common.errors import NotFoundError, ReproError
from repro.docker.container import Container, ContainerState
from repro.docker.graphdriver import Overlay2Driver
from repro.docker.image import Image, ImageConfig, Layer
from repro.docker.registry import DockerRegistry
from repro.net.transport import RpcTransport
from repro.storage.disk import Disk
from repro.vfs.tar import LayerArchive

#: Seconds to configure and start a container process (namespaces,
#: cgroups, mount syscalls).  Measured sub-second on the paper's testbed.
CONTAINER_START_COST_S = 0.35

#: Single-threaded gunzip throughput (uncompressed bytes/s).  Registry
#: payloads travel compressed (§II-B, §III-C), so every pull pays this
#: CPU cost on top of transfer and disk time.
DECOMPRESS_BPS = 150e6

#: Seconds to tear a container down (kill, unmount, cgroup removal),
#: excluding the inode-cache-dependent part modelled per-mount.
CONTAINER_DESTROY_BASE_S = 0.12

#: Per-inode cache teardown cost at unmount.  Figure 11(b)'s explanation:
#: "Gear spends less time unmounting the file system, because it only
#: needs to destroy the inode caches of required files."
INODE_TEARDOWN_COST_S = 0.00002


@dataclass
class PullReport:
    """What one ``pull`` did."""

    reference: str
    manifest_bytes: int = 0
    layers_downloaded: int = 0
    layers_reused: int = 0
    bytes_downloaded: int = 0
    duration_s: float = 0.0
    already_local: bool = False


class DockerDaemon:
    """The client-side engine: local images, pull/run/commit/push."""

    def __init__(
        self,
        clock: SimClock,
        transport: RpcTransport,
        *,
        driver: Optional[Overlay2Driver] = None,
        disk: Optional[Disk] = None,
    ) -> None:
        self.clock = clock
        self.transport = transport
        self.driver = driver if driver is not None else Overlay2Driver()
        self.disk = disk if disk is not None else Disk(clock)
        self._images: Dict[str, Image] = {}
        self._containers: Dict[str, Container] = {}

    # -- local image store ---------------------------------------------------

    def has_image(self, reference: str) -> bool:
        return reference in self._images

    def get_image(self, reference: str) -> Image:
        try:
            return self._images[reference]
        except KeyError:
            raise NotFoundError(f"image not pulled: {reference!r}") from None

    def images(self) -> List[str]:
        return sorted(self._images)

    def remove_image(self, reference: str) -> None:
        """Forget an image (its layers stay in the driver for reuse)."""
        if reference not in self._images:
            raise NotFoundError(f"image not pulled: {reference!r}")
        del self._images[reference]

    def add_local_image(self, image: Image) -> None:
        """Install a locally-built image (``docker build``'s final step)."""
        for layer in image.layers:
            self.driver.register_layer(layer)
        self._images[image.reference] = image

    # -- pull ------------------------------------------------------------------

    def pull(self, reference: str) -> PullReport:
        """Download an image: manifest, then locally-missing layers."""
        timer = self.clock.timer()
        report = PullReport(reference=reference)
        if reference in self._images:
            report.already_local = True
            report.duration_s = timer.elapsed()
            return report
        manifest = self.transport.call(
            DockerRegistry.ENDPOINT_NAME, "get_manifest", reference,
            label=f"pull-manifest:{reference}",
        )
        report.manifest_bytes = manifest.size_bytes
        layers: List[Layer] = []
        for digest in manifest.layer_digests:
            if self.driver.has_layer(digest):
                layers.append(self.driver.get_layer(digest))
                report.layers_reused += 1
                continue
            layer = self.transport.call(
                DockerRegistry.ENDPOINT_NAME, "get_layer", digest,
                label=f"pull-layer:{digest.short()}",
            )
            # Decompress, then extract to local storage.
            self.clock.advance(
                layer.uncompressed_size / DECOMPRESS_BPS,
                f"gunzip:{digest.short()}",
            )
            self.disk.write(
                layer.uncompressed_size,
                file_ops=len(layer.archive),
                label=f"extract:{digest.short()}",
            )
            self.driver.register_layer(layer)
            layers.append(layer)
            report.layers_downloaded += 1
            report.bytes_downloaded += layer.compressed_size
        image = Image(
            manifest.name,
            manifest.tag,
            layers,
            manifest.config,
            gear_index=manifest.gear_index,
        )
        self._images[reference] = image
        report.duration_s = timer.elapsed()
        return report

    # -- run ---------------------------------------------------------------------

    def create_container(self, reference: str) -> Container:
        image = self.get_image(reference)
        mount = self.driver.mount(image)
        container = Container(image, mount)
        self._containers[container.id] = container
        return container

    def start_container(self, container: Container) -> None:
        self.clock.advance(CONTAINER_START_COST_S, f"start:{container.id}")
        container.start()

    def run(self, reference: str) -> Container:
        """``docker run``: create + start."""
        container = self.create_container(reference)
        self.start_container(container)
        return container

    def destroy_container(self, container: Container) -> float:
        """Stop and delete a container, paying unmount teardown costs.

        Teardown scales with the inode/dentry caches the mount built up.
        A full Overlay2 mount exposes (and the runtime's setup scans) the
        entire image tree, so the cost is charged per image file; the
        Gear driver charges only per *touched* file — the asymmetry §V-F
        measures in Fig. 11(b).
        """
        if container.state is ContainerState.RUNNING:
            container.stop()
        teardown = (
            CONTAINER_DESTROY_BASE_S
            + container.image.file_count * INODE_TEARDOWN_COST_S
        )
        self.clock.advance(teardown, f"destroy:{container.id}")
        container.delete()
        self._containers.pop(container.id, None)
        return teardown

    def containers(self) -> List[Container]:
        return list(self._containers.values())

    # -- commit / push --------------------------------------------------------------

    def commit(self, container: Container, name: str, tag: str) -> Image:
        """Turn the writable layer into a new read-only layer (§II-A)."""
        archive = LayerArchive.from_tree(container.mount.upper)
        new_layer = Layer(archive)
        self.disk.write(
            new_layer.uncompressed_size,
            file_ops=len(archive),
            label=f"commit:{name}:{tag}",
        )
        self.driver.register_layer(new_layer)
        image = Image(
            name, tag, list(container.image.layers) + [new_layer],
            container.image.config,
        )
        self._images[image.reference] = image
        return image

    def push(self, reference: str) -> int:
        """Upload an image; only layers the registry lacks travel."""
        image = self.get_image(reference)
        uploaded = 0
        for layer in image.layers:
            present = self.transport.call(
                DockerRegistry.ENDPOINT_NAME, "has_layer", layer.digest,
                label=f"push-query:{layer.digest.short()}",
            )
            if present:
                continue
            self.transport.call(
                DockerRegistry.ENDPOINT_NAME, "push_layer", layer,
                request_payload_bytes=layer.compressed_size,
                label=f"push-layer:{layer.digest.short()}",
            )
            uploaded += 1
        self.transport.call(
            DockerRegistry.ENDPOINT_NAME, "push_manifest", image.manifest(),
            request_payload_bytes=image.manifest().size_bytes,
            label=f"push-manifest:{reference}",
        )
        return uploaded

    def __repr__(self) -> str:
        return (
            f"DockerDaemon(images={len(self._images)}, "
            f"containers={len(self._containers)})"
        )
