"""Deterministic tar-like layer archives.

Docker stores each image layer as a tarball (compressed in the registry,
§II-B).  :class:`LayerArchive` is the reproduction's tarball: an ordered,
canonical sequence of :class:`TarEntry` records that

* serializes any :class:`~repro.vfs.tree.FileSystemTree` (including diff
  trees containing whiteouts, encoded with the overlayfs/AUFS ``.wh.``
  naming convention Docker actually uses on the wire);
* has a deterministic SHA-256 digest, so identical layers produced on
  different "machines" deduplicate at the registry exactly as real layer
  digests do;
* knows its uncompressed and compressed sizes (per-entry 512-byte header
  blocks plus content, mirroring the tar format's accounting);
* can be applied onto a tree to reconstruct a root filesystem bottom-up,
  the way the Gear Converter unpacks layers (§III-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.blob import Blob
from repro.blob.compressibility import blob_compressed_size
from repro.common.errors import VfsError
from repro.common.hashing import Digest, sha256_tokens
from repro.vfs import paths
from repro.vfs.inode import FileKind, Inode, Metadata
from repro.vfs.tree import FileSystemTree

#: tar writes a 512-byte header block per entry and pads content to 512.
_TAR_BLOCK = 512

#: AUFS-style whiteout prefix Docker uses inside layer tarballs.
WHITEOUT_PREFIX = ".wh."

#: Marker file making a directory opaque.
OPAQUE_MARKER = ".wh..wh..opq"


@dataclass(frozen=True)
class TarEntry:
    """One archive member.

    ``kind`` is the node kind; whiteouts are represented as FILE entries
    whose basename carries the ``.wh.`` prefix, as in real Docker layers,
    so ``kind`` here is never ``WHITEOUT``.
    """

    path: str
    kind: FileKind
    mode: int
    uid: int
    gid: int
    blob: Optional[Blob] = None
    symlink_target: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind is FileKind.FILE and self.blob is None:
            raise VfsError(f"file entry {self.path!r} requires a blob")
        if self.kind is FileKind.SYMLINK and not self.symlink_target:
            raise VfsError(f"symlink entry {self.path!r} requires a target")
        if self.kind is FileKind.WHITEOUT:
            raise VfsError("whiteouts are encoded via the .wh. prefix")

    @property
    def content_size(self) -> int:
        return self.blob.size if self.blob is not None else 0

    @property
    def archived_size(self) -> int:
        """Bytes this entry occupies in the archive (header + padded data)."""
        data = self.content_size
        padded = (data + _TAR_BLOCK - 1) // _TAR_BLOCK * _TAR_BLOCK
        return _TAR_BLOCK + padded

    def identity_tokens(self) -> Iterable[str]:
        """Canonical tokens feeding the archive digest."""
        yield self.path
        yield self.kind.value
        yield f"{self.mode:o}:{self.uid}:{self.gid}"
        if self.blob is not None:
            yield self.blob.fingerprint
        if self.symlink_target is not None:
            yield self.symlink_target

    @property
    def is_whiteout(self) -> bool:
        _, name = paths.parent_and_name(self.path)
        return name.startswith(WHITEOUT_PREFIX) and name != OPAQUE_MARKER

    @property
    def is_opaque_marker(self) -> bool:
        _, name = paths.parent_and_name(self.path)
        return name == OPAQUE_MARKER


class LayerArchive:
    """An immutable, canonical archive of one layer's contents."""

    def __init__(self, entries: Iterable[TarEntry]) -> None:
        self._entries: Tuple[TarEntry, ...] = tuple(
            sorted(entries, key=lambda e: e.path)
        )
        self._digest: Optional[Digest] = None
        # Extraction templates: the archive is immutable, so the trees
        # its entries unpack to are fixed — build each once, then hand
        # every caller an independent deep clone (blobs stay shared).
        # A fleet of nodes pulling the same layer pays the entry-by-entry
        # unpack once instead of once per node.
        self._extract_template: Optional[FileSystemTree] = None
        self._diff_template: Optional[FileSystemTree] = None
        # Size model results are pure in the entry list; cache them.
        self._uncompressed_size: Optional[int] = None
        self._compressed_size: Optional[int] = None

    # -- construction ----------------------------------------------------

    @classmethod
    def from_tree(cls, tree: FileSystemTree, top: str = "/") -> "LayerArchive":
        """Archive every node under ``top``.

        Whiteout inodes become ``.wh.<name>`` file entries; opaque
        directories additionally emit an opaque marker inside themselves.
        Hard-linked files are archived as independent file entries sharing
        a blob (tar hardlink entries are an optimization we do not need
        for identity or sizing fidelity).
        """
        entries: List[TarEntry] = []
        for path, node in tree.walk(top, include_whiteouts=True):
            rel = _relative(path, top)
            if node.is_whiteout:
                parent, name = paths.parent_and_name(rel)
                entries.append(
                    TarEntry(
                        path=paths.join(parent, WHITEOUT_PREFIX + name),
                        kind=FileKind.FILE,
                        mode=0o0,
                        uid=0,
                        gid=0,
                        blob=Blob.from_bytes(b""),
                    )
                )
                continue
            entries.append(_entry_for(rel, node))
            if node.is_dir and node.opaque:
                entries.append(
                    TarEntry(
                        path=paths.join(rel, OPAQUE_MARKER),
                        kind=FileKind.FILE,
                        mode=0o0,
                        uid=0,
                        gid=0,
                        blob=Blob.from_bytes(b""),
                    )
                )
        return cls(entries)

    # -- identity & sizes --------------------------------------------------

    @property
    def entries(self) -> Tuple[TarEntry, ...]:
        return self._entries

    @property
    def digest(self) -> Digest:
        """SHA-256 digest identifying this layer (Docker's layer digest)."""
        if self._digest is None:
            tokens: List[str] = []
            for entry in self._entries:
                tokens.extend(entry.identity_tokens())
            self._digest = sha256_tokens(tokens)
        return self._digest

    @property
    def uncompressed_size(self) -> int:
        """Total archive bytes before compression."""
        if self._uncompressed_size is None:
            self._uncompressed_size = (
                sum(entry.archived_size for entry in self._entries)
                + 2 * _TAR_BLOCK
            )
        return self._uncompressed_size

    @property
    def compressed_size(self) -> int:
        """Archive bytes after (modelled) gzip compression.

        Headers compress extremely well (~95%); content compresses per
        the blob compressibility model.
        """
        if self._compressed_size is None:
            header_bytes = (
                self.uncompressed_size
                - sum(entry.content_size for entry in self._entries)
            )
            compressed = round(header_bytes * 0.05)
            for entry in self._entries:
                if entry.blob is not None:
                    compressed += blob_compressed_size(entry.blob)
            self._compressed_size = max(_TAR_BLOCK // 8, compressed)
        return self._compressed_size

    @property
    def file_count(self) -> int:
        return sum(1 for e in self._entries if e.kind is FileKind.FILE)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LayerArchive):
            return NotImplemented
        return self.digest == other.digest

    def __hash__(self) -> int:
        return hash(self.digest)

    def __repr__(self) -> str:
        return (
            f"LayerArchive(entries={len(self._entries)}, "
            f"digest={self.digest.short()})"
        )

    # -- application -------------------------------------------------------

    def apply_to(self, tree: FileSystemTree) -> FileSystemTree:
        """Apply this layer onto ``tree`` (Docker layer extraction rules).

        Whiteout entries delete the named path; opaque markers clear the
        directory's prior contents; other entries overwrite.  Returns the
        same tree for chaining.
        """
        for entry in self._entries:
            parent_rel, name = paths.parent_and_name(entry.path)
            if entry.is_opaque_marker:
                if tree.exists(parent_rel) and tree.stat(parent_rel).is_dir:
                    for child in tree.listdir(parent_rel):
                        tree.remove(paths.join(parent_rel, child), recursive=True)
                continue
            if entry.is_whiteout:
                victim = paths.join(parent_rel, name[len(WHITEOUT_PREFIX) :])
                if tree.exists(victim, follow_symlinks=False):
                    tree.remove(victim, recursive=True)
                continue
            tree.mkdir(parent_rel, parents=True, exist_ok=True)
            meta = Metadata(mode=entry.mode, uid=entry.uid, gid=entry.gid)
            if entry.kind is FileKind.DIRECTORY:
                if tree.exists(entry.path, follow_symlinks=False):
                    existing = tree.stat(entry.path, follow_symlinks=False)
                    if not existing.is_dir:
                        tree.remove(entry.path)
                        tree.mkdir(entry.path, meta=meta)
                else:
                    tree.mkdir(entry.path, meta=meta)
            elif entry.kind is FileKind.SYMLINK:
                if tree.exists(entry.path, follow_symlinks=False):
                    tree.remove(entry.path, recursive=True)
                assert entry.symlink_target is not None
                tree.symlink(entry.path, entry.symlink_target, meta=meta)
            else:
                if tree.exists(entry.path, follow_symlinks=False):
                    existing = tree.stat(entry.path, follow_symlinks=False)
                    if existing.is_dir:
                        tree.remove(entry.path, recursive=True)
                assert entry.blob is not None
                tree.write_file(entry.path, entry.blob, meta=meta)
        return tree

    def extract(self) -> FileSystemTree:
        """Unpack this archive into a fresh tree.

        Each call returns an independent tree (cloned from a one-time
        template; clones get fresh inode numbers and copied metadata,
        exactly as a re-extraction would).
        """
        if self._extract_template is None:
            self._extract_template = self.apply_to(FileSystemTree())
        return self._extract_template.clone()

    def extract_diff(self) -> FileSystemTree:
        """Unpack into a *diff tree*, preserving whiteouts as inodes.

        Layer application (:meth:`apply_to`) executes deletions; a graph
        driver instead needs the layer as an overlay *lower* directory in
        which whiteouts and opaque flags survive as filesystem objects.
        This is what Overlay2 keeps in each layer's ``diff/`` directory.

        Template-cached like :meth:`extract`: callers get independent
        clones of a one-time unpack.
        """
        if self._diff_template is None:
            self._diff_template = self._extract_diff_uncached()
        return self._diff_template.clone()

    def _extract_diff_uncached(self) -> FileSystemTree:
        tree = FileSystemTree()
        for entry in self._entries:
            parent_rel, name = paths.parent_and_name(entry.path)
            tree.mkdir(parent_rel, parents=True, exist_ok=True)
            if entry.is_opaque_marker:
                tree.set_opaque(parent_rel)
                continue
            if entry.is_whiteout:
                victim = paths.join(parent_rel, name[len(WHITEOUT_PREFIX) :])
                tree.whiteout(victim)
                continue
            meta = Metadata(mode=entry.mode, uid=entry.uid, gid=entry.gid)
            if entry.kind is FileKind.DIRECTORY:
                created = tree.mkdir(entry.path, parents=True, exist_ok=True)
                created.meta = meta
            elif entry.kind is FileKind.SYMLINK:
                assert entry.symlink_target is not None
                tree.symlink(entry.path, entry.symlink_target, meta=meta)
            else:
                assert entry.blob is not None
                tree.write_file(entry.path, entry.blob, meta=meta)
        return tree


def _entry_for(path: str, node: Inode) -> TarEntry:
    if node.is_dir:
        return TarEntry(
            path=path,
            kind=FileKind.DIRECTORY,
            mode=node.meta.mode,
            uid=node.meta.uid,
            gid=node.meta.gid,
        )
    if node.is_symlink:
        return TarEntry(
            path=path,
            kind=FileKind.SYMLINK,
            mode=node.meta.mode,
            uid=node.meta.uid,
            gid=node.meta.gid,
            symlink_target=node.symlink_target,
        )
    if node.is_file:
        return TarEntry(
            path=path,
            kind=FileKind.FILE,
            mode=node.meta.mode,
            uid=node.meta.uid,
            gid=node.meta.gid,
            blob=node.blob,
        )
    raise VfsError(f"cannot archive node kind {node.kind!r} at {path!r}")


def _relative(path: str, top: str) -> str:
    if top in ("", "/"):
        return path
    top_norm = paths.normalize(top)
    if not paths.is_ancestor(top_norm, path):
        raise VfsError(f"{path!r} is not under {top_norm!r}")
    suffix = path[len(top_norm) :]
    return paths.normalize(suffix or "/")
