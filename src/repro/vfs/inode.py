"""Inodes for the virtual filesystem."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.blob import Blob
from repro.common.errors import VfsError

_inode_numbers = itertools.count(1)


class FileKind(enum.Enum):
    """The node kinds found in container image filesystems."""

    FILE = "file"
    DIRECTORY = "dir"
    SYMLINK = "symlink"
    #: A whiteout marks a path as deleted by an upper layer.  Whiteouts
    #: only appear inside layer-diff trees and writable overlay layers,
    #: never in a merged view.
    WHITEOUT = "whiteout"


@dataclass
class Metadata:
    """POSIX-ish metadata carried by every inode.

    Docker preserves ownership and permissions in layer tarballs, and the
    Gear index must retain them (the index holds "metadata [containing]
    the structure of the entire directory tree", §III-B).
    """

    mode: int = 0o644
    uid: int = 0
    gid: int = 0
    mtime: float = 0.0
    xattrs: Dict[str, str] = field(default_factory=dict)

    def copy(self) -> "Metadata":
        return Metadata(
            mode=self.mode,
            uid=self.uid,
            gid=self.gid,
            mtime=self.mtime,
            xattrs=dict(self.xattrs),
        )


class Inode:
    """One filesystem object; directory entries reference inodes.

    Hard links are modelled exactly as on a real filesystem: multiple
    directory entries pointing at the *same* :class:`Inode`, whose
    ``nlink`` counts the references.  The Gear File Viewer's shared-cache
    design (§III-D2) depends on this — fetched Gear files are hard-linked
    from the level-1 cache into container indexes.
    """

    __slots__ = ("ino", "kind", "meta", "blob", "symlink_target", "children", "nlink", "opaque")

    def __init__(
        self,
        kind: FileKind,
        *,
        meta: Optional[Metadata] = None,
        blob: Optional[Blob] = None,
        symlink_target: Optional[str] = None,
    ) -> None:
        self.ino: int = next(_inode_numbers)
        self.kind = kind
        self.meta = meta if meta is not None else Metadata()
        self.blob: Optional[Blob] = None
        self.symlink_target: Optional[str] = None
        self.children: Optional[Dict[str, "Inode"]] = None
        self.nlink = 1
        #: Opaque directories hide all lower-layer content (overlayfs's
        #: ``trusted.overlay.opaque`` xattr).
        self.opaque = False

        if kind is FileKind.FILE:
            self.blob = blob if blob is not None else Blob.from_bytes(b"")
        elif blob is not None:
            raise VfsError(f"{kind.value} inode cannot carry a blob")
        if kind is FileKind.DIRECTORY:
            self.children = {}
            self.meta.mode = meta.mode if meta is not None else 0o755
        if kind is FileKind.SYMLINK:
            if not symlink_target:
                raise VfsError("symlink inode requires a target")
            self.symlink_target = symlink_target
        elif symlink_target is not None:
            raise VfsError(f"{kind.value} inode cannot carry a symlink target")

    # -- classification helpers ----------------------------------------

    @property
    def is_file(self) -> bool:
        return self.kind is FileKind.FILE

    @property
    def is_dir(self) -> bool:
        return self.kind is FileKind.DIRECTORY

    @property
    def is_symlink(self) -> bool:
        return self.kind is FileKind.SYMLINK

    @property
    def is_whiteout(self) -> bool:
        return self.kind is FileKind.WHITEOUT

    @property
    def size(self) -> int:
        """Content size: blob length for files, 0 for everything else."""
        if self.is_file:
            assert self.blob is not None
            return self.blob.size
        return 0

    # -- structural copy -------------------------------------------------

    def clone(self, *, deep: bool = True) -> "Inode":
        """Copy this inode (new inode number, nlink reset to 1).

        Directories clone their subtree when ``deep``; files share the
        (immutable) blob.  Used by copy-up, layer application, and the
        template caches, which makes this a deploy-path hot spot — the
        copy assigns slots directly instead of re-running ``__init__``'s
        validation (the source inode already passed it).
        """
        copy = Inode.__new__(Inode)
        copy.ino = next(_inode_numbers)
        copy.kind = self.kind
        meta = self.meta
        copy.meta = Metadata(
            mode=meta.mode, uid=meta.uid, gid=meta.gid,
            mtime=meta.mtime, xattrs=dict(meta.xattrs),
        )
        copy.blob = self.blob
        copy.symlink_target = self.symlink_target
        copy.nlink = 1
        copy.opaque = self.opaque
        if self.kind is FileKind.DIRECTORY:
            children = self.children
            assert children is not None
            copy.children = (
                {name: child.clone(deep=True) for name, child in children.items()}
                if deep
                else {}
            )
        else:
            copy.children = None
        return copy

    def __repr__(self) -> str:
        detail = ""
        if self.is_file:
            detail = f", size={self.size}"
        elif self.is_symlink:
            detail = f", target={self.symlink_target!r}"
        elif self.is_dir:
            assert self.children is not None
            detail = f", entries={len(self.children)}"
        return f"Inode(#{self.ino}, {self.kind.value}{detail})"
