"""A mutable filesystem tree with POSIX-style path operations."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.blob import Blob
from repro.common.errors import (
    FileExistsVfsError,
    IsADirectoryVfsError,
    NotADirectoryVfsError,
    ReadOnlyVfsError,
    SymlinkLoopError,
    VfsError,
)
from repro.common.errors import NotFoundError
from repro.vfs import paths
from repro.vfs.inode import FileKind, Inode, Metadata

#: Maximum symlink traversals during path resolution (Linux uses 40).
_MAX_SYMLINK_DEPTH = 40


class FileSystemTree:
    """An in-memory filesystem rooted at ``/``.

    The tree is the unit everything else manipulates: Docker layers are
    diff trees, images unpack into trees, the Gear converter walks a tree,
    and overlay mounts merge trees.  Mutations go through path-based
    methods mirroring the POSIX calls the paper's components issue.
    """

    def __init__(self, *, read_only: bool = False) -> None:
        self.root = Inode(FileKind.DIRECTORY, meta=Metadata(mode=0o755))
        self._read_only = read_only

    # -- mutability ------------------------------------------------------

    @property
    def read_only(self) -> bool:
        return self._read_only

    def freeze(self) -> "FileSystemTree":
        """Mark the tree read-only (image layers are immutable once built)."""
        self._read_only = True
        return self

    def _check_writable(self) -> None:
        if self._read_only:
            raise ReadOnlyVfsError("filesystem tree is read-only")

    # -- resolution ------------------------------------------------------

    def _lookup(
        self, path: str, *, follow_symlinks: bool = True, _depth: int = 0
    ) -> Inode:
        if _depth > _MAX_SYMLINK_DEPTH:
            raise SymlinkLoopError(f"too many symbolic links resolving {path!r}")
        parts = paths.split(path)
        node = self.root
        for index, name in enumerate(parts):
            if not node.is_dir:
                raise NotADirectoryVfsError(
                    f"{'/' + '/'.join(parts[:index])!r} is not a directory"
                )
            assert node.children is not None
            child = node.children.get(name)
            if child is None or child.is_whiteout:
                raise NotFoundError(f"no such file or directory: {path!r}")
            is_last = index == len(parts) - 1
            if child.is_symlink and (follow_symlinks or not is_last):
                assert child.symlink_target is not None
                link_path = "/" + "/".join(parts[: index + 1])
                target = paths.resolve_symlink_target(
                    link_path, child.symlink_target
                )
                rest = parts[index + 1 :]
                full = paths.join(target, *rest) if rest else target
                return self._lookup(
                    full, follow_symlinks=follow_symlinks, _depth=_depth + 1
                )
            node = child
        return node

    def _lookup_parent(self, path: str) -> Tuple[Inode, str]:
        """Resolve the parent directory of ``path`` and the final name."""
        parent_path, name = paths.parent_and_name(path)
        parent = self._lookup(parent_path, follow_symlinks=True)
        if not parent.is_dir:
            raise NotADirectoryVfsError(f"{parent_path!r} is not a directory")
        return parent, name

    # -- queries ---------------------------------------------------------

    def exists(self, path: str, *, follow_symlinks: bool = True) -> bool:
        """True when the path resolves to a live node."""
        try:
            self._lookup(path, follow_symlinks=follow_symlinks)
            return True
        except (NotFoundError, NotADirectoryVfsError, SymlinkLoopError):
            return False

    def stat(self, path: str, *, follow_symlinks: bool = True) -> Inode:
        """Return the inode at ``path`` (raises :class:`NotFoundError`)."""
        return self._lookup(path, follow_symlinks=follow_symlinks)

    def is_dir(self, path: str) -> bool:
        try:
            return self._lookup(path).is_dir
        except (NotFoundError, NotADirectoryVfsError, SymlinkLoopError):
            return False

    def is_file(self, path: str) -> bool:
        try:
            return self._lookup(path).is_file
        except (NotFoundError, NotADirectoryVfsError, SymlinkLoopError):
            return False

    def read_blob(self, path: str) -> Blob:
        """Return the blob of the regular file at ``path``."""
        node = self._lookup(path)
        if node.is_dir:
            raise IsADirectoryVfsError(f"{path!r} is a directory")
        if not node.is_file:
            raise VfsError(f"{path!r} is not a regular file")
        assert node.blob is not None
        return node.blob

    def read_bytes(self, path: str) -> bytes:
        """Materialize and return the file's content bytes."""
        return self.read_blob(path).materialize()

    def readlink(self, path: str) -> str:
        """Return the target of the symlink at ``path``."""
        node = self._lookup(path, follow_symlinks=False)
        if not node.is_symlink:
            raise VfsError(f"{path!r} is not a symbolic link")
        assert node.symlink_target is not None
        return node.symlink_target

    def listdir(self, path: str = "/") -> List[str]:
        """Names in the directory at ``path``, sorted, whiteouts excluded."""
        node = self._lookup(path)
        if not node.is_dir:
            raise NotADirectoryVfsError(f"{path!r} is not a directory")
        assert node.children is not None
        return sorted(
            name for name, child in node.children.items() if not child.is_whiteout
        )

    def walk(
        self, top: str = "/", *, include_whiteouts: bool = False
    ) -> Iterator[Tuple[str, Inode]]:
        """Yield ``(path, inode)`` for every node under ``top``, depth-first.

        The top directory itself is not yielded.  Children are visited in
        sorted name order so walks are deterministic.
        """
        node = self._lookup(top, follow_symlinks=False)
        if not node.is_dir:
            raise NotADirectoryVfsError(f"{top!r} is not a directory")
        base = paths.normalize(top)
        yield from self._walk_dir(base, node, include_whiteouts)

    def _walk_dir(
        self, dir_path: str, dir_node: Inode, include_whiteouts: bool
    ) -> Iterator[Tuple[str, Inode]]:
        assert dir_node.children is not None
        for name in sorted(dir_node.children):
            child = dir_node.children[name]
            if child.is_whiteout and not include_whiteouts:
                continue
            child_path = paths.join(dir_path, name)
            yield child_path, child
            if child.is_dir:
                yield from self._walk_dir(child_path, child, include_whiteouts)

    def iter_files(self, top: str = "/") -> Iterator[Tuple[str, Inode]]:
        """Yield ``(path, inode)`` for every regular file under ``top``."""
        for path, node in self.walk(top):
            if node.is_file:
                yield path, node

    def total_file_bytes(self, top: str = "/") -> int:
        """Sum of regular-file sizes under ``top`` (hard links counted once
        per inode)."""
        seen: Dict[int, int] = {}
        for _, node in self.iter_files(top):
            seen[node.ino] = node.size
        return sum(seen.values())

    def count_nodes(self, top: str = "/") -> int:
        """Number of nodes (files, dirs, symlinks) under ``top``."""
        return sum(1 for _ in self.walk(top))

    # -- mutations ---------------------------------------------------------

    def mkdir(
        self,
        path: str,
        *,
        parents: bool = False,
        exist_ok: bool = False,
        meta: Optional[Metadata] = None,
    ) -> Inode:
        """Create a directory; with ``parents`` create missing ancestors."""
        self._check_writable()
        parts = paths.split(path)
        if not parts:
            if exist_ok:
                return self.root
            raise FileExistsVfsError("root directory always exists")
        node = self.root
        for index, name in enumerate(parts):
            assert node.children is not None
            child = node.children.get(name)
            is_last = index == len(parts) - 1
            if child is None or child.is_whiteout:
                if not is_last and not parents:
                    raise NotFoundError(
                        f"missing ancestor {'/' + '/'.join(parts[: index + 1])!r}"
                    )
                child = Inode(
                    FileKind.DIRECTORY,
                    meta=(meta.copy() if meta is not None and is_last else None),
                )
                node.children[name] = child
            elif is_last:
                if not child.is_dir:
                    raise FileExistsVfsError(f"{path!r} exists and is not a directory")
                if not exist_ok:
                    raise FileExistsVfsError(f"directory exists: {path!r}")
            elif not child.is_dir:
                raise NotADirectoryVfsError(
                    f"{'/' + '/'.join(parts[: index + 1])!r} is not a directory"
                )
            node = child
        return node

    def write_file(
        self,
        path: str,
        content: "Blob | bytes | str",
        *,
        meta: Optional[Metadata] = None,
        parents: bool = False,
    ) -> Inode:
        """Create or replace the regular file at ``path``."""
        self._check_writable()
        blob = _coerce_blob(content)
        if parents:
            parent_path, _ = paths.parent_and_name(path)
            self.mkdir(parent_path, parents=True, exist_ok=True)
        parent, name = self._lookup_parent(path)
        assert parent.children is not None
        existing = parent.children.get(name)
        if existing is not None and existing.is_dir:
            raise IsADirectoryVfsError(f"{path!r} is a directory")
        inode = Inode(FileKind.FILE, meta=meta, blob=blob)
        if existing is not None:
            _drop_link(existing)
        parent.children[name] = inode
        return inode

    def symlink(
        self, path: str, target: str, *, meta: Optional[Metadata] = None
    ) -> Inode:
        """Create a symbolic link at ``path`` pointing to ``target``."""
        self._check_writable()
        parent, name = self._lookup_parent(path)
        assert parent.children is not None
        existing = parent.children.get(name)
        if existing is not None and not existing.is_whiteout:
            raise FileExistsVfsError(f"path exists: {path!r}")
        inode = Inode(FileKind.SYMLINK, meta=meta, symlink_target=target)
        parent.children[name] = inode
        return inode

    def hardlink(self, new_path: str, existing_path: str) -> Inode:
        """Create a hard link: a new directory entry for an existing file."""
        self._check_writable()
        target = self._lookup(existing_path)
        if target.is_dir:
            raise IsADirectoryVfsError("cannot hard-link a directory")
        parent, name = self._lookup_parent(new_path)
        assert parent.children is not None
        existing = parent.children.get(name)
        if existing is not None and not existing.is_whiteout:
            raise FileExistsVfsError(f"path exists: {new_path!r}")
        target.nlink += 1
        parent.children[name] = target
        return target

    def link_inode(self, path: str, inode: Inode, *, replace: bool = False) -> Inode:
        """Install an existing inode at ``path`` (hard-link semantics).

        This is how the Gear File Viewer links a cached Gear file into an
        index without copying content.
        """
        self._check_writable()
        if inode.is_dir:
            raise IsADirectoryVfsError("cannot link a directory inode")
        parent, name = self._lookup_parent(path)
        assert parent.children is not None
        existing = parent.children.get(name)
        if existing is not None and not existing.is_whiteout:
            if not replace:
                raise FileExistsVfsError(f"path exists: {path!r}")
            _drop_link(existing)
        inode.nlink += 1
        parent.children[name] = inode
        return inode

    def remove(self, path: str, *, recursive: bool = False) -> None:
        """Remove the node at ``path`` (``recursive`` required for dirs)."""
        self._check_writable()
        parent, name = self._lookup_parent(path)
        assert parent.children is not None
        node = parent.children.get(name)
        if node is None or node.is_whiteout:
            raise NotFoundError(f"no such file or directory: {path!r}")
        if node.is_dir:
            assert node.children is not None
            live = [c for c in node.children.values() if not c.is_whiteout]
            if live and not recursive:
                raise VfsError(f"directory not empty: {path!r}")
        _drop_link(node)
        del parent.children[name]

    def whiteout(self, path: str) -> Inode:
        """Place a whiteout entry at ``path`` (replacing any node there)."""
        self._check_writable()
        parent, name = self._lookup_parent(path)
        assert parent.children is not None
        existing = parent.children.get(name)
        if existing is not None:
            _drop_link(existing)
        inode = Inode(FileKind.WHITEOUT)
        parent.children[name] = inode
        return inode

    def set_opaque(self, path: str, opaque: bool = True) -> None:
        """Mark the directory at ``path`` opaque (hides lower layers)."""
        self._check_writable()
        node = self._lookup(path)
        if not node.is_dir:
            raise NotADirectoryVfsError(f"{path!r} is not a directory")
        node.opaque = opaque

    # -- whole-tree operations --------------------------------------------

    def clone(self) -> "FileSystemTree":
        """Deep-copy the tree (blobs shared, structure copied)."""
        copy = FileSystemTree()
        copy.root = self.root.clone(deep=True)
        return copy

    def __repr__(self) -> str:
        return (
            f"FileSystemTree(nodes={self.count_nodes()}, "
            f"bytes={self.total_file_bytes()}, read_only={self._read_only})"
        )


def _coerce_blob(content: "Blob | bytes | str") -> Blob:
    if isinstance(content, Blob):
        return content
    if isinstance(content, bytes):
        return Blob.from_bytes(content)
    if isinstance(content, str):
        return Blob.from_text(content)
    raise TypeError(f"unsupported content type: {type(content).__name__}")


def _drop_link(node: Inode) -> None:
    node.nlink -= 1
