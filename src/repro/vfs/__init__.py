"""An in-memory POSIX-like virtual filesystem.

This substrate stands in for the Linux filesystems (EXT4 + overlayfs) the
paper's prototype runs on.  It provides:

* :mod:`repro.vfs.inode` — inodes with the node kinds container images
  actually contain (regular files, directories, symlinks, hard links,
  whiteouts);
* :mod:`repro.vfs.tree` — a mutable filesystem tree with POSIX-style path
  operations;
* :mod:`repro.vfs.tar` — deterministic tar-like archive serialization used
  for Docker layer tarballs;
* :mod:`repro.vfs.overlay` — a full union-mount implementation with
  copy-up, whiteouts, and opaque directories, mirroring Overlay2 semantics
  that both the Docker graph driver and the Gear File Viewer build on.
"""

from repro.vfs.inode import FileKind, Inode, Metadata
from repro.vfs.overlay import OverlayMount
from repro.vfs.tree import FileSystemTree
from repro.vfs.tar import LayerArchive, TarEntry

__all__ = [
    "FileKind",
    "Inode",
    "Metadata",
    "FileSystemTree",
    "OverlayMount",
    "LayerArchive",
    "TarEntry",
]
