"""Union mounts with Overlay2 semantics.

An :class:`OverlayMount` merges a stack of read-only *lower* trees with one
writable *upper* tree, implementing the behaviour of Linux overlayfs that
Docker's Overlay2 graph driver relies on (§II-C) and that the Gear File
Viewer extends (§III-D2):

* lookup resolves top-down: the upper layer shadows lowers, whiteouts hide
  lower entries, opaque directories mask all lower directory contents;
* directories merge across layers; non-directories shadow;
* writes go to the upper layer (files are copied up first when modified);
* deletes of lower-layer entries place whiteouts in the upper layer;
* symlinks resolve against the *merged* namespace, as on a real mount.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.blob import Blob
from repro.common.errors import (
    FileExistsVfsError,
    IsADirectoryVfsError,
    NotADirectoryVfsError,
    NotFoundError,
    SymlinkLoopError,
    VfsError,
)
from repro.vfs import paths
from repro.vfs.inode import FileKind, Inode, Metadata
from repro.vfs.tree import FileSystemTree

_MAX_SYMLINK_DEPTH = 40


@dataclass
class MountStats:
    """Counters the deployment experiments read off a mount."""

    lookups: int = 0
    reads: int = 0
    bytes_read: int = 0
    copy_ups: int = 0
    whiteouts_created: int = 0
    #: Inodes touched since mount — drives the unmount-cost model for the
    #: short-running experiment (Fig. 11b): Gear "only needs to destroy
    #: the inode caches of required files".
    inodes_touched: int = 0


class OverlayMount:
    """A merged read-write view over ``upper`` + ``lowers``.

    ``lowers`` are ordered **top-most first** (the overlayfs ``lowerdir``
    convention): ``lowers[0]`` shadows ``lowers[1]`` and so on.  The upper
    tree shadows them all and receives every mutation.
    """

    def __init__(
        self,
        lowers: Sequence[FileSystemTree],
        upper: Optional[FileSystemTree] = None,
    ) -> None:
        self.lowers: Tuple[FileSystemTree, ...] = tuple(lowers)
        self.upper: FileSystemTree = upper if upper is not None else FileSystemTree()
        if self.upper.read_only:
            raise VfsError("upper layer must be writable")
        self.stats = MountStats()
        self._touched: Set[int] = set()

    # ------------------------------------------------------------------
    # resolution machinery
    # ------------------------------------------------------------------

    def _layer_roots(self) -> List[Inode]:
        return [self.upper.root] + [tree.root for tree in self.lowers]

    def _dir_stack(self, parts: Sequence[str]) -> List[Inode]:
        """Directory inodes contributing to the merged dir at ``parts``.

        Returns the contributing inodes top-most first; empty when the
        path is not a merged directory.  Raises nothing — callers decide
        how to report absence.
        """
        current = self._layer_roots()
        for name in parts:
            merged: List[Inode] = []
            for dir_inode in current:
                assert dir_inode.children is not None
                child = dir_inode.children.get(name)
                if child is None:
                    continue
                if child.is_whiteout:
                    break
                if not child.is_dir:
                    # A non-directory shadows everything below; if it is
                    # the top-most entry the path is not a directory.
                    break
                merged.append(child)
                if child.opaque:
                    break
            current = merged
            if not current:
                return []
        return current

    def _visible_child(
        self, dir_parts: Sequence[str], name: str
    ) -> Optional[Inode]:
        """Top-most visible node named ``name`` in the merged directory."""
        for dir_inode in self._dir_stack(dir_parts):
            assert dir_inode.children is not None
            child = dir_inode.children.get(name)
            if child is None:
                continue
            if child.is_whiteout:
                return None
            return child
        return None

    def _resolve(
        self, path: str, *, follow_symlinks: bool = True
    ) -> Tuple[Inode, List[str]]:
        """Resolve ``path`` in the merged namespace.

        Returns the visible inode and the fully-resolved component list.
        """
        self.stats.lookups += 1
        parts = paths.split(path)
        resolved: List[str] = []
        depth = 0
        index = 0
        while index < len(parts):
            name = parts[index]
            node = self._visible_child(resolved, name)
            if node is None:
                raise NotFoundError(f"no such file or directory: {path!r}")
            is_last = index == len(parts) - 1
            if node.is_symlink and (follow_symlinks or not is_last):
                depth += 1
                if depth > _MAX_SYMLINK_DEPTH:
                    raise SymlinkLoopError(f"too many symlinks: {path!r}")
                assert node.symlink_target is not None
                link_path = "/" + "/".join(resolved + [name])
                target = paths.resolve_symlink_target(
                    link_path, node.symlink_target
                )
                remainder = parts[index + 1 :]
                parts = paths.split(target) + list(remainder)
                resolved = []
                index = 0
                continue
            if not is_last and not node.is_dir:
                raise NotADirectoryVfsError(
                    f"{'/' + '/'.join(resolved + [name])!r} is not a directory"
                )
            resolved.append(name)
            index += 1
        if not parts:
            stack = self._dir_stack([])
            return stack[0], []
        self._touched.add(node.ino)
        self.stats.inodes_touched = len(self._touched)
        return node, resolved

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------

    def exists(self, path: str, *, follow_symlinks: bool = True) -> bool:
        try:
            self._resolve(path, follow_symlinks=follow_symlinks)
            return True
        except (NotFoundError, NotADirectoryVfsError, SymlinkLoopError):
            return False

    def stat(self, path: str, *, follow_symlinks: bool = True) -> Inode:
        node, _ = self._resolve(path, follow_symlinks=follow_symlinks)
        return node

    def is_dir(self, path: str) -> bool:
        try:
            return self.stat(path).is_dir
        except (NotFoundError, NotADirectoryVfsError, SymlinkLoopError):
            return False

    def readlink(self, path: str) -> str:
        node, _ = self._resolve(path, follow_symlinks=False)
        if not node.is_symlink:
            raise VfsError(f"{path!r} is not a symbolic link")
        assert node.symlink_target is not None
        return node.symlink_target

    def read_blob(self, path: str) -> Blob:
        """Return the blob of the regular file at ``path``.

        Subclasses (the Gear File Viewer) hook this to fault in content.
        """
        node, resolved = self._resolve(path)
        if node.is_dir:
            raise IsADirectoryVfsError(f"{path!r} is a directory")
        if not node.is_file:
            raise VfsError(f"{path!r} is not a regular file")
        node = self._materialize(node, resolved)
        assert node.blob is not None
        self.stats.reads += 1
        self.stats.bytes_read += node.blob.size
        return node.blob

    def _materialize(self, node: Inode, resolved: Sequence[str]) -> Inode:
        """Hook for lazy-content mounts; identity in the base class.

        The Gear File Viewer overrides this to fault fingerprint stubs in
        from the shared cache or the Gear Registry.
        """
        return node

    def read_bytes(self, path: str) -> bytes:
        return self.read_blob(path).materialize()

    def listdir(self, path: str = "/") -> List[str]:
        """Merged directory listing with whiteout/opaque rules applied."""
        node, resolved = self._resolve(path)
        if not node.is_dir:
            raise NotADirectoryVfsError(f"{path!r} is not a directory")
        names: Dict[str, bool] = {}
        hidden: Set[str] = set()
        for dir_inode in self._dir_stack(resolved):
            assert dir_inode.children is not None
            for name, child in dir_inode.children.items():
                if name in hidden or name in names:
                    continue
                if child.is_whiteout:
                    hidden.add(name)
                else:
                    names[name] = True
        return sorted(names)

    def walk(self, top: str = "/") -> Iterator[Tuple[str, Inode]]:
        """Depth-first walk of the merged view, sorted for determinism."""
        top_norm = paths.normalize(top)
        node, _ = self._resolve(top_norm)
        if not node.is_dir:
            raise NotADirectoryVfsError(f"{top!r} is not a directory")
        yield from self._walk_merged(top_norm)

    def _walk_merged(self, dir_path: str) -> Iterator[Tuple[str, Inode]]:
        for name in sorted(self.listdir(dir_path)):
            child_path = paths.join(dir_path, name)
            child = self.stat(child_path, follow_symlinks=False)
            yield child_path, child
            if child.is_dir:
                yield from self._walk_merged(child_path)

    def to_tree(self) -> FileSystemTree:
        """Materialize the merged view as a standalone tree."""
        tree = FileSystemTree()
        for path, node in self.walk("/"):
            if node.is_dir:
                directory = tree.mkdir(path, parents=True, exist_ok=True)
                directory.meta = node.meta.copy()
            elif node.is_symlink:
                assert node.symlink_target is not None
                tree.symlink(path, node.symlink_target, meta=node.meta.copy())
            elif node.is_file:
                tree.write_file(path, node.blob, meta=node.meta.copy(), parents=True)
        return tree

    # ------------------------------------------------------------------
    # write side
    # ------------------------------------------------------------------

    def _ensure_upper_dirs(self, dir_parts: Sequence[str]) -> None:
        """Create the ancestor chain in the upper layer (directory copy-up).

        Each ancestor must be a directory in the merged view; its metadata
        is copied from the merged inode, as overlayfs copy-up does.
        """
        so_far: List[str] = []
        for name in dir_parts:
            so_far.append(name)
            merged = self._visible_child(so_far[:-1], name)
            if merged is None:
                raise NotFoundError(
                    f"missing ancestor: {'/' + '/'.join(so_far)!r}"
                )
            if not merged.is_dir:
                raise NotADirectoryVfsError(
                    f"{'/' + '/'.join(so_far)!r} is not a directory"
                )
            upper_path = "/" + "/".join(so_far)
            if not self.upper.exists(upper_path, follow_symlinks=False):
                created = self.upper.mkdir(upper_path, exist_ok=True)
                created.meta = merged.meta.copy()
            elif not self.upper.stat(upper_path, follow_symlinks=False).is_dir:
                raise NotADirectoryVfsError(
                    f"upper entry {upper_path!r} is not a directory"
                )

    def write_file(
        self,
        path: str,
        content: "Blob | bytes | str",
        *,
        meta: Optional[Metadata] = None,
        parents: bool = False,
    ) -> Inode:
        """Create or overwrite a regular file; the write lands in upper."""
        if parents:
            parent_path, _ = paths.parent_and_name(path)
            self.mkdir(parent_path, parents=True, exist_ok=True)
        _, resolved_parent = self._resolve_parent(path)
        _, name = paths.parent_and_name(path)
        existing = self._visible_child(resolved_parent, name)
        if existing is not None and existing.is_dir:
            raise IsADirectoryVfsError(f"{path!r} is a directory")
        self._ensure_upper_dirs(resolved_parent)
        upper_path = "/" + "/".join(list(resolved_parent) + [name])
        return self.upper.write_file(upper_path, content, meta=meta)

    def append_file(self, path: str, extra: bytes) -> Inode:
        """Append to a file, copying it up first if it lives in a lower."""
        original = self.read_blob(path)
        self._note_copy_up(path)
        return self.write_file(path, original.materialize() + extra)

    def copy_up(self, path: str) -> Inode:
        """Explicitly copy a lower file into the upper layer unchanged."""
        node, resolved = self._resolve(path, follow_symlinks=False)
        if node.is_dir:
            raise IsADirectoryVfsError("copy-up of directories is implicit")
        upper_path = "/" + "/".join(resolved)
        if self.upper.exists(upper_path, follow_symlinks=False):
            return self.upper.stat(upper_path, follow_symlinks=False)
        self._ensure_upper_dirs(resolved[:-1])
        self.stats.copy_ups += 1
        if node.is_symlink:
            assert node.symlink_target is not None
            return self.upper.symlink(
                upper_path, node.symlink_target, meta=node.meta.copy()
            )
        # Lazy-content mounts must fault the real bytes in before the
        # copy (a Gear stub's placeholder must never be copied up).
        node = self._materialize(node, resolved)
        assert node.blob is not None
        return self.upper.write_file(upper_path, node.blob, meta=node.meta.copy())

    def mkdir(
        self, path: str, *, parents: bool = False, exist_ok: bool = False
    ) -> Inode:
        """Create a directory in the merged view (lands in upper)."""
        parts = paths.split(path)
        if not parts:
            if exist_ok:
                return self.upper.root
            raise FileExistsVfsError("root directory always exists")
        existing = self._visible_child(parts[:-1], parts[-1]) if self._dir_stack(
            parts[:-1]
        ) else None
        if existing is not None:
            if existing.is_dir and exist_ok:
                self._ensure_upper_dirs(parts)
                return self.upper.stat(path, follow_symlinks=False)
            raise FileExistsVfsError(f"path exists: {path!r}")
        if parents:
            self._ensure_upper_parents_with_merge(parts[:-1])
        _, resolved_parent = self._resolve_parent(path)
        self._ensure_upper_dirs(resolved_parent)
        upper_path = "/" + "/".join(list(resolved_parent) + [parts[-1]])
        return self.upper.mkdir(upper_path)

    def _ensure_upper_parents_with_merge(self, parts: Sequence[str]) -> None:
        so_far: List[str] = []
        for name in parts:
            if self._visible_child(so_far, name) is None:
                self.upper.mkdir("/" + "/".join(so_far + [name]), parents=True,
                                 exist_ok=True)
            so_far.append(name)

    def symlink(self, path: str, target: str) -> Inode:
        """Create a symlink in the merged view (lands in upper)."""
        _, resolved_parent = self._resolve_parent(path)
        _, name = paths.parent_and_name(path)
        if self._visible_child(resolved_parent, name) is not None:
            raise FileExistsVfsError(f"path exists: {path!r}")
        self._ensure_upper_dirs(resolved_parent)
        upper_path = "/" + "/".join(list(resolved_parent) + [name])
        return self.upper.symlink(upper_path, target)

    def remove(self, path: str, *, recursive: bool = False) -> None:
        """Delete from the merged view, placing whiteouts when needed."""
        node, resolved = self._resolve(path, follow_symlinks=False)
        if node.is_dir:
            children = self.listdir("/" + "/".join(resolved))
            if children and not recursive:
                raise VfsError(f"directory not empty: {path!r}")
            for child in children:
                self.remove(paths.join(path, child), recursive=True)
        upper_path = "/" + "/".join(resolved)
        in_upper = self.upper.exists(upper_path, follow_symlinks=False)
        in_lower = self._exists_in_lowers(resolved)
        if in_upper:
            self.upper.remove(upper_path, recursive=True)
        if in_lower:
            self._ensure_upper_dirs(resolved[:-1])
            self.upper.whiteout(upper_path)
            self.stats.whiteouts_created += 1

    def rename(self, old: str, new: str) -> None:
        """Rename via copy + delete (sufficient for the workloads here)."""
        node, _ = self._resolve(old, follow_symlinks=False)
        if node.is_dir:
            raise VfsError("directory rename is not supported")
        if node.is_symlink:
            assert node.symlink_target is not None
            self.symlink(new, node.symlink_target)
        else:
            assert node.blob is not None
            self.write_file(new, node.blob, meta=node.meta.copy())
        self.remove(old)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _resolve_parent(self, path: str) -> Tuple[Inode, List[str]]:
        parent_path, _ = paths.parent_and_name(path)
        node, resolved = self._resolve(parent_path)
        if not node.is_dir:
            raise NotADirectoryVfsError(f"{parent_path!r} is not a directory")
        return node, resolved

    def _exists_in_lowers(self, parts: Sequence[str]) -> bool:
        """Whether any contributing lower layer has a visible entry.

        Uses the merged dir stack of the parent so masking (opaque dirs,
        shadowing files) is honoured.
        """
        if not parts:
            return True
        stack = self._dir_stack(parts[:-1])
        upper_root_first = stack and stack[0] is self._upper_dir_inode(parts[:-1])
        for position, dir_inode in enumerate(stack):
            if upper_root_first and position == 0:
                continue
            assert dir_inode.children is not None
            child = dir_inode.children.get(parts[-1])
            if child is None:
                continue
            return not child.is_whiteout
        return False

    def _upper_dir_inode(self, parts: Sequence[str]) -> Optional[Inode]:
        node = self.upper.root
        for name in parts:
            if not node.is_dir:
                return None
            assert node.children is not None
            child = node.children.get(name)
            if child is None or child.is_whiteout:
                return None
            node = child
        return node

    def _note_copy_up(self, path: str) -> None:
        node, resolved = self._resolve(path, follow_symlinks=False)
        upper_path = "/" + "/".join(resolved)
        if not self.upper.exists(upper_path, follow_symlinks=False):
            self.stats.copy_ups += 1

    def reset_stats(self) -> None:
        self.stats = MountStats()
        self._touched.clear()

    def __repr__(self) -> str:
        return f"OverlayMount(lowers={len(self.lowers)})"
