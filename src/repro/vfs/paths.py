"""POSIX path normalization helpers for the virtual filesystem.

All VFS APIs accept absolute POSIX-style paths (``"/usr/bin/python"``).
These helpers canonicalize them *lexically* (no symlink resolution — that
is the tree's job, since it needs inode access).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.common.errors import VfsError


def normalize(path: str) -> str:
    """Canonicalize an absolute path lexically.

    Collapses repeated slashes and ``.`` segments and resolves ``..``
    against its lexical parent.  Raises :class:`VfsError` for relative
    paths or ``..`` escaping the root.
    """
    return "/" + "/".join(split(path))


def split(path: str) -> List[str]:
    """Split an absolute path into normalized components."""
    if not path.startswith("/"):
        raise VfsError(f"path must be absolute: {path!r}")
    parts: List[str] = []
    for component in path.split("/"):
        if component in ("", "."):
            continue
        if component == "..":
            if not parts:
                raise VfsError(f"path escapes root: {path!r}")
            parts.pop()
        else:
            parts.append(component)
    return parts


def parent_and_name(path: str) -> Tuple[str, str]:
    """Split a path into its parent directory path and final component."""
    parts = split(path)
    if not parts:
        raise VfsError("root has no parent")
    return "/" + "/".join(parts[:-1]), parts[-1]


def join(base: str, *components: str) -> str:
    """Join path components under an absolute base, then normalize."""
    pieces = [base.rstrip("/")]
    for component in components:
        pieces.append(component.strip("/"))
    return normalize("/".join(pieces) or "/")


def is_ancestor(ancestor: str, path: str) -> bool:
    """True when ``ancestor`` is a (non-strict) prefix directory of ``path``."""
    ancestor_parts = split(ancestor)
    path_parts = split(path)
    return path_parts[: len(ancestor_parts)] == ancestor_parts


def resolve_symlink_target(link_path: str, target: str) -> str:
    """Resolve a symlink target (absolute or relative) to an absolute path."""
    if target.startswith("/"):
        return normalize(target)
    parent, _ = parent_and_name(link_path)
    return join(parent, *target.split("/")) if target else parent
