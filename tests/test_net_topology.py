"""Cluster topology: shared registry serving many client nodes."""

import pytest

from repro.bench.deploy import deploy_with_docker, deploy_with_gear
from repro.bench.environment import publish_images
from repro.net.topology import Cluster, percentile


@pytest.fixture
def cluster(small_corpus):
    cluster = Cluster(3, bandwidth_mbps=100)
    publish_images(cluster.registry_testbed, small_corpus.images, convert=True)
    return cluster


class TestClusterAssembly:
    def test_node_count_and_names(self, cluster):
        assert len(cluster.nodes) == 3
        assert cluster.nodes[0].name == "node-000"

    def test_rejects_empty_cluster(self):
        with pytest.raises(ValueError):
            Cluster(0)

    def test_nodes_share_registries_not_caches(self, cluster):
        testbeds = [node.testbed for node in cluster.nodes]
        assert (
            testbeds[0].docker_registry is testbeds[1].docker_registry
        )
        assert testbeds[0].gear_driver.pool is not testbeds[1].gear_driver.pool

    def test_shared_clock(self, cluster):
        assert all(
            node.testbed.clock is cluster.clock for node in cluster.nodes
        )


class TestFleetDeployment:
    def test_every_node_pays_its_own_downloads(self, cluster, small_corpus):
        generated = small_corpus.get("nginx:v1")
        per_node = cluster.each_node(
            lambda node: deploy_with_gear(node.testbed, generated) and None
        )
        assert len(per_node) == 3
        assert all(volume > 0 for volume in per_node.values())

    def test_registry_egress_accumulates(self, cluster, small_corpus):
        generated = small_corpus.get("nginx:v1")
        before = cluster.registry_egress_bytes
        cluster.each_node(
            lambda node: deploy_with_docker(node.testbed, generated) and None
        )
        assert cluster.registry_egress_bytes > before

    def test_gear_fleet_uses_less_registry_capacity(self, small_corpus):
        generated = small_corpus.get("tomcat:v1")

        docker_cluster = Cluster(3, bandwidth_mbps=100)
        publish_images(
            docker_cluster.registry_testbed, small_corpus.images, convert=True
        )
        docker_cluster.each_node(
            lambda node: deploy_with_docker(node.testbed, generated) and None
        )

        gear_cluster = Cluster(3, bandwidth_mbps=100)
        publish_images(
            gear_cluster.registry_testbed, small_corpus.images, convert=True
        )
        gear_cluster.each_node(
            lambda node: deploy_with_gear(node.testbed, generated) and None
        )

        # Publishing traffic is in-process; the deployment egress is what
        # differs — Gear's is a fraction of Docker's, so the registry
        # uplink stays free for more nodes.
        assert (
            gear_cluster.registry_egress_bytes
            < docker_cluster.registry_egress_bytes * 0.6
        )
        assert (
            gear_cluster.registry_busy_seconds()
            < docker_cluster.registry_busy_seconds() * 0.6
        )


class TestPercentile:
    def test_nearest_rank(self):
        values = [4.0, 1.0, 3.0, 2.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 95) == 4.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 0) == 1.0

    def test_single_value(self):
        # n=1: every quantile is the lone sample (rank clamps to 1).
        assert percentile([7.5], 99) == 7.5
        assert percentile([7.5], 0) == 7.5
        assert percentile([7.5], 100) == 7.5

    def test_two_values_boundary(self):
        # n=2, agreed nearest-rank semantics: q <= 50 takes the smaller
        # sample, q > 50 the larger (rank = max(1, ceil(q/100 * 2))).
        assert percentile([5.0, 1.0], 0) == 1.0
        assert percentile([5.0, 1.0], 50) == 1.0
        assert percentile([5.0, 1.0], 50.001) == 5.0
        assert percentile([5.0, 1.0], 95) == 5.0
        assert percentile([5.0, 1.0], 100) == 5.0

    def test_shared_helper_with_hedging_estimator(self):
        # Wave reports and the HA hedge-deadline estimator must agree on
        # tiny-sample semantics: both import the one implementation.
        from repro.common.stats import percentile as stats_percentile

        assert percentile is stats_percentile

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -0.5)


def _fresh_cluster(small_corpus, nodes=3):
    cluster = Cluster(nodes, bandwidth_mbps=100)
    publish_images(cluster.registry_testbed, small_corpus.images, convert=True)
    return cluster


class TestDeployWave:
    def test_report_shape(self, cluster, small_corpus):
        generated = small_corpus.get("nginx:v1")
        wave = cluster.deploy_wave(
            lambda node: deploy_with_docker(node.testbed, generated) and None
        )
        assert wave.concurrency == 3
        assert len(wave.latencies_s) == 3
        assert wave.makespan_s > 0
        assert wave.egress_bytes > 0
        assert 0.0 < wave.utilization <= 1.0 + 1e-9
        assert wave.as_dict()["clients"] == 3

    def test_rejects_nonpositive_concurrency(self, cluster):
        with pytest.raises(ValueError):
            cluster.deploy_wave(lambda node: None, concurrency=0)

    def test_deterministic_across_identical_clusters(self, small_corpus):
        generated = small_corpus.get("nginx:v1")
        waves = []
        for _ in range(2):
            cluster = _fresh_cluster(small_corpus)
            waves.append(
                cluster.deploy_wave(
                    lambda node: deploy_with_gear(
                        node.testbed, generated, clear_cache=True
                    )
                    and None
                )
            )
        assert waves[0] == waves[1]

    def test_concurrency_one_matches_sequential_timings(self, small_corpus):
        generated = small_corpus.get("tomcat:v1")

        sequential = _fresh_cluster(small_corpus)
        timings = []

        def timed(node):
            timer = sequential.clock.timer()
            deploy_with_docker(node.testbed, generated)
            timings.append(timer.elapsed())

        sequential.each_node(timed)

        staged = _fresh_cluster(small_corpus)
        wave = staged.deploy_wave(
            lambda node: deploy_with_docker(node.testbed, generated) and None,
            concurrency=1,
        )
        # One client at a time = the seed sequential model, exactly.
        assert wave.latencies_s == tuple(timings)

    def test_contention_stretches_latency_not_bytes(self, small_corpus):
        generated = small_corpus.get("nginx:v1")

        staged = _fresh_cluster(small_corpus)
        one_at_a_time = staged.deploy_wave(
            lambda node: deploy_with_docker(node.testbed, generated) and None,
            concurrency=1,
        )

        slammed = _fresh_cluster(small_corpus)
        all_at_once = slammed.deploy_wave(
            lambda node: deploy_with_docker(node.testbed, generated) and None
        )

        # Same bytes cross the wire either way; only the clients' waiting
        # changes shape.
        assert all_at_once.egress_bytes == one_at_a_time.egress_bytes
        assert all_at_once.p95_s > one_at_a_time.p95_s
        # Overlap compresses the fleet's wall-clock…
        assert all_at_once.makespan_s < sum(one_at_a_time.latencies_s)
        # …while each client individually waits at least as long as when
        # it had the uplink to itself.
        assert min(all_at_once.latencies_s) >= min(one_at_a_time.latencies_s)
