"""Cluster topology: shared registry serving many client nodes."""

import pytest

from repro.bench.deploy import deploy_with_docker, deploy_with_gear
from repro.bench.environment import publish_images
from repro.net.topology import Cluster


@pytest.fixture
def cluster(small_corpus):
    cluster = Cluster(3, bandwidth_mbps=100)
    publish_images(cluster.registry_testbed, small_corpus.images, convert=True)
    return cluster


class TestClusterAssembly:
    def test_node_count_and_names(self, cluster):
        assert len(cluster.nodes) == 3
        assert cluster.nodes[0].name == "node-000"

    def test_rejects_empty_cluster(self):
        with pytest.raises(ValueError):
            Cluster(0)

    def test_nodes_share_registries_not_caches(self, cluster):
        testbeds = [node.testbed for node in cluster.nodes]
        assert (
            testbeds[0].docker_registry is testbeds[1].docker_registry
        )
        assert testbeds[0].gear_driver.pool is not testbeds[1].gear_driver.pool

    def test_shared_clock(self, cluster):
        assert all(
            node.testbed.clock is cluster.clock for node in cluster.nodes
        )


class TestFleetDeployment:
    def test_every_node_pays_its_own_downloads(self, cluster, small_corpus):
        generated = small_corpus.get("nginx:v1")
        per_node = cluster.each_node(
            lambda node: deploy_with_gear(node.testbed, generated) and None
        )
        assert len(per_node) == 3
        assert all(volume > 0 for volume in per_node.values())

    def test_registry_egress_accumulates(self, cluster, small_corpus):
        generated = small_corpus.get("nginx:v1")
        before = cluster.registry_egress_bytes
        cluster.each_node(
            lambda node: deploy_with_docker(node.testbed, generated) and None
        )
        assert cluster.registry_egress_bytes > before

    def test_gear_fleet_uses_less_registry_capacity(self, small_corpus):
        generated = small_corpus.get("tomcat:v1")

        docker_cluster = Cluster(3, bandwidth_mbps=100)
        publish_images(
            docker_cluster.registry_testbed, small_corpus.images, convert=True
        )
        docker_cluster.each_node(
            lambda node: deploy_with_docker(node.testbed, generated) and None
        )

        gear_cluster = Cluster(3, bandwidth_mbps=100)
        publish_images(
            gear_cluster.registry_testbed, small_corpus.images, convert=True
        )
        gear_cluster.each_node(
            lambda node: deploy_with_gear(node.testbed, generated) and None
        )

        # Publishing traffic is in-process; the deployment egress is what
        # differs — Gear's is a fraction of Docker's, so the registry
        # uplink stays free for more nodes.
        assert (
            gear_cluster.registry_egress_bytes
            < docker_cluster.registry_egress_bytes * 0.6
        )
        assert (
            gear_cluster.registry_busy_seconds()
            < docker_cluster.registry_busy_seconds() * 0.6
        )
