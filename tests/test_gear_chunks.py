"""The fault-tolerant chunk read path: integrity, coalescing, recovery.

Companion to ``test_gear_bigfile.py`` (which covers the clean-path
mechanics): these tests drive the chunk-granular pipeline through
corruption, crashes, admission-gate pressure, and pool lifecycle events,
and pin the golden equivalence between the chunked and whole-file
viewers.
"""

import pytest

from repro.bench.deploy import viewer_fs_digest
from repro.bench.environment import make_testbed
from repro.blob import Blob, DEFAULT_CHUNK_SIZE, chunk_fingerprint
from repro.common.clock import SimClock, SimScheduler
from repro.common.errors import (
    ChunkIntegrityError,
    ClientCrash,
    IntegrityError,
)
from repro.common.units import MiB
from repro.gear.bigfile import ChunkedGearFileViewer
from repro.gear.gearfile import GearFile
from repro.gear.index import GearIndex
from repro.gear.journal import IntentJournal
from repro.gear.pool import SharedFilePool
from repro.gear.recovery import fsck
from repro.gear.registry import GearRegistry
from repro.gear.viewer import GearFileViewer
from repro.net.faults import (
    CrashInjector,
    CrashPlan,
    CrashPoint,
    FaultyLink,
    chunk_plan,
)
from repro.net.link import Link
from repro.net.resilience import RetryPolicy
from repro.net.transport import RpcTransport
from repro.vfs.tree import FileSystemTree

BIG = 8 * MiB  # 64 chunks at 128 KiB
BIG_PATH = "/models/weights.bin"
SMALL_PATH = "/etc/small.conf"


def build_env(*, plan=None, crash=None, seed="model", chunk_retry=None,
              chunk_buffer_bytes=None, with_journal=True):
    root = FileSystemTree()
    root.write_file(BIG_PATH, Blob.synthetic(seed, BIG), parents=True)
    root.write_file(SMALL_PATH, b"tiny", parents=True)
    index = GearIndex.from_tree("ai.gear", "v1", root)
    clock = SimClock()
    if plan is not None:
        link = FaultyLink(clock, plan, bandwidth_mbps=904)
    else:
        link = Link(clock, bandwidth_mbps=904)
    transport = RpcTransport(link, retry_policy=RetryPolicy(seed="rpc"))
    registry = GearRegistry()
    transport.bind(registry.endpoint())
    for _, node in root.iter_files():
        registry.upload(GearFile.from_blob(node.blob))
    pool = SharedFilePool()
    journal = IntentJournal(clock) if with_journal else None
    kwargs = {}
    if chunk_retry is not None:
        kwargs["chunk_retry"] = chunk_retry
    if chunk_buffer_bytes is not None:
        kwargs["chunk_buffer_bytes"] = chunk_buffer_bytes
    viewer = ChunkedGearFileViewer(
        index, pool, transport=transport, journal=journal, crash=crash,
        big_file_threshold=1 * MiB, **kwargs,
    )
    return viewer, dict(
        clock=clock, link=link, transport=transport, registry=registry,
        index=index, pool=pool, journal=journal,
        identity=index.entries[BIG_PATH].identity,
    )


class TestChunkIntegrity:
    def test_undetected_corruption_caught_and_refetched(self):
        # Every corruption slides past the wire checksum: only the
        # per-chunk fingerprint stands between it and the pool.
        plan = chunk_plan(
            seed="byz", corrupt_rate=0.3, corrupt_detect_rate=0.0
        )
        viewer, env = build_env(plan=plan)
        viewer.read_range(BIG_PATH, 0, BIG)
        stats = viewer.chunk_stats
        assert stats.chunk_integrity_failures > 0
        assert stats.chunk_refetches == stats.chunk_integrity_failures
        # Nothing poisoned: the promoted file hashes to its name.
        inode = env["pool"].peek(env["identity"])
        assert inode is not None
        assert inode.blob.fingerprint == env["identity"]

    def test_persistent_corruption_gives_up_with_typed_error(self):
        viewer, env = build_env(
            chunk_retry=RetryPolicy(max_attempts=3, seed="give-up")
        )
        # Cache the trusted manifest first, then rot the registry copy:
        # every later chunk fetch serves bytes that can never verify.
        viewer.read_range(BIG_PATH, 0, 10)
        env["registry"].corrupt(
            env["identity"], GearFile.from_blob(Blob.synthetic("evil", BIG))
        )
        with pytest.raises(ChunkIntegrityError) as excinfo:
            viewer.read_range(BIG_PATH, DEFAULT_CHUNK_SIZE, 10)
        assert excinfo.value.identity == env["identity"]
        assert excinfo.value.chunk_index == 1
        assert viewer.chunk_stats.chunk_refetches == 2  # attempts 2 and 3
        # The identity is quarantined and its partial purged.
        assert env["pool"].is_quarantined(env["identity"])
        assert env["identity"] not in env["pool"].partials

    def test_giveup_respects_retry_deadline(self):
        viewer, env = build_env(
            chunk_retry=RetryPolicy(
                max_attempts=100, deadline_s=0.01, seed="deadline"
            )
        )
        viewer.read_range(BIG_PATH, 0, 10)
        env["registry"].corrupt(
            env["identity"], GearFile.from_blob(Blob.synthetic("evil", BIG))
        )
        with pytest.raises(ChunkIntegrityError):
            viewer.read_range(BIG_PATH, DEFAULT_CHUNK_SIZE, 10)
        assert viewer.chunk_stats.chunk_refetches < 100

    def test_promote_verifies_assembled_file(self):
        viewer, env = build_env()
        viewer.read_range(BIG_PATH, 0, 10)
        partial = env["pool"].partials[env["identity"]]
        # Sabotage the assembled content behind the manifest's back: the
        # whole-file fingerprint check must refuse to commit it.
        partial.blob = Blob.synthetic("evil", BIG)
        partial.present.update(range(len(partial.blob.chunks)))
        with pytest.raises(IntegrityError):
            viewer._promote(BIG_PATH, env["identity"], partial)
        assert not env["pool"].contains(env["identity"])
        assert env["pool"].is_quarantined(env["identity"])

    def test_chunk_faults_do_not_touch_whole_file_traffic(self):
        # Label-prefix scoping: a plan that corrupts every chunk payload
        # leaves whole-file (gear-file) downloads untouched.
        plan = chunk_plan(
            seed="scoped", corrupt_rate=1.0, corrupt_detect_rate=0.0
        )
        viewer, env = build_env(plan=plan)
        whole = GearFileViewer(
            env["index"], SharedFilePool(),
            transport=env["transport"],
        )
        whole.read_blob(BIG_PATH)
        assert whole.fault_stats.remote_fetches == 1


class TestSingleFlight:
    def test_no_duplicate_fetches_under_concurrent_readers(self):
        viewer, env = build_env()
        clock = env["clock"]

        def reader(start):
            viewer.read_range(BIG_PATH, start, 4 * DEFAULT_CHUNK_SIZE)

        with SimScheduler(clock) as scheduler:
            # Heavily overlapping ranges: every chunk is wanted by
            # several readers at once.
            for start in (0, DEFAULT_CHUNK_SIZE, 2 * DEFAULT_CHUNK_SIZE):
                scheduler.spawn(reader, start, name=f"reader-{start}")
            scheduler.run()
        stats = viewer.chunk_stats
        assert stats.duplicate_chunk_fetches == 0
        assert stats.chunks_fetched == 6  # chunks 0..5, each exactly once
        assert stats.coalesced_waits > 0

    def test_gate_overflow_falls_back_to_sequential(self):
        # A one-chunk buffer cannot admit a parallel fan-out: overflow
        # is a counted fallback, never an error.
        viewer, env = build_env(chunk_buffer_bytes=DEFAULT_CHUNK_SIZE)
        clock = env["clock"]
        with SimScheduler(clock) as scheduler:
            scheduler.spawn(
                viewer.read_range, BIG_PATH, 0, 8 * DEFAULT_CHUNK_SIZE,
                name="reader",
            )
            scheduler.run()
        stats = viewer.chunk_stats
        assert stats.sequential_fallbacks > 0
        assert stats.chunks_fetched == 8
        assert stats.duplicate_chunk_fetches == 0

    def test_rejects_non_positive_buffer(self):
        with pytest.raises(Exception):
            build_env(chunk_buffer_bytes=0)


class TestCrashRecovery:
    def test_mid_chunk_crash_fsck_salvage_resume(self):
        injector = None
        viewer, env = build_env()
        injector = CrashInjector(
            env["clock"],
            CrashPlan(point=CrashPoint.MID_FETCH, seed="chunk-crash",
                      op_index=5),
        )
        crashed = ChunkedGearFileViewer(
            env["index"], env["pool"], transport=env["transport"],
            journal=env["journal"], crash=injector,
            big_file_threshold=1 * MiB,
        )
        with pytest.raises(ClientCrash):
            crashed.read_range(BIG_PATH, 0, BIG)
        partial = env["pool"].partials[env["identity"]]
        assert partial.torn  # the in-flight chunk died mid-wire

        report = fsck(
            env["pool"], [env["index"]], [], env["journal"],
            clock=env["clock"],
        )
        assert report.partial_files == 1
        assert report.torn_chunks_dropped == 1
        assert report.chunks_salvaged == len(partial.present)
        salvaged = len(partial.present)
        assert salvaged == 5  # chunks 0..4 committed before the crash

        # Resume: only the missing chunks travel again.
        viewer.read_range(BIG_PATH, 0, BIG)
        total = len(partial.blob.chunks)
        assert viewer.chunk_stats.chunks_fetched == total - salvaged
        assert env["pool"].contains(env["identity"])
        assert env["pool"].partials == {}

    def test_journal_records_chunk_intents(self):
        viewer, env = build_env()
        viewer.read_range(BIG_PATH, 0, 2 * DEFAULT_CHUNK_SIZE)
        state = env["journal"].replay()
        assert state.committed_chunks[env["identity"]] == {0, 1}
        assert state.open_chunks == []

    def test_torn_chunk_left_open_in_journal(self):
        viewer, env = build_env()
        injector = CrashInjector(
            env["clock"],
            CrashPlan(point=CrashPoint.MID_FETCH, seed="torn", op_index=2),
        )
        crashed = ChunkedGearFileViewer(
            env["index"], env["pool"], transport=env["transport"],
            journal=env["journal"], crash=injector,
            big_file_threshold=1 * MiB,
        )
        with pytest.raises(ClientCrash):
            crashed.read_range(BIG_PATH, 0, BIG)
        state = env["journal"].replay()
        assert (env["identity"], 2) in state.open_chunks
        assert state.committed_chunks[env["identity"]] == {0, 1}


class TestPoolLifecycle:
    def test_clear_drops_partials_and_chunk_index(self):
        viewer, env = build_env()
        viewer.read_range(BIG_PATH, 0, 10)
        pool = env["pool"]
        assert pool.partials
        token = next(iter(pool.partials.values())).blob.chunks[0].token
        pool.clear()
        assert pool.partials == {}
        assert not pool.has_chunk(token)
        # The viewer recovers transparently after the wipe.
        viewer.read_range(BIG_PATH, 0, BIG)
        assert pool.contains(env["identity"])
        assert pool.partials == {}

    def test_chunk_dedup_premarks_shared_chunks(self):
        viewer, env = build_env()
        viewer.read_range(BIG_PATH, 0, BIG)  # v1 fully cached
        fetched_v1 = viewer.chunk_stats.chunks_fetched

        # v2 of the model shares most chunks with v1.
        v2 = Blob.synthetic("model", BIG).mutate("v2", 0.125)
        root = FileSystemTree()
        root.write_file(BIG_PATH, v2, parents=True)
        index2 = GearIndex.from_tree("ai.gear", "v2", root)
        env["registry"].upload(GearFile.from_blob(v2))
        viewer2 = ChunkedGearFileViewer(
            index2, env["pool"], transport=env["transport"],
            big_file_threshold=1 * MiB,
        )
        viewer2.read_range(BIG_PATH, 0, BIG)
        stats = viewer2.chunk_stats
        assert stats.chunks_deduped > 0
        assert stats.chunks_fetched + stats.chunks_deduped == fetched_v1
        assert stats.chunk_dedup_bytes > 0

    def test_chunk_metrics_group_registered_in_testbed(self):
        testbed = make_testbed()
        assert "chunk" in testbed.metrics.groups()
        testbed.gear_driver.chunk_stats.range_reads = 3
        assert testbed.metrics.snapshot()["chunk.range_reads"] == 3
        testbed.metrics.reset()
        assert testbed.gear_driver.chunk_stats.range_reads == 0


class TestBoundaries:
    def test_zero_length_read(self):
        viewer, _ = build_env()
        assert viewer.read_range(BIG_PATH, 0, 0) == 0
        assert viewer.chunk_stats.chunks_fetched == 0

    def test_offset_beyond_eof(self):
        viewer, _ = build_env()
        assert viewer.read_range(BIG_PATH, BIG + 1000, 10) == 0
        assert viewer.chunk_stats.chunks_fetched == 0

    def test_exact_chunk_boundary_span(self):
        viewer, _ = build_env()
        got = viewer.read_range(
            BIG_PATH, DEFAULT_CHUNK_SIZE, DEFAULT_CHUNK_SIZE
        )
        assert got == DEFAULT_CHUNK_SIZE
        assert viewer.chunk_stats.chunks_fetched == 1  # chunk 1 only

    def test_small_file_matches_whole_file_viewer(self):
        viewer, env = build_env()
        got = viewer.read_range(SMALL_PATH, 0, 100)
        whole = GearFileViewer(
            env["index"], SharedFilePool(),
            transport=env["transport"],
        )
        whole.read_blob(SMALL_PATH)
        assert got == 4  # the whole (tiny) file, truncated at EOF
        assert viewer.chunk_stats.chunks_fetched == 0
        assert viewer.chunk_stats.range_reads == 0  # whole-file fallthrough


class TestGoldenEquivalence:
    def test_chunked_and_whole_file_digests_identical(self):
        viewer, env = build_env()
        viewer.read_range(BIG_PATH, 0, BIG)
        viewer.read_range(SMALL_PATH, 0, 4)

        # Fresh fault-free environment for the whole-file control.
        _, cenv = build_env()
        whole = GearFileViewer(
            cenv["index"], cenv["pool"], transport=cenv["transport"],
        )
        whole.read_blob(BIG_PATH)
        whole.read_blob(SMALL_PATH)
        assert viewer_fs_digest(viewer) == viewer_fs_digest(whole)

    def test_equivalence_survives_chunk_faults(self):
        plan = chunk_plan(
            seed="equiv", drop_rate=0.05, corrupt_rate=0.1,
            corrupt_detect_rate=0.5,
        )
        viewer, _ = build_env(plan=plan)
        viewer.read_range(BIG_PATH, 0, BIG)
        viewer.read_range(SMALL_PATH, 0, 4)

        _, cenv = build_env()
        whole = GearFileViewer(
            cenv["index"], cenv["pool"], transport=cenv["transport"],
        )
        whole.read_blob(BIG_PATH)
        whole.read_blob(SMALL_PATH)
        assert viewer_fs_digest(viewer) == viewer_fs_digest(whole)
