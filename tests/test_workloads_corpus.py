"""Corpus generation: determinism, structure, traces, sharing."""

import pytest

from repro.common.errors import NotFoundError, ReproError
from repro.workloads.corpus import Corpus, CorpusBuilder, CorpusConfig


CONFIG = CorpusConfig(
    seed=7,
    file_scale=0.25,
    size_scale=0.1,
    series_names=("nginx", "tomcat"),
    versions_cap=4,
)


class TestSelection:
    def test_dependencies_pulled_in(self, small_corpus):
        # nginx needs debian; tomcat needs java which needs debian.
        assert "debian" in small_corpus.by_series
        assert "java" in small_corpus.by_series

    def test_versions_cap(self, small_corpus):
        assert len(small_corpus.by_series["nginx"]) == 4

    def test_unknown_series_rejected(self):
        with pytest.raises(ReproError):
            CorpusBuilder(
                CorpusConfig(series_names=("not-real",))
            ).build()


class TestDeterminism:
    def test_same_seed_same_corpus(self, small_corpus):
        other = CorpusBuilder(CONFIG).build()
        assert other.references() == small_corpus.references()
        for a, b in zip(other.images, small_corpus.images):
            assert [l.digest for l in a.image.layers] == [
                l.digest for l in b.image.layers
            ]
            assert a.trace.accesses == b.trace.accesses

    def test_different_seed_differs(self, small_corpus):
        other = CorpusBuilder(
            CorpusConfig(
                seed=99,
                file_scale=0.25,
                size_scale=0.1,
                series_names=("nginx", "tomcat"),
                versions_cap=4,
            )
        ).build()
        ours = small_corpus.by_series["nginx"][0].image.layers[-1].digest
        theirs = other.by_series["nginx"][0].image.layers[-1].digest
        assert ours != theirs


class TestStructure:
    def test_app_images_stack_on_distro_base(self, small_corpus):
        nginx = small_corpus.by_series["nginx"][0]
        debian = small_corpus.by_series["debian"][0]
        assert nginx.image.layers[0].digest == debian.image.layers[0].digest
        assert len(nginx.image.layers) == 4  # base + runtime + app + config

    def test_consecutive_versions_share_base_layer(self, small_corpus):
        v1, v2 = small_corpus.by_series["nginx"][:2]
        assert v1.image.layers[0].digest == v2.image.layers[0].digest

    def test_app_layer_differs_between_versions(self, small_corpus):
        v1, v2 = small_corpus.by_series["nginx"][:2]
        assert v1.image.layers[2].digest != v2.image.layers[2].digest

    def test_borrowed_runtime_shares_files_not_layers(self, small_corpus):
        # tomcat borrows java's runtime: same file contents, distinct layer.
        tomcat = small_corpus.by_series["tomcat"][0]
        java = small_corpus.by_series["java"][0]
        tomcat_runtime = tomcat.image.layers[1]
        java_runtime = java.image.layers[1]
        assert tomcat_runtime.digest != java_runtime.digest
        tomcat_files = {
            node.blob.fingerprint
            for _, node in tomcat_runtime.diff_tree().iter_files()
        }
        java_files = {
            node.blob.fingerprint
            for _, node in java_runtime.diff_tree().iter_files()
        }
        shared = tomcat_files & java_files
        assert len(shared) > 0.8 * len(java_files)

    def test_versions_share_files(self, small_corpus):
        v1, v2 = small_corpus.by_series["tomcat"][:2]
        files_v1 = {
            node.blob.fingerprint for _, node in v1.image.flatten().iter_files()
        }
        files_v2 = {
            node.blob.fingerprint for _, node in v2.image.flatten().iter_files()
        }
        overlap = len(files_v1 & files_v2) / len(files_v1)
        assert overlap > 0.4  # low-churn Web Component series

    def test_config_is_copied_from_spec(self, small_corpus):
        nginx = small_corpus.by_series["nginx"][0]
        assert nginx.image.config.env_dict()["APP"] == "nginx"


class TestTraces:
    def test_trace_paths_exist_in_image(self, small_corpus):
        for generated in small_corpus.by_series["tomcat"]:
            tree = generated.image.flatten()
            for path, size in generated.trace.accesses:
                assert tree.is_file(path), path
                assert tree.read_blob(path).size == size

    def test_trace_is_a_fraction_of_image(self, small_corpus):
        for generated in small_corpus.images:
            ratio = generated.trace.total_bytes / generated.image.uncompressed_size
            assert 0.02 < ratio < 0.6

    def test_trace_has_compute_time(self, small_corpus):
        for generated in small_corpus.images:
            assert generated.trace.compute_s > 0

    def test_consecutive_traces_share_content(self, small_corpus):
        v1, v2 = small_corpus.by_series["tomcat"][:2]
        t1 = v1.image.flatten()
        t2 = v2.image.flatten()
        fp1 = {t1.read_blob(p).fingerprint for p, _ in v1.trace.accesses}
        fp2 = {t2.read_blob(p).fingerprint for p, _ in v2.trace.accesses}
        assert fp1 & fp2  # Fig. 2: necessary data overlaps across versions


class TestCorpusApi:
    def test_get_by_reference(self, small_corpus):
        generated = small_corpus.get("nginx:v2")
        assert generated.tag == "v2"
        assert generated.tag_index == 1

    def test_get_missing_raises(self, small_corpus):
        with pytest.raises(NotFoundError):
            small_corpus.get("nope:v1")

    def test_by_category_groups(self, small_corpus):
        grouped = small_corpus.by_category()
        assert "Web Component" in grouped
        names = {g.spec.name for g in grouped["Web Component"]}
        assert names == {"nginx", "tomcat"}

    def test_total_bytes_positive(self, small_corpus):
        assert small_corpus.total_uncompressed_bytes > 0
        assert small_corpus.image_count == len(small_corpus.references())
