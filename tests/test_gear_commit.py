"""Committing Gear containers (§III-D2's commit flow)."""

import pytest

from repro.common.clock import SimClock
from repro.docker.builder import ImageBuilder
from repro.docker.daemon import DockerDaemon
from repro.docker.registry import DockerRegistry
from repro.gear.commit import commit_container
from repro.gear.converter import GearConverter
from repro.gear.driver import GearDriver
from repro.gear.registry import GearRegistry
from repro.net.link import Link
from repro.net.transport import RpcTransport


@pytest.fixture
def env():
    clock = SimClock()
    link = Link(clock, bandwidth_mbps=904)
    transport = RpcTransport(link)
    docker_registry = DockerRegistry()
    gear_registry = GearRegistry()
    transport.bind(docker_registry.endpoint())
    transport.bind(gear_registry.endpoint())
    image = (
        ImageBuilder("app", "v1")
        .add_file("/bin/tool", b"tool" * 1000)
        .add_file("/etc/conf", b"original")
        .build()
    )
    docker_registry.push_image(image)
    GearConverter(clock, docker_registry, gear_registry).convert("app:v1")
    daemon = DockerDaemon(clock, transport)
    driver = GearDriver(clock, daemon, transport)
    return clock, transport, docker_registry, gear_registry, daemon, driver


def deploy(driver):
    container, _ = driver.deploy("app.gear:v1")
    return container


class TestCommit:
    def test_new_file_becomes_gear_file_and_entry(self, env):
        _, transport, _, gear_registry, daemon, driver = env
        container = deploy(driver)
        container.mount.write_file("/etc/added", b"fresh content")
        new_index, report = commit_container(
            container, "app.gear", "v2", daemon=daemon, transport=transport
        )
        assert "/etc/added" in new_index.entries
        assert report.uploaded_gear_files == 1
        assert gear_registry.query(new_index.entries["/etc/added"].identity)

    def test_unmodified_entries_survive(self, env):
        _, transport, _, _, daemon, driver = env
        container = deploy(driver)
        container.mount.write_file("/etc/added", b"x")
        new_index, _ = commit_container(
            container, "app.gear", "v2", daemon=daemon, transport=transport
        )
        assert new_index.entries["/bin/tool"] == container.index.entries["/bin/tool"]

    def test_commit_after_faulting_still_produces_valid_index(self, env):
        # Regression: materialized (hard-linked) entries must be re-encoded
        # as stubs in the committed image.
        _, transport, _, _, daemon, driver = env
        container = deploy(driver)
        container.mount.read_bytes("/bin/tool")  # materialize
        container.mount.write_file("/etc/added", b"x")
        new_index, _ = commit_container(
            container, "app.gear", "v2", daemon=daemon, transport=transport
        )
        fresh_driver = GearDriver(
            driver.clock, DockerDaemon(driver.clock, transport), transport
        )
        redeployed, _ = fresh_driver.deploy("app.gear:v2")
        assert redeployed.mount.read_bytes("/bin/tool") == b"tool" * 1000
        assert redeployed.mount.read_bytes("/etc/added") == b"x"

    def test_deletion_propagates(self, env):
        _, transport, _, _, daemon, driver = env
        container = deploy(driver)
        container.mount.remove("/etc/conf")
        new_index, _ = commit_container(
            container, "app.gear", "v2", daemon=daemon, transport=transport
        )
        assert "/etc/conf" not in new_index.entries
        assert not new_index.tree.exists("/etc/conf")

    def test_overwrite_updates_entry(self, env):
        _, transport, _, _, daemon, driver = env
        container = deploy(driver)
        container.mount.write_file("/etc/conf", b"changed")
        new_index, _ = commit_container(
            container, "app.gear", "v2", daemon=daemon, transport=transport
        )
        assert (
            new_index.entries["/etc/conf"].identity
            != container.index.entries["/etc/conf"].identity
        )

    def test_duplicate_content_not_reuploaded(self, env):
        _, transport, _, gear_registry, daemon, driver = env
        container = deploy(driver)
        # Content identical to an existing gear file.
        container.mount.write_file("/etc/copy", b"tool" * 1000)
        _, report = commit_container(
            container, "app.gear", "v2", daemon=daemon, transport=transport
        )
        assert report.uploaded_gear_files == 0

    def test_index_image_pushed_to_docker_registry(self, env):
        _, transport, docker_registry, _, daemon, driver = env
        container = deploy(driver)
        container.mount.write_file("/etc/added", b"x")
        _, report = commit_container(
            container, "app.gear", "v2", daemon=daemon, transport=transport
        )
        assert report.index_pushed
        assert docker_registry.get_manifest("app.gear:v2").gear_index

    def test_original_index_untouched(self, env):
        _, transport, _, _, daemon, driver = env
        container = deploy(driver)
        before = container.index.digest()
        container.mount.write_file("/etc/added", b"x")
        commit_container(
            container, "app.gear", "v2", daemon=daemon, transport=transport
        )
        assert container.index.digest() == before
