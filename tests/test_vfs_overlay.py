"""Union mount semantics: shadowing, whiteouts, copy-up, opaque dirs."""

import pytest

from repro.common.errors import (
    FileExistsVfsError,
    IsADirectoryVfsError,
    NotFoundError,
    VfsError,
)
from repro.vfs.overlay import OverlayMount
from repro.vfs.tree import FileSystemTree


def lower_tree():
    t = FileSystemTree()
    t.mkdir("/bin")
    t.write_file("/bin/sh", b"lower-shell")
    t.mkdir("/etc/app", parents=True)
    t.write_file("/etc/app/conf", b"lower-conf")
    t.symlink("/bin/bash", "sh")
    return t.freeze()


@pytest.fixture
def mount():
    return OverlayMount([lower_tree()])


class TestLookup:
    def test_reads_from_lower(self, mount):
        assert mount.read_bytes("/bin/sh") == b"lower-shell"

    def test_upper_shadows_lower(self, mount):
        mount.write_file("/bin/sh", b"upper-shell")
        assert mount.read_bytes("/bin/sh") == b"upper-shell"
        # The lower tree is untouched.
        assert mount.lowers[0].read_bytes("/bin/sh") == b"lower-shell"

    def test_missing_raises(self, mount):
        with pytest.raises(NotFoundError):
            mount.read_blob("/missing")

    def test_symlink_resolution_in_merged_namespace(self, mount):
        # bash -> sh resolves to the UPPER sh after shadowing.
        mount.write_file("/bin/sh", b"upper-shell")
        assert mount.read_bytes("/bin/bash") == b"upper-shell"

    def test_listdir_merges(self, mount):
        mount.write_file("/bin/new", b"n")
        assert mount.listdir("/bin") == ["bash", "new", "sh"]

    def test_stat_reports_kind(self, mount):
        assert mount.stat("/bin").is_dir
        assert mount.stat("/bin/bash", follow_symlinks=False).is_symlink

    def test_multiple_lowers_priority(self):
        bottom = FileSystemTree()
        bottom.write_file("/f", b"bottom")
        bottom.write_file("/only-bottom", b"ob")
        top = FileSystemTree()
        top.write_file("/f", b"top-lower")
        mount = OverlayMount([top.freeze(), bottom.freeze()])
        assert mount.read_bytes("/f") == b"top-lower"
        assert mount.read_bytes("/only-bottom") == b"ob"

    def test_nondir_shadows_lower_dir(self):
        bottom = FileSystemTree()
        bottom.mkdir("/x")
        bottom.write_file("/x/child", b"c")
        top = FileSystemTree()
        top.write_file("/x", b"a file now")
        mount = OverlayMount([top.freeze(), bottom.freeze()])
        assert mount.stat("/x").is_file
        assert not mount.exists("/x/child")


class TestWrites:
    def test_write_lands_in_upper(self, mount):
        mount.write_file("/etc/app/new", b"data")
        assert mount.upper.read_bytes("/etc/app/new") == b"data"

    def test_write_creates_upper_dirs_with_merged_metadata(self, mount):
        mount.write_file("/etc/app/new", b"data")
        assert mount.upper.is_dir("/etc/app")

    def test_write_parents(self, mount):
        mount.write_file("/var/log/app.log", b"x", parents=True)
        assert mount.read_bytes("/var/log/app.log") == b"x"

    def test_write_over_dir_fails(self, mount):
        with pytest.raises(IsADirectoryVfsError):
            mount.write_file("/bin", b"no")

    def test_mkdir(self, mount):
        mount.mkdir("/srv")
        assert mount.is_dir("/srv")

    def test_mkdir_exist_ok_on_lower_dir(self, mount):
        mount.mkdir("/bin", exist_ok=True)
        with pytest.raises(FileExistsVfsError):
            mount.mkdir("/bin")

    def test_symlink(self, mount):
        mount.symlink("/etc/app/link", "conf")
        assert mount.read_bytes("/etc/app/link") == b"lower-conf"

    def test_append_copies_up(self, mount):
        mount.append_file("/etc/app/conf", b"+more")
        assert mount.read_bytes("/etc/app/conf") == b"lower-conf+more"
        assert mount.lowers[0].read_bytes("/etc/app/conf") == b"lower-conf"
        assert mount.stats.copy_ups == 1

    def test_explicit_copy_up(self, mount):
        mount.copy_up("/bin/sh")
        assert mount.upper.read_bytes("/bin/sh") == b"lower-shell"
        assert mount.stats.copy_ups == 1
        # Second copy-up is a no-op.
        mount.copy_up("/bin/sh")
        assert mount.stats.copy_ups == 1


class TestRemoval:
    def test_remove_lower_file_places_whiteout(self, mount):
        mount.remove("/bin/sh")
        assert not mount.exists("/bin/sh")
        assert mount.upper.stat(
            "/bin/sh", follow_symlinks=False
        ).is_whiteout if mount.upper.exists("/bin/sh", follow_symlinks=False) else True
        assert mount.stats.whiteouts_created == 1

    def test_removed_name_absent_from_listing(self, mount):
        mount.remove("/bin/sh")
        assert "sh" not in mount.listdir("/bin")

    def test_remove_upper_only_file_leaves_no_whiteout(self, mount):
        mount.write_file("/bin/tmp", b"t")
        mount.remove("/bin/tmp")
        assert not mount.exists("/bin/tmp")
        assert mount.stats.whiteouts_created == 0

    def test_remove_shadowing_file_reveals_nothing(self, mount):
        mount.write_file("/bin/sh", b"upper")
        mount.remove("/bin/sh")
        # Both the upper file and the lower original must be hidden.
        assert not mount.exists("/bin/sh")

    def test_recreate_after_remove(self, mount):
        mount.remove("/bin/sh")
        mount.write_file("/bin/sh", b"reborn")
        assert mount.read_bytes("/bin/sh") == b"reborn"

    def test_remove_dir_recursive(self, mount):
        mount.remove("/etc/app", recursive=True)
        assert not mount.exists("/etc/app")
        assert not mount.exists("/etc/app/conf")

    def test_remove_nonempty_dir_without_recursive_fails(self, mount):
        with pytest.raises(VfsError):
            mount.remove("/etc/app")

    def test_rename(self, mount):
        mount.rename("/etc/app/conf", "/etc/app/conf.bak")
        assert mount.read_bytes("/etc/app/conf.bak") == b"lower-conf"
        assert not mount.exists("/etc/app/conf")


class TestOpaque:
    def test_opaque_upper_dir_hides_lower_contents(self, mount):
        mount.mkdir("/etc/app", exist_ok=True)
        mount.upper.set_opaque("/etc/app")
        assert mount.listdir("/etc/app") == []
        mount.write_file("/etc/app/fresh", b"f")
        assert mount.listdir("/etc/app") == ["fresh"]


class TestToTree:
    def test_to_tree_materializes_merged_view(self, mount):
        mount.write_file("/bin/extra", b"e")
        mount.remove("/etc/app/conf")
        tree = mount.to_tree()
        assert tree.read_bytes("/bin/extra") == b"e"
        assert tree.read_bytes("/bin/sh") == b"lower-shell"
        assert not tree.exists("/etc/app/conf")
        assert tree.readlink("/bin/bash") == "sh"

    def test_walk_matches_to_tree(self, mount):
        mount.write_file("/zzz", b"last")
        walked = [path for path, _ in mount.walk("/")]
        tree_paths = [path for path, _ in mount.to_tree().walk("/")]
        assert walked == tree_paths


class TestStats:
    def test_read_stats(self, mount):
        mount.read_blob("/bin/sh")
        mount.read_blob("/bin/sh")
        assert mount.stats.reads == 2
        assert mount.stats.bytes_read == 2 * len(b"lower-shell")

    def test_inodes_touched_counts_distinct(self, mount):
        mount.read_blob("/bin/sh")
        mount.read_blob("/bin/sh")
        mount.read_blob("/etc/app/conf")
        # sh, conf plus the directory inodes touched on the way.
        assert mount.stats.inodes_touched >= 2

    def test_reset_stats(self, mount):
        mount.read_blob("/bin/sh")
        mount.reset_stats()
        assert mount.stats.reads == 0
        assert mount.stats.inodes_touched == 0


class TestFrozenUpperRejected:
    def test_frozen_upper_rejected(self):
        upper = FileSystemTree().freeze()
        with pytest.raises(VfsError):
            OverlayMount([lower_tree()], upper)
