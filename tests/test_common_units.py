"""Unit helpers: conversions and formatting."""

import pytest

from repro.common.units import (
    GiB,
    KiB,
    MiB,
    Mbps,
    bits_per_s_to_bytes_per_s,
    format_bytes,
    format_duration,
    format_rate,
    mbps_to_bytes_per_s,
    percent,
)


def test_binary_prefixes_chain():
    assert KiB == 1024
    assert MiB == 1024 * KiB
    assert GiB == 1024 * MiB


def test_mbps_conversion_matches_definition():
    # 904 Mbps (the paper's measured LAN) = 113 MB/s.
    assert mbps_to_bytes_per_s(904) == pytest.approx(904e6 / 8)


def test_bits_to_bytes():
    assert bits_per_s_to_bytes_per_s(8_000_000) == 1_000_000


def test_format_bytes_small():
    assert format_bytes(512) == "512 B"


def test_format_bytes_units():
    assert format_bytes(1536) == "1.50 KiB"
    assert format_bytes(3 * MiB) == "3.00 MiB"
    assert format_bytes(2.5 * GiB) == "2.50 GiB"


def test_format_bytes_huge_uses_tib():
    assert format_bytes(5 * 1024 * GiB).endswith("TiB")


def test_format_duration_scales():
    assert format_duration(0.0000005).endswith("us")
    assert format_duration(0.005).endswith("ms")
    assert format_duration(3.0) == "3.00 s"
    assert format_duration(200) == "3m 20s"


def test_format_duration_rejects_negative():
    with pytest.raises(ValueError):
        format_duration(-1)


def test_format_rate():
    assert format_rate(mbps_to_bytes_per_s(8)) == "976.56 KiB/s"


def test_percent_handles_zero_whole():
    assert percent(5, 0) == 0.0
    assert percent(1, 4) == 25.0
