"""Overload-robust FaaS tier: admission, coalescing, degradation.

The three-tier chain (:mod:`repro.net.faas`) may change where cold-start
bytes come from, never what gets deployed.  These tests pin the shared
tier's cache mechanics (LRU, TTL, write-through verification), the
headline robustness invariants — single-flight stampede suppression
(upstream fetches per unique fingerprint ≤ 1 while the tier is healthy),
typed sheds that never trip breakers, zero failed invocations under a
spike with a mid-spike tier outage, byte-identical filesystems vs. a
fault-free registry-only control — and deterministic replay.
"""

import pytest

from repro.bench.deploy import container_fs_digest, deploy_with_gear
from repro.bench.environment import (
    make_faas_testbed,
    make_testbed,
    publish_images,
)
from repro.common.errors import TierOverloadedError
from repro.net.faas import FAAS_TIER_ENDPOINT, FaasPlatform
from repro.net.faults import FaultPlan, OutageWindow
from repro.net.resilience import AdmissionGate
from repro.workloads.schedule import BurstWindow, ScheduleBuilder, ScheduledInvocation


def _stream(corpus, *, seed="faas-test", **kwargs):
    params = dict(duration_s=12.0, rate_per_s=5.0, functions=12, skew=1.0)
    params.update(kwargs)
    return ScheduleBuilder(corpus, seed=seed).invocation_stream(**params)


def _spike_outage_bed(**kwargs):
    """Tier outage landing mid-spike, HA registry behind the tier."""
    params = dict(
        ha_replicas=2,
        tier_fault_plan=FaultPlan(
            seed="faas-outage",
            outages=(OutageWindow(start_s=5.0, duration_s=2.0),),
            targets=(FAAS_TIER_ENDPOINT,),
        ),
    )
    params.update(kwargs)
    return make_faas_testbed(**params)


def _control_digests(images):
    """Fault-free registry-only ground truth: reference → fs digest."""
    root = make_testbed()
    publish_images(root, images, convert=True)
    node = root.fresh_client()
    digests = {}
    for generated in images:
        deploy_with_gear(node, generated)
        digests[generated.reference] = container_fs_digest(
            node.gear_driver.containers()[-1]
        )
    return digests


class TestSharedCacheTier:
    def test_lru_eviction_bounds_used_bytes(self, small_corpus):
        bed = make_faas_testbed(tier_capacity_bytes=200_000)
        publish_images(bed, small_corpus.images, convert=True)
        node = bed.faas.client()
        for generated in small_corpus.by_series["nginx"]:
            deploy_with_gear(node, generated)
        tier = bed.faas.tier
        assert tier.used_bytes <= 200_000
        assert bed.faas.stats.tier_evictions > 0
        # Evicted identities left the suppression set, so refills are
        # legitimate fetches, not duplicates.
        assert bed.faas.stats.duplicate_upstream_fetches == 0

    def test_ttl_expiry_refills_without_duplicate_flag(self, small_corpus):
        generated = small_corpus.by_series["nginx"][0]
        bed = make_faas_testbed(tier_ttl_s=0.5)
        publish_images(bed, [generated], convert=True)
        first = bed.faas.client()
        deploy_with_gear(first, generated)
        upstream_once = bed.faas.stats.tier_upstream_fetches
        assert upstream_once > 0
        bed.clock.advance(10.0, "idle-past-ttl")
        second = bed.faas.client()
        deploy_with_gear(second, generated)
        stats = bed.faas.stats
        assert stats.tier_expirations > 0
        assert stats.tier_upstream_fetches > upstream_once
        assert stats.duplicate_upstream_fetches == 0

    def test_second_node_hits_tier_not_registry(self, small_corpus):
        generated = small_corpus.by_series["nginx"][0]
        bed = make_faas_testbed()
        publish_images(bed, [generated], convert=True)
        first = bed.faas.client()
        deploy_with_gear(first, generated)
        wan_after_first = bed.link.log.total_bytes
        second = bed.faas.client()
        deploy_with_gear(second, generated)
        stats = bed.faas.stats
        assert stats.tier_hits > 0
        assert stats.egress_saved_bytes > 0
        # The second deployment moved zero payload over the WAN beyond
        # the index pull: the tier absorbed the Gear files.
        assert (
            bed.link.log.total_bytes - wan_after_first
            < stats.egress_saved_bytes
        )

    def test_admission_gate_sheds_with_typed_error(self):
        gate = AdmissionGate(capacity=1)
        assert gate.try_enter()
        assert not gate.try_enter()
        gate.exit()
        assert gate.try_enter()
        with pytest.raises(RuntimeError):
            gate.exit()
            gate.exit()

    def test_shed_is_a_retryable_unavailable(self):
        from repro.common.errors import UnavailableError
        from repro.net.resilience import RETRYABLE_ERRORS

        assert issubclass(TierOverloadedError, UnavailableError)
        assert issubclass(TierOverloadedError, RETRYABLE_ERRORS)


class TestStampedeSuppression:
    def test_synchronized_burst_coalesces_to_one_upstream_fetch(
        self, small_corpus
    ):
        """N same-image cold starts at t=0: one fill per unique file."""
        generated = small_corpus.by_series["nginx"][0]
        bed = make_faas_testbed()
        publish_images(bed, [generated], convert=True)
        platform = FaasPlatform(bed, bed.faas, nodes=6, seed="stampede")
        stream = [
            ScheduledInvocation(
                position=index,
                at_s=0.0,
                function=f"fn-{index:04d}",
                image=generated,
                is_repeat=False,
            )
            for index in range(6)
        ]
        run = platform.run(stream)
        stats = run.fabric
        assert run.failures == 0
        assert stats["tier_coalesced"] > 0
        assert stats["duplicate_upstream_fetches"] == 0
        # Every container saw identical bytes.
        assert run.digest_conflicts == 0
        assert len(run.fs_digests) == 1

    def test_sheds_fall_through_and_never_trip_breaker(self, small_corpus):
        """A capacity-1 gate under a burst sheds hard — breaker stays shut."""
        generated = small_corpus.by_series["tomcat"][0]
        bed = make_faas_testbed(tier_admission_capacity=1)
        publish_images(bed, small_corpus.images, convert=True)
        platform = FaasPlatform(bed, bed.faas, nodes=4, seed="shed")
        stream = _stream(
            small_corpus,
            duration_s=6.0,
            rate_per_s=8.0,
            functions=16,
            bursts=(BurstWindow(1.0, 3.0, 10.0),),
        )
        run = platform.run(stream)
        stats = run.fabric
        assert run.failures == 0
        assert stats["tier_sheds"] > 0
        assert stats["sheds_seen"] == stats["tier_sheds"]
        # Sheds routed to the registry in-round, no backoff needed...
        assert stats["registry_fallbacks"] >= stats["tier_sheds"]
        # ...and the breaker never saw them as failures.
        assert bed.faas.tier.breaker.trips == 0
        assert stats["breaker_skips"] == 0
        assert stats["duplicate_upstream_fetches"] == 0
        _ = generated  # anchor: corpus image referenced by the stream


class TestSpikeOutage:
    def test_zero_failures_and_byte_identical_under_outage(self, small_corpus):
        """The acceptance scenario: 10x burst, tier dies mid-spike."""
        stream = _stream(
            small_corpus,
            duration_s=10.0,
            rate_per_s=6.0,
            functions=8,
            bursts=(BurstWindow(4.0, 4.0, 10.0),),
        )
        references = {inv.image.reference for inv in stream}
        images = [
            image
            for image in small_corpus.images
            if image.reference in references
        ]
        control = _control_digests(images)
        bed = _spike_outage_bed()
        publish_images(bed, images, convert=True)
        platform = FaasPlatform(
            bed, bed.faas, nodes=4, keep_warm_s=4.0, seed="outage"
        )
        run = platform.run(stream)
        stats = run.fabric
        assert run.invocations == len(stream)
        assert run.failures == 0
        assert run.degraded == 0
        assert run.digest_conflicts == 0
        # The outage actually bit: tier failed over, breaker opened.
        assert stats["tier_failovers"] > 0
        assert stats["breaker_skips"] > 0
        assert stats["registry_fallbacks"] > 0
        assert stats["duplicate_upstream_fetches"] == 0
        # Byte-identical to the fault-free registry-only control.
        for reference, digest in run.fs_digests.items():
            assert digest == control[reference]
        assert bed.faas.audit_integrity() == []

    def test_breaker_recovers_after_outage_window(self, small_corpus):
        generated = small_corpus.by_series["nginx"][0]
        bed = _spike_outage_bed()
        publish_images(
            bed, small_corpus.by_series["nginx"][:2], convert=True
        )
        bed.arm_faults()
        node = bed.faas.client()
        bed.clock.advance(5.5, "into-outage")
        deploy_with_gear(node, generated)
        assert bed.faas.stats.tier_failovers > 0
        # Past the window + cooldown, a half-open probe re-admits the tier.
        bed.clock.advance(30.0, "past-outage")
        fresh = bed.faas.client()
        deploy_with_gear(
            fresh, small_corpus.by_series["nginx"][1]
        )
        assert bed.faas.stats.tier_upstream_fetches > 0
        assert not bed.faas.blacklisted


class TestByzantineTier:
    def test_byzantine_tier_is_demoted_and_bytes_stay_clean(
        self, small_corpus
    ):
        images = small_corpus.by_series["nginx"][:2]
        control = _control_digests(images)
        bed = make_faas_testbed()
        publish_images(bed, images, convert=True)
        bed.faas.tier.byzantine = True
        platform = FaasPlatform(bed, bed.faas, nodes=2, seed="byz")
        stream = [
            ScheduledInvocation(
                position=index,
                at_s=0.4 * index,
                function=f"fn-{index:04d}",
                image=images[index % len(images)],
                is_repeat=False,
            )
            for index in range(6)
        ]
        run = platform.run(stream)
        stats = run.fabric
        assert run.failures == 0
        assert run.digest_conflicts == 0
        assert stats["demotions"] == 1
        assert bed.faas.blacklisted
        # Everything after the demotion took the registry directly.
        assert stats["registry_fallbacks"] > 0
        for reference, digest in run.fs_digests.items():
            assert digest == control[reference]
        # Nothing poisoned sits in any cache or pool.
        assert bed.faas.audit_integrity() == []

    def test_demoted_tier_is_never_consulted_again(self, small_corpus):
        generated = small_corpus.by_series["nginx"][0]
        bed = make_faas_testbed()
        publish_images(bed, small_corpus.images, convert=True)
        bed.faas.tier.byzantine = True
        node = bed.faas.client()
        deploy_with_gear(node, generated)
        assert bed.faas.blacklisted
        hits_at_demotion = bed.faas.stats.tier_hits
        upstream_at_demotion = bed.faas.stats.tier_upstream_fetches
        other = bed.faas.client()
        deploy_with_gear(other, small_corpus.by_series["tomcat"][0])
        assert bed.faas.stats.tier_hits == hits_at_demotion
        assert bed.faas.stats.tier_upstream_fetches == upstream_at_demotion


class TestWarmPath:
    def test_repeat_invocations_are_warm_and_cheap(self, small_corpus):
        generated = small_corpus.by_series["nginx"][0]
        bed = make_faas_testbed()
        publish_images(bed, [generated], convert=True)
        platform = FaasPlatform(bed, bed.faas, nodes=2, seed="warm")
        # Spaced past the first cold start so each later arrival finds
        # the container resident (concurrent arrivals during the cold
        # start would each cold-start their own copy).
        stream = [
            ScheduledInvocation(
                position=index,
                at_s=4.0 * index,
                function="fn-0000",
                image=generated,
                is_repeat=index > 0,
            )
            for index in range(4)
        ]
        run = platform.run(stream)
        assert run.cold_starts == 1
        assert run.warm_starts == 3
        assert run.warm_p50_s == FaasPlatform.WARM_INVOKE_S
        assert run.cold_p50_s > run.warm_p50_s

    def test_keep_warm_lapse_reaps_and_recolds(self, small_corpus):
        generated = small_corpus.by_series["nginx"][0]
        bed = make_faas_testbed()
        publish_images(bed, [generated], convert=True)
        platform = FaasPlatform(
            bed, bed.faas, nodes=1, keep_warm_s=1.0, seed="reap"
        )
        stream = [
            ScheduledInvocation(0, 0.0, "fn-0000", generated, False),
            ScheduledInvocation(1, 8.0, "fn-0000", generated, True),
        ]
        run = platform.run(stream)
        assert run.cold_starts == 2
        assert run.warm_starts == 0
        assert run.reaped == 1
        assert run.digest_conflicts == 0


class TestDeterminism:
    def _run_once(self, corpus):
        bed = _spike_outage_bed()
        publish_images(bed, corpus.images, convert=True)
        platform = FaasPlatform(
            bed, bed.faas, nodes=4, keep_warm_s=4.0, seed="det"
        )
        stream = _stream(
            corpus,
            duration_s=8.0,
            rate_per_s=5.0,
            functions=10,
            bursts=(BurstWindow(4.0, 3.0, 10.0),),
        )
        return platform.run(stream).as_dict()

    def test_spike_outage_run_replays_identically(self, small_corpus):
        assert self._run_once(small_corpus) == self._run_once(small_corpus)


class TestFaasMetrics:
    def test_faas_stats_registered_in_metrics_plane(self):
        from repro.obs.export import metrics_snapshot

        bed = make_faas_testbed()
        snapshot = metrics_snapshot(bed.metrics)
        assert any(key.startswith("faas.") for key in snapshot)

    def test_transport_reset_rebuilds_pristine(self, small_corpus):
        generated = small_corpus.by_series["nginx"][0]
        bed = make_faas_testbed()
        publish_images(bed, [generated], convert=True)
        node = bed.faas.client()
        deploy_with_gear(node, generated)
        assert bed.faas.stats.fetches > 0
        node.transport.reset_stats()
        assert bed.faas.stats.fetches == 0
