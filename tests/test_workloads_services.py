"""Service workloads for the Fig. 11 experiments."""

import pytest

from repro.common.clock import SimClock
from repro.vfs.overlay import OverlayMount
from repro.vfs.tree import FileSystemTree
from repro.workloads.access import AccessTrace
from repro.workloads.services import (
    SERVICES,
    run_service,
    service_spec,
)


def make_env(file_count=50):
    tree = FileSystemTree()
    accesses = []
    for index in range(file_count):
        path = f"/srv/f{index:03d}"
        tree.write_file(path, bytes([index % 251]) * 2000, parents=True)
        accesses.append((path, 2000))
    mount = OverlayMount([tree.freeze()])
    trace = AccessTrace("svc:v1", tuple(accesses), compute_s=1.0)
    return mount, trace


class TestSpecs:
    def test_paper_services_present(self):
        names = {spec.name for spec in SERVICES}
        assert names == {"redis", "memcached", "nginx", "httpd"}

    def test_databases_have_set_get_ratio(self):
        # memtier 1:10 SET-GET -> ~9% writes.
        assert service_spec("redis").write_fraction == pytest.approx(0.09)

    def test_unknown_service_raises(self):
        with pytest.raises(KeyError):
            service_spec("postgresql")


class TestRun:
    def test_throughput_positive_and_deterministic(self):
        mount, trace = make_env()
        clock = SimClock()
        result = run_service(clock, mount, trace, service_spec("nginx"), requests=500)
        assert result.requests == 500
        assert result.requests_per_second > 0

        mount2, trace2 = make_env()
        clock2 = SimClock()
        result2 = run_service(
            clock2, mount2, trace2, service_spec("nginx"), requests=500
        )
        assert result2.duration_s == pytest.approx(result.duration_s)

    def test_writes_land_in_writable_layer(self):
        mount, trace = make_env()
        run_service(SimClock(), mount, trace, service_spec("redis"), requests=300)
        written = [p for p, _ in mount.upper.iter_files()]
        assert written  # SETs persisted

    def test_short_trace_rejected(self):
        mount, _ = make_env()
        empty = AccessTrace("x", (), compute_s=0.1)
        with pytest.raises(ValueError):
            run_service(SimClock(), mount, empty, service_spec("redis"))

    def test_steady_state_rate_independent_of_mount_depth(self):
        # The Fig. 11a claim: once resident, Gear's extra layer costs ~0.
        mount, trace = make_env()
        clock = SimClock()
        first = run_service(clock, mount, trace, service_spec("httpd"), requests=400)
        second = run_service(clock, mount, trace, service_spec("httpd"), requests=400)
        # Identical warm runs take identical time.
        assert second.duration_s == pytest.approx(first.duration_s, rel=0.05)
