"""Dedup engines: granularity invariants from Table II."""

import pytest

from repro.blob import Blob
from repro.dedup.engines import (
    chunk_level_dedup,
    file_level_dedup,
    full_table,
    layer_level_dedup,
    no_dedup,
)
from repro.docker.builder import ImageBuilder


def chain_of_images(n=3, shared=b"common payload " * 400):
    """Version chain sharing a base layer, each version adding a file."""
    base = ImageBuilder("base", "v1").add_file("/shared", shared).build()
    images = [base]
    for index in range(1, n):
        images.append(
            ImageBuilder("app", f"v{index}", base=base)
            .add_file(f"/app/file{index}", f"unique {index}".encode() * 200)
            .add_file("/app/same-everywhere", b"identical content" * 100)
            .build()
        )
    return images


class TestNoDedup:
    def test_counts_whole_images(self):
        images = chain_of_images()
        report = no_dedup(images)
        assert report.object_count == len(images)
        assert report.storage_bytes == sum(i.uncompressed_size for i in images)


class TestLayerLevel:
    def test_shared_layers_counted_once(self):
        images = chain_of_images()
        report = layer_level_dedup(images)
        # base layer + one unique layer per derived image.
        assert report.object_count == 1 + (len(images) - 1)

    def test_layer_storage_is_compressed(self):
        images = chain_of_images()
        report = layer_level_dedup(images)
        assert report.storage_bytes < report.logical_bytes


class TestFileLevel:
    def test_identical_files_across_images_dedup(self):
        images = chain_of_images()
        report = file_level_dedup(images)
        # /shared + /app/same-everywhere + one unique file per version.
        assert report.object_count == 2 + (len(images) - 1)

    def test_file_beats_layer(self):
        # Different layers containing identical files: layer dedup fails,
        # file dedup succeeds — the paper's core observation.
        a = ImageBuilder("a", "v1").add_file("/f", b"same" * 1000).add_file(
            "/a-only", b"a"
        ).build()
        b = ImageBuilder("b", "v1").add_file("/f", b"same" * 1000).add_file(
            "/b-only", b"b"
        ).build()
        assert layer_level_dedup([a, b]).object_count == 2
        file_report = file_level_dedup([a, b])
        assert file_report.object_count == 3
        assert file_report.storage_bytes < layer_level_dedup([a, b]).storage_bytes


class TestChunkLevel:
    def test_partially_shared_files_share_chunks(self):
        blob = Blob.synthetic("big", 128 * 1024 * 8)
        mutated = blob.mutate("edit", 0.25)
        a = ImageBuilder("a", "v1").add_file("/big", blob).build()
        b = ImageBuilder("b", "v1").add_file("/big", mutated).build()
        file_report = file_level_dedup([a, b])
        chunk_report = chunk_level_dedup([a, b])
        assert chunk_report.storage_bytes < file_report.storage_bytes
        assert chunk_report.object_count > file_report.object_count

    def test_identical_files_add_no_chunks(self):
        a = ImageBuilder("a", "v1").add_file("/f", b"x" * 1000).build()
        b = ImageBuilder("b", "v1").add_file("/f", b"x" * 1000).build()
        one = chunk_level_dedup([a])
        two = chunk_level_dedup([a, b])
        assert one.object_count == two.object_count


class TestOrdering:
    def test_granularity_monotonicity(self):
        """Finer granularity never stores more bytes (Table II's shape)."""
        images = chain_of_images(5)
        table = full_table(images)
        assert table["layer"].storage_bytes <= table["none"].storage_bytes
        assert table["file"].storage_bytes <= table["layer"].storage_bytes
        assert table["chunk"].storage_bytes <= table["file"].storage_bytes

    def test_object_counts_grow_with_granularity(self):
        images = chain_of_images(5)
        table = full_table(images)
        assert table["none"].object_count <= table["layer"].object_count
        assert table["layer"].object_count <= table["file"].object_count
        assert table["file"].object_count <= table["chunk"].object_count

    def test_saving_vs(self):
        images = chain_of_images()
        table = full_table(images)
        saving = table["file"].saving_vs(table["none"])
        assert 0 < saving < 1
