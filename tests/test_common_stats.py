"""Fractional nearest-rank percentiles: the deep-tail boundary cases.

p99.9 is the FaaS cold-start headline number, and it sits exactly on the
float trap: ``99.9 / 100 * 1000`` is ``999.0000000000001`` in binary, so
a naive ``ceil`` reports rank 1000 — p100 — precisely where tail reports
care most.  These tests pin the intended-decimal rank semantics for the
boundary sample sizes named in the ISSUE (n = 1, n = 1000, p = 99.9).
"""

import pytest

from repro.common.stats import EmptySampleError, percentile


class TestSingleton:
    def test_every_q_returns_the_value(self):
        for q in (0, 0.1, 50, 99.9, 100):
            assert percentile([7.5], q) == 7.5


class TestPair:
    def test_median_split(self):
        assert percentile([1.0, 2.0], 50) == 1.0
        assert percentile([1.0, 2.0], 50.1) == 2.0
        assert percentile([1.0, 2.0], 0) == 1.0
        assert percentile([1.0, 2.0], 100) == 2.0

    def test_order_does_not_matter(self):
        assert percentile([2.0, 1.0], 50) == percentile([1.0, 2.0], 50)


class TestDeepTail:
    def test_p999_over_1000_is_rank_999_not_1000(self):
        """The float trap: 0.999 * 1000 must not ceil to rank 1000."""
        values = list(range(1, 1001))  # ranks == values
        assert percentile(values, 99.9) == 999
        assert percentile(values, 100) == 1000
        assert percentile(values, 99) == 990

    def test_fractional_q_between_ranks_rounds_up(self):
        values = list(range(1, 101))
        # 99.95% of 100 = 99.95 → no integer rank intended → ceil → 100.
        assert percentile(values, 99.95) == 100
        # 99.5% of 100 = 99.5 → rank 100 too; 99.0 is exactly rank 99.
        assert percentile(values, 99.5) == 100
        assert percentile(values, 99.0) == 99

    def test_small_sample_fractional_q(self):
        values = [1.0, 2.0, 3.0, 4.0]
        # 99.9% of 4 = 3.996 → rank 4: a fractional tail never reads
        # below the max on tiny samples.
        assert percentile(values, 99.9) == 4.0
        assert percentile(values, 75) == 3.0
        assert percentile(values, 75.1) == 4.0

    def test_q_zero_is_minimum(self):
        assert percentile([3.0, 1.0, 2.0], 0) == 1.0


class TestValidation:
    def test_empty_raises_typed_error(self):
        with pytest.raises(EmptySampleError):
            percentile([], 50)

    def test_typed_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            percentile((), 99.9)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)
        with pytest.raises(ValueError):
            percentile([1.0], 100.1)
