"""Deterministic RNG helpers."""

import pytest

from repro.common.rng import bounded_lognormal, rng_for, weighted_choice


def test_rng_for_is_reproducible():
    a = rng_for("corpus", "nginx")
    b = rng_for("corpus", "nginx")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_rng_for_differs_by_tokens():
    assert rng_for("a").random() != rng_for("b").random()


def test_weighted_choice_respects_support():
    rng = rng_for("wc")
    weights = {"x": 1.0, "y": 3.0}
    picks = {weighted_choice(rng, weights) for _ in range(50)}
    assert picks <= {"x", "y"}
    assert "y" in picks  # overwhelmingly likely with weight 3:1 over 50 draws


def test_weighted_choice_single_key():
    rng = rng_for("wc2")
    assert weighted_choice(rng, {"only": 0.5}) == "only"


def test_weighted_choice_rejects_empty_and_nonpositive():
    rng = rng_for("wc3")
    with pytest.raises(ValueError):
        weighted_choice(rng, {})
    with pytest.raises(ValueError):
        weighted_choice(rng, {"a": 0.0})


def test_bounded_lognormal_respects_bounds():
    rng = rng_for("ln")
    for _ in range(200):
        value = bounded_lognormal(rng, median=1000, sigma=2.0, lo=10, hi=5000)
        assert 10 <= value <= 5000


def test_bounded_lognormal_rejects_bad_bounds():
    rng = rng_for("ln2")
    with pytest.raises(ValueError):
        bounded_lognormal(rng, 100, 1.0, lo=10, hi=5)
    with pytest.raises(ValueError):
        bounded_lognormal(rng, -1, 1.0, lo=0, hi=5)
