"""Chunk-granular big-file reads (the §VII future-work extension)."""

import pytest

from repro.blob import Blob, DEFAULT_CHUNK_SIZE
from repro.common.clock import SimClock
from repro.common.errors import GearError
from repro.common.units import MiB
from repro.gear.bigfile import ChunkedGearFileViewer
from repro.gear.gearfile import GearFile
from repro.gear.index import GearIndex
from repro.gear.pool import SharedFilePool
from repro.gear.registry import GearRegistry
from repro.net.link import Link
from repro.net.transport import RpcTransport
from repro.vfs.tree import FileSystemTree

BIG = 8 * MiB  # 64 chunks at 128 KiB


def build_env(threshold=1 * MiB):
    root = FileSystemTree()
    root.write_file("/models/weights.bin", Blob.synthetic("model", BIG), parents=True)
    root.write_file("/etc/small.conf", b"tiny", parents=True)
    index = GearIndex.from_tree("ai.gear", "v1", root)
    clock = SimClock()
    link = Link(clock, bandwidth_mbps=904)
    transport = RpcTransport(link)
    registry = GearRegistry()
    transport.bind(registry.endpoint())
    for _, node in root.iter_files():
        registry.upload(GearFile.from_blob(node.blob))
    viewer = ChunkedGearFileViewer(
        index, SharedFilePool(), transport=transport,
        big_file_threshold=threshold,
    )
    return viewer, link


class TestPartialReads:
    def test_range_read_fetches_only_covering_chunks(self):
        viewer, link = build_env()
        got = viewer.read_range("/models/weights.bin", 0, 100_000)
        assert got == 100_000
        assert viewer.chunk_stats.chunks_fetched == 1
        # Far less traffic than the whole 8 MiB file.
        assert link.log.total_bytes < 1 * MiB

    def test_range_spanning_chunks(self):
        viewer, _ = build_env()
        viewer.read_range(
            "/models/weights.bin", DEFAULT_CHUNK_SIZE - 10, 20
        )
        assert viewer.chunk_stats.chunks_fetched == 2

    def test_chunks_not_refetched(self):
        viewer, link = build_env()
        viewer.read_range("/models/weights.bin", 0, 10)
        bytes_after = link.log.total_bytes
        viewer.read_range("/models/weights.bin", 0, 10)
        assert viewer.chunk_stats.chunks_fetched == 1
        assert link.log.total_bytes == bytes_after

    def test_small_files_use_whole_file_path(self):
        viewer, _ = build_env()
        got = viewer.read_range("/etc/small.conf", 0, 4)
        assert got == 4
        assert viewer.chunk_stats.chunks_fetched == 0
        assert viewer.fault_stats.remote_fetches == 1

    def test_read_past_end_truncates(self):
        viewer, _ = build_env()
        got = viewer.read_range("/models/weights.bin", BIG - 5, 100)
        assert got == 5

    def test_rejects_negative_range(self):
        viewer, _ = build_env()
        with pytest.raises(ValueError):
            viewer.read_range("/models/weights.bin", -1, 10)


class TestPromotion:
    def test_full_coverage_promotes_to_pool(self):
        viewer, _ = build_env()
        viewer.read_range("/models/weights.bin", 0, BIG)
        entry = viewer.index.entries["/models/weights.bin"]
        assert viewer.pool.contains(entry.identity)
        # Subsequent whole-file reads are index-local.
        viewer.read_bytes("/models/weights.bin")
        assert viewer.fault_stats.remote_fetches == 0

    def test_partial_resident_bytes(self):
        viewer, _ = build_env()
        entry = viewer.index.entries["/models/weights.bin"]
        viewer.read_range("/models/weights.bin", 0, DEFAULT_CHUNK_SIZE)
        assert viewer.partial_resident_bytes(entry.identity) == DEFAULT_CHUNK_SIZE


class TestSavings:
    def test_partial_access_much_cheaper_than_whole_file(self):
        chunked, chunked_link = build_env()
        chunked.read_range("/models/weights.bin", 0, 256 * 1024)

        whole, whole_link = build_env(threshold=32 * MiB)  # disable chunking
        whole.read_range("/models/weights.bin", 0, 256 * 1024)

        assert chunked_link.log.total_bytes < whole_link.log.total_bytes / 5

    def test_bad_threshold_rejected(self):
        with pytest.raises(GearError):
            build_env(threshold=0)


class TestRangeEdgeCases:
    def test_read_range_on_directory_raises(self):
        viewer, _ = build_env()
        with pytest.raises(GearError):
            viewer.read_range("/models", 0, 10)

    def test_read_range_after_promotion_uses_pool(self):
        viewer, link = build_env()
        viewer.read_range("/models/weights.bin", 0, BIG)  # promote
        bytes_after = link.log.total_bytes
        got = viewer.read_range("/models/weights.bin", 0, 4096)
        assert got == 4096
        assert link.log.total_bytes == bytes_after

    def test_zero_length_range(self):
        viewer, _ = build_env()
        got = viewer.read_range("/models/weights.bin", 0, 0)
        assert got == 0
        # A zero-length read still resolves the chunk map but fetches no
        # data chunks.
        assert viewer.chunk_stats.chunks_fetched == 0
