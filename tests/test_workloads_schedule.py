"""Deployment schedule generation."""

import pytest

from repro.workloads.schedule import (
    BurstWindow,
    ScheduleBuilder,
    zipf_weights,
)
from repro.workloads.corpus import Corpus


class TestZipf:
    def test_weights_decrease(self):
        weights = zipf_weights(5, skew=1.0)
        assert weights == sorted(weights, reverse=True)
        assert weights[0] == 1.0

    def test_zero_skew_is_uniform(self):
        assert zipf_weights(4, skew=0.0) == [1.0] * 4

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(3, skew=-1)


class TestPopularityStream:
    def test_deterministic(self, small_corpus):
        builder = ScheduleBuilder(small_corpus)
        a = builder.popularity_stream(25)
        b = builder.popularity_stream(25)
        assert [event.image.reference for event in a] == [
            event.image.reference for event in b
        ]

    def test_length_and_positions(self, small_corpus):
        schedule = ScheduleBuilder(small_corpus).popularity_stream(10)
        assert len(schedule) == 10
        assert [event.position for event in schedule] == list(range(10))

    def test_repeats_marked_correctly(self, small_corpus):
        schedule = ScheduleBuilder(small_corpus).popularity_stream(40)
        seen = set()
        for event in schedule:
            assert event.is_repeat == (event.image.reference in seen)
            seen.add(event.image.reference)

    def test_popular_series_dominate(self, small_corpus):
        schedule = ScheduleBuilder(small_corpus).popularity_stream(
            200, skew=1.5
        )
        counts = {}
        for event in schedule:
            counts[event.image.spec.name] = (
                counts.get(event.image.spec.name, 0) + 1
            )
        top = max(counts.values())
        assert top > 200 / len(small_corpus.by_series)  # skewed, not uniform

    def test_version_drift_moves_forward_only(self, small_corpus):
        schedule = ScheduleBuilder(small_corpus).popularity_stream(
            100, version_drift=0.5
        )
        last_seen = {}
        for event in schedule:
            name = event.image.spec.name
            if name in last_seen:
                assert event.image.tag_index >= last_seen[name]
            last_seen[name] = event.image.tag_index

    def test_zero_length(self, small_corpus):
        builder = ScheduleBuilder(small_corpus)
        assert builder.popularity_stream(0) == []
        assert builder.repeat_rate([]) == 0.0

    def test_negative_length_rejected(self, small_corpus):
        with pytest.raises(ValueError):
            ScheduleBuilder(small_corpus).popularity_stream(-1)


class TestBurstWindow:
    def test_covers_is_half_open(self):
        window = BurstWindow(start_s=2.0, duration_s=3.0, factor=10.0)
        assert window.end_s == 5.0
        assert not window.covers(1.999)
        assert window.covers(2.0)
        assert window.covers(4.999)
        assert not window.covers(5.0)

    def test_rejects_bad_windows(self):
        with pytest.raises(ValueError):
            BurstWindow(start_s=-1.0, duration_s=1.0, factor=2.0)
        with pytest.raises(ValueError):
            BurstWindow(start_s=0.0, duration_s=0.0, factor=2.0)
        with pytest.raises(ValueError):
            BurstWindow(start_s=0.0, duration_s=1.0, factor=0.0)


class TestInvocationStream:
    def _stream(self, corpus, **kwargs):
        params = dict(duration_s=10.0, rate_per_s=5.0, functions=8)
        params.update(kwargs)
        return ScheduleBuilder(corpus).invocation_stream(**params)

    def test_same_seed_is_byte_identical(self, small_corpus):
        """The whole timeline replays: instants, functions, images."""
        a = self._stream(small_corpus)
        b = self._stream(small_corpus)
        assert [
            (e.position, e.at_s, e.function, e.image.reference, e.is_repeat)
            for e in a
        ] == [
            (e.position, e.at_s, e.function, e.image.reference, e.is_repeat)
            for e in b
        ]

    def test_different_seed_diverges(self, small_corpus):
        a = ScheduleBuilder(small_corpus, seed="a").invocation_stream(
            duration_s=10.0, rate_per_s=5.0, functions=8
        )
        b = ScheduleBuilder(small_corpus, seed="b").invocation_stream(
            duration_s=10.0, rate_per_s=5.0, functions=8
        )
        assert [e.at_s for e in a] != [e.at_s for e in b]

    def test_arrivals_monotonic_and_within_duration(self, small_corpus):
        stream = self._stream(small_corpus)
        assert stream  # 10 s at 5/s: the process produced arrivals
        last = 0.0
        for event in stream:
            assert last < event.at_s < 10.0
            last = event.at_s
        assert [e.position for e in stream] == list(range(len(stream)))

    def test_burst_window_densifies_arrivals(self, small_corpus):
        burst = BurstWindow(start_s=4.0, duration_s=2.0, factor=10.0)
        stream = self._stream(small_corpus, bursts=(burst,))
        inside = sum(1 for e in stream if burst.covers(e.at_s))
        outside = len(stream) - inside
        # 2 s at 50/s vs 8 s at 5/s: the spike must dominate.
        assert inside > outside

    def test_repeats_marked_per_function(self, small_corpus):
        stream = self._stream(small_corpus, rate_per_s=8.0)
        seen = set()
        for event in stream:
            assert event.is_repeat == (event.function in seen)
            seen.add(event.function)

    def test_functions_map_to_stable_images(self, small_corpus):
        stream = self._stream(small_corpus, rate_per_s=8.0)
        bound = {}
        for event in stream:
            assert bound.setdefault(event.function, event.image.reference) == (
                event.image.reference
            )

    def test_empty_corpus_is_a_typed_error(self, small_corpus):
        empty = Corpus(small_corpus.config, [])
        with pytest.raises(ValueError, match="no images"):
            ScheduleBuilder(empty).invocation_stream(
                duration_s=1.0, rate_per_s=1.0, functions=1
            )

    def test_rejects_bad_parameters(self, small_corpus):
        builder = ScheduleBuilder(small_corpus)
        with pytest.raises(ValueError):
            builder.invocation_stream(
                duration_s=0.0, rate_per_s=1.0, functions=1
            )
        with pytest.raises(ValueError):
            builder.invocation_stream(
                duration_s=1.0, rate_per_s=0.0, functions=1
            )
        with pytest.raises(ValueError):
            builder.invocation_stream(
                duration_s=1.0, rate_per_s=1.0, functions=0
            )


class TestRollingUpdates:
    def test_all_versions_in_order(self, small_corpus):
        schedule = ScheduleBuilder(small_corpus).rolling_update_stream("nginx")
        assert [event.image.tag for event in schedule] == [
            "v1", "v2", "v3", "v4",
        ]
        assert not any(event.is_repeat for event in schedule)

    def test_unknown_series_rejected(self, small_corpus):
        with pytest.raises(KeyError):
            ScheduleBuilder(small_corpus).rolling_update_stream("ghost")

    def test_repeat_rate(self, small_corpus):
        builder = ScheduleBuilder(small_corpus)
        schedule = builder.popularity_stream(50)
        rate = builder.repeat_rate(schedule)
        distinct = len({event.image.reference for event in schedule})
        assert rate == pytest.approx(1 - distinct / 50)
