"""Deployment schedule generation."""

import pytest

from repro.workloads.schedule import ScheduleBuilder, zipf_weights


class TestZipf:
    def test_weights_decrease(self):
        weights = zipf_weights(5, skew=1.0)
        assert weights == sorted(weights, reverse=True)
        assert weights[0] == 1.0

    def test_zero_skew_is_uniform(self):
        assert zipf_weights(4, skew=0.0) == [1.0] * 4

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(3, skew=-1)


class TestPopularityStream:
    def test_deterministic(self, small_corpus):
        builder = ScheduleBuilder(small_corpus)
        a = builder.popularity_stream(25)
        b = builder.popularity_stream(25)
        assert [event.image.reference for event in a] == [
            event.image.reference for event in b
        ]

    def test_length_and_positions(self, small_corpus):
        schedule = ScheduleBuilder(small_corpus).popularity_stream(10)
        assert len(schedule) == 10
        assert [event.position for event in schedule] == list(range(10))

    def test_repeats_marked_correctly(self, small_corpus):
        schedule = ScheduleBuilder(small_corpus).popularity_stream(40)
        seen = set()
        for event in schedule:
            assert event.is_repeat == (event.image.reference in seen)
            seen.add(event.image.reference)

    def test_popular_series_dominate(self, small_corpus):
        schedule = ScheduleBuilder(small_corpus).popularity_stream(
            200, skew=1.5
        )
        counts = {}
        for event in schedule:
            counts[event.image.spec.name] = (
                counts.get(event.image.spec.name, 0) + 1
            )
        top = max(counts.values())
        assert top > 200 / len(small_corpus.by_series)  # skewed, not uniform

    def test_version_drift_moves_forward_only(self, small_corpus):
        schedule = ScheduleBuilder(small_corpus).popularity_stream(
            100, version_drift=0.5
        )
        last_seen = {}
        for event in schedule:
            name = event.image.spec.name
            if name in last_seen:
                assert event.image.tag_index >= last_seen[name]
            last_seen[name] = event.image.tag_index

    def test_zero_length(self, small_corpus):
        builder = ScheduleBuilder(small_corpus)
        assert builder.popularity_stream(0) == []
        assert builder.repeat_rate([]) == 0.0

    def test_negative_length_rejected(self, small_corpus):
        with pytest.raises(ValueError):
            ScheduleBuilder(small_corpus).popularity_stream(-1)


class TestRollingUpdates:
    def test_all_versions_in_order(self, small_corpus):
        schedule = ScheduleBuilder(small_corpus).rolling_update_stream("nginx")
        assert [event.image.tag for event in schedule] == [
            "v1", "v2", "v3", "v4",
        ]
        assert not any(event.is_repeat for event in schedule)

    def test_unknown_series_rejected(self, small_corpus):
        with pytest.raises(KeyError):
            ScheduleBuilder(small_corpus).rolling_update_stream("ghost")

    def test_repeat_rate(self, small_corpus):
        builder = ScheduleBuilder(small_corpus)
        schedule = builder.popularity_stream(50)
        rate = builder.repeat_rate(schedule)
        distinct = len({event.image.reference for event in schedule})
        assert rate == pytest.approx(1 - distinct / 50)
