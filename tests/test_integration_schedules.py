"""Integration: deployment schedules driven through the real systems."""

import pytest

from repro.bench.deploy import deploy_with_docker, deploy_with_gear
from repro.bench.environment import make_testbed, publish_images
from repro.workloads.schedule import ScheduleBuilder


@pytest.fixture
def scheduled_env(small_corpus):
    testbed = make_testbed(bandwidth_mbps=100)
    publish_images(testbed, small_corpus.images, convert=True)
    schedule = ScheduleBuilder(small_corpus).popularity_stream(
        15, skew=1.2, version_drift=0.3
    )
    return testbed, schedule


class TestScheduledDeployments:
    def test_repeats_cost_nothing_under_gear(self, scheduled_env):
        testbed, schedule = scheduled_env
        repeat_bytes = []
        first_bytes = []
        for event in schedule:
            result = deploy_with_gear(testbed, event.image)
            (repeat_bytes if event.is_repeat else first_bytes).append(
                result.network_bytes
            )
        if repeat_bytes and first_bytes:
            # Re-deploying a known reference reuses the local index and
            # every cached file: near-zero traffic.
            assert max(repeat_bytes) < min(
                b for b in first_bytes if b > 0
            )

    def test_gear_total_traffic_below_docker(self, small_corpus):
        schedule_source = ScheduleBuilder(small_corpus)
        schedule = schedule_source.popularity_stream(12, skew=1.2)

        docker_bed = make_testbed(bandwidth_mbps=100)
        publish_images(docker_bed, small_corpus.images, convert=True)
        docker_traffic = 0
        for event in schedule:
            docker_traffic += deploy_with_docker(
                docker_bed, event.image
            ).network_bytes

        gear_bed = make_testbed(bandwidth_mbps=100)
        publish_images(gear_bed, small_corpus.images, convert=True)
        gear_traffic = 0
        for event in schedule:
            gear_traffic += deploy_with_gear(
                gear_bed, event.image
            ).network_bytes

        assert gear_traffic < docker_traffic * 0.7

    def test_version_drift_pulls_only_deltas(self, small_corpus):
        """Rolling one series forward: each new version's traffic is far
        below a cold deployment of the same version."""
        testbed = make_testbed(bandwidth_mbps=100)
        publish_images(testbed, small_corpus.images, convert=True)
        stream = ScheduleBuilder(small_corpus).rolling_update_stream("tomcat")
        traffics = [
            deploy_with_gear(testbed, event.image).network_bytes
            for event in stream
        ]
        cold_bed = make_testbed(bandwidth_mbps=100)
        publish_images(cold_bed, small_corpus.images, convert=True)
        cold = deploy_with_gear(
            cold_bed, stream[-1].image
        ).network_bytes
        assert traffics[-1] < cold * 0.8

    def test_schedule_is_replayable_across_systems(self, small_corpus):
        builder = ScheduleBuilder(small_corpus)
        a = builder.popularity_stream(20)
        b = builder.popularity_stream(20)
        assert [e.image.reference for e in a] == [
            e.image.reference for e in b
        ]
