"""Task models driving startup traces."""

import pytest

from repro.common.clock import SimClock
from repro.vfs.overlay import OverlayMount
from repro.vfs.tree import FileSystemTree
from repro.workloads.access import AccessTrace
from repro.workloads.tasks import TaskModel, task_for_category


def make_mount_and_trace():
    tree = FileSystemTree()
    tree.write_file("/bin/app", b"x" * 10_000, parents=True)
    tree.write_file("/etc/conf", b"y" * 500, parents=True)
    mount = OverlayMount([tree.freeze()])
    trace = AccessTrace(
        reference="app:v1",
        accesses=(("/bin/app", 10_000), ("/etc/conf", 500)),
        compute_s=0.5,
    )
    return mount, trace


class TestTaskRun:
    def test_reads_all_trace_files(self):
        clock = SimClock()
        mount, trace = make_mount_and_trace()
        result = task_for_category("Linux Distro").run(clock, mount, trace)
        assert result.files_read == 2
        assert result.bytes_read == 10_500

    def test_advances_clock_by_at_least_compute(self):
        clock = SimClock()
        mount, trace = make_mount_and_trace()
        result = task_for_category("Linux Distro").run(clock, mount, trace)
        assert result.duration_s >= trace.compute_s
        assert clock.now == pytest.approx(result.duration_s)

    def test_write_categories_write_files(self):
        clock = SimClock()
        mount, trace = make_mount_and_trace()
        task = task_for_category("Database")
        result = task.run(clock, mount, trace)
        assert result.bytes_written == task.writes * task.write_bytes
        assert mount.exists("/var/run/task-0.out")

    def test_unknown_category_raises(self):
        with pytest.raises(KeyError):
            task_for_category("Mystery")

    def test_every_catalog_category_has_task(self):
        from repro.workloads.series import CATEGORIES

        for category in CATEGORIES:
            assert task_for_category(category).category == category


class TestAccessTrace:
    def test_aggregates(self):
        trace = AccessTrace("r", (("/a", 10), ("/b", 20)), compute_s=1.0)
        assert trace.total_bytes == 30
        assert trace.file_count == 2
        assert trace.paths == ["/a", "/b"]

    def test_head(self):
        trace = AccessTrace("r", (("/a", 10), ("/b", 20)), compute_s=1.0)
        assert trace.head(1).accesses == (("/a", 10),)

    def test_redundancy_helper(self):
        from repro.workloads.access import redundancy_ratio

        a = AccessTrace("r1", (("/a", 10), ("/b", 20)), compute_s=0.1)
        b = AccessTrace("r2", (("/a", 10), ("/c", 30)), compute_s=0.1)
        # 70 total, 60 unique -> redundancy 1/7.
        assert redundancy_ratio([a, b]) == pytest.approx(10 / 70)

    def test_redundancy_empty(self):
        from repro.workloads.access import redundancy_ratio

        assert redundancy_ratio([]) == 0.0
