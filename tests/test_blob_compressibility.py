"""The deterministic compression model."""

import pytest
from hypothesis import given, strategies as st

from repro.blob import Blob, Chunk, chunk_compressed_size, chunk_compressibility
from repro.blob.compressibility import blob_compressed_size


def test_ratio_is_deterministic():
    assert chunk_compressibility("seed-x") == chunk_compressibility("seed-x")


@given(st.text(min_size=1, max_size=30))
def test_ratio_in_unit_interval(seed):
    ratio = chunk_compressibility(seed)
    assert 0.0 < ratio <= 1.0


def test_compressed_size_never_exceeds_original():
    for i in range(100):
        chunk = Chunk(seed=f"s{i}", size=100_000)
        assert chunk_compressed_size(chunk) <= chunk.size


def test_compressed_size_zero_for_empty():
    assert chunk_compressed_size(Chunk(seed="s", size=0)) == 0


def test_compressed_size_has_floor():
    chunk = Chunk(seed="s", size=20)
    assert chunk_compressed_size(chunk) >= 16


def test_identical_chunks_compress_identically():
    a = Chunk(seed="same", size=4096)
    b = Chunk(seed="same", size=4096)
    assert chunk_compressed_size(a) == chunk_compressed_size(b)


def test_blob_compressed_size_is_chunk_sum():
    blob = Blob.synthetic("s", 400_000)
    assert blob_compressed_size(blob) == sum(
        chunk_compressed_size(c) for c in blob.chunks
    )


def test_population_average_ratio_is_plausible():
    # The mixture should land in gzip territory for container images
    # (roughly 2-3x compression on average).
    sizes = 0
    compressed = 0
    for i in range(500):
        chunk = Chunk(seed=f"pop{i}", size=128 * 1024)
        sizes += chunk.size
        compressed += chunk_compressed_size(chunk)
    ratio = compressed / sizes
    assert 0.30 < ratio < 0.60
