"""Blob identity, chunking, materialization, and mutation."""

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.blob import Blob, Chunk, DEFAULT_CHUNK_SIZE


class TestChunk:
    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            Chunk(seed="s", size=-1)

    def test_rejects_literal_size_mismatch(self):
        with pytest.raises(ValueError):
            Chunk(seed="s", size=3, literal=b"ab")

    def test_literal_materializes_to_itself(self):
        chunk = Chunk(seed="s", size=3, literal=b"abc")
        assert chunk.materialize() == b"abc"

    def test_synthetic_materialization_is_deterministic(self):
        chunk = Chunk(seed="seed-1", size=1000)
        assert chunk.materialize() == chunk.materialize()
        assert len(chunk.materialize()) == 1000

    def test_different_seeds_differ(self):
        assert Chunk(seed="a", size=64).materialize() != Chunk(
            seed="b", size=64
        ).materialize()

    def test_empty_chunk(self):
        assert Chunk(seed="s", size=0).materialize() == b""


class TestBlobFromBytes:
    def test_fingerprint_matches_md5_for_small_content(self):
        data = b"hello gear"
        assert Blob.from_bytes(data).fingerprint == hashlib.md5(data).hexdigest()

    def test_equal_content_equal_fingerprint(self):
        assert Blob.from_bytes(b"x" * 10).fingerprint == Blob.from_bytes(
            b"x" * 10
        ).fingerprint

    def test_roundtrip(self):
        data = bytes(range(256)) * 700  # multi-chunk at small chunk size
        blob = Blob.from_bytes(data, chunk_size=4096)
        assert blob.materialize() == data
        assert blob.size == len(data)

    def test_empty_blob(self):
        blob = Blob.from_bytes(b"")
        assert blob.size == 0
        assert blob.materialize() == b""

    def test_chunking_boundary(self):
        data = b"a" * (DEFAULT_CHUNK_SIZE + 1)
        blob = Blob.from_bytes(data)
        assert len(blob.chunks) == 2
        assert blob.chunks[0].size == DEFAULT_CHUNK_SIZE
        assert blob.chunks[1].size == 1

    def test_rejects_nonpositive_chunk_size(self):
        with pytest.raises(ValueError):
            Blob.from_bytes(b"abc", chunk_size=0)

    def test_identical_chunks_share_identity(self):
        # Two files sharing a 4096-byte prefix at chunk granularity.
        prefix = b"p" * 4096
        a = Blob.from_bytes(prefix + b"1" * 4096, chunk_size=4096)
        b = Blob.from_bytes(prefix + b"2" * 4096, chunk_size=4096)
        assert a.chunks[0].token == b.chunks[0].token
        assert a.chunks[1].token != b.chunks[1].token


class TestBlobSynthetic:
    def test_size_and_chunk_count(self):
        blob = Blob.synthetic("s", 300_000)
        assert blob.size == 300_000
        assert len(blob.chunks) == 3  # 128K + 128K + 44K

    def test_same_seed_same_fingerprint(self):
        assert (
            Blob.synthetic("s", 1000).fingerprint
            == Blob.synthetic("s", 1000).fingerprint
        )

    def test_different_seed_different_fingerprint(self):
        assert (
            Blob.synthetic("s1", 1000).fingerprint
            != Blob.synthetic("s2", 1000).fingerprint
        )

    def test_zero_size(self):
        blob = Blob.synthetic("s", 0)
        assert blob.size == 0

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            Blob.synthetic("s", -5)

    def test_materialization_matches_size(self):
        blob = Blob.synthetic("s", 5000)
        assert len(blob.materialize()) == 5000


class TestMutate:
    def test_mutation_changes_fingerprint(self):
        blob = Blob.synthetic("s", 500_000)
        assert blob.mutate("m1", 0.25).fingerprint != blob.fingerprint

    def test_mutation_shares_expected_chunks(self):
        blob = Blob.synthetic("s", 128 * 1024 * 8)  # exactly 8 chunks
        mutated = blob.mutate("m1", 0.25)
        shared = set(blob.chunk_tokens()) & set(mutated.chunk_tokens())
        assert len(shared) == 6  # 8 - round(8*0.25)

    def test_mutation_is_deterministic(self):
        blob = Blob.synthetic("s", 500_000)
        assert blob.mutate("m", 0.5).fingerprint == blob.mutate("m", 0.5).fingerprint

    def test_mutation_always_changes_at_least_one_chunk(self):
        blob = Blob.synthetic("s", 1000)  # single chunk
        mutated = blob.mutate("m", 0.0)
        assert mutated.fingerprint != blob.fingerprint

    def test_size_delta_grows_blob(self):
        blob = Blob.synthetic("s", 1000)
        grown = blob.mutate("m", 0.0, size_delta=500)
        assert grown.size == 1500

    def test_size_delta_never_negative(self):
        blob = Blob.synthetic("s", 100)
        shrunk = blob.mutate("m", 0.0, size_delta=-1000)
        assert shrunk.size == 0

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            Blob.synthetic("s", 100).mutate("m", 1.5)


class TestBlobEquality:
    def test_eq_and_hash_by_content(self):
        a = Blob.synthetic("s", 1000)
        b = Blob.synthetic("s", 1000)
        assert a == b
        assert hash(a) == hash(b)

    def test_len(self):
        assert len(Blob.synthetic("s", 123)) == 123


@settings(max_examples=40)
@given(st.binary(min_size=0, max_size=2000))
def test_property_from_bytes_roundtrip(data):
    blob = Blob.from_bytes(data, chunk_size=256)
    assert blob.materialize() == data
    assert blob.size == len(data)


@settings(max_examples=40)
@given(st.integers(min_value=0, max_value=2_000_000))
def test_property_synthetic_size(size):
    assert Blob.synthetic("s", size).size == size
