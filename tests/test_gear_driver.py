"""The Gear Driver: three-level storage, deploy flow, life-cycle decoupling."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import GearError, NotFoundError
from repro.docker.builder import ImageBuilder
from repro.docker.daemon import DockerDaemon
from repro.docker.registry import DockerRegistry
from repro.gear.converter import GearConverter
from repro.gear.driver import GearDriver
from repro.gear.index import STUB_XATTR
from repro.gear.registry import GearRegistry
from repro.net.link import Link
from repro.net.transport import RpcTransport


@pytest.fixture
def env():
    clock = SimClock()
    link = Link(clock, bandwidth_mbps=904)
    transport = RpcTransport(link)
    docker_registry = DockerRegistry()
    gear_registry = GearRegistry()
    transport.bind(docker_registry.endpoint())
    transport.bind(gear_registry.endpoint())
    base = ImageBuilder("debian", "v1").add_file("/bin/sh", b"sh" * 4000).build()
    nginx = (
        ImageBuilder("nginx", "v1", base=base)
        .add_file("/usr/nginx", b"ngx" * 8000)
        .build()
    )
    docker_registry.push_image(base)
    docker_registry.push_image(nginx)
    converter = GearConverter(clock, docker_registry, gear_registry)
    converter.convert("debian:v1")
    converter.convert("nginx:v1")
    daemon = DockerDaemon(clock, transport)
    driver = GearDriver(clock, daemon, transport)
    return clock, link, driver, daemon


class TestPullIndex:
    def test_pull_downloads_only_index_bytes(self, env):
        _, link, driver, _ = env
        report = driver.pull_index("nginx.gear:v1")
        # The index is tiny compared to the image payload (~36 KB here).
        assert 0 < report.index_bytes < 20_000
        assert not report.index_reused

    def test_second_pull_reuses_index(self, env):
        _, _, driver, _ = env
        driver.pull_index("nginx.gear:v1")
        report = driver.pull_index("nginx.gear:v1")
        assert report.index_reused

    def test_regular_image_rejected(self, env):
        _, _, driver, _ = env
        with pytest.raises(GearError):
            driver.pull_index("nginx:v1")

    def test_missing_reference_raises(self, env):
        _, _, driver, _ = env
        with pytest.raises(NotFoundError):
            driver.pull_index("ghost.gear:v1")


class TestDeploy:
    def test_deploy_starts_without_fetching_files(self, env):
        _, link, driver, _ = env
        container, report = driver.deploy("nginx.gear:v1")
        assert container.state.value == "running"
        assert container.mount.fault_stats.remote_fetches == 0

    def test_reads_fault_on_demand(self, env):
        _, _, driver, _ = env
        container, _ = driver.deploy("nginx.gear:v1")
        assert container.mount.read_bytes("/usr/nginx") == b"ngx" * 8000
        assert container.mount.fault_stats.remote_fetches == 1

    def test_containers_of_one_image_share_level2(self, env):
        _, _, driver, _ = env
        first, _ = driver.deploy("nginx.gear:v1")
        first.mount.read_bytes("/usr/nginx")
        second = driver.create_container("nginx.gear:v1")
        second.mount.read_bytes("/usr/nginx")
        assert second.mount.fault_stats.faults == 0  # served from index

    def test_images_share_level1_cache(self, env):
        _, _, driver, _ = env
        nginx, _ = driver.deploy("nginx.gear:v1")
        nginx.mount.read_bytes("/bin/sh")
        debian, _ = driver.deploy("debian.gear:v1")
        debian.mount.read_bytes("/bin/sh")
        assert debian.mount.fault_stats.cache_hits == 1
        assert debian.mount.fault_stats.remote_fetches == 0


class TestLifecycleDecoupling:
    def test_destroy_container_keeps_index_and_cache(self, env):
        _, _, driver, _ = env
        container, _ = driver.deploy("nginx.gear:v1")
        container.mount.read_bytes("/usr/nginx")
        driver.destroy_container(container)
        # A new instance launches from level 2 without refetching.
        fresh = driver.create_container("nginx.gear:v1")
        fresh.mount.read_bytes("/usr/nginx")
        assert fresh.mount.fault_stats.remote_fetches == 0

    def test_remove_image_keeps_files_in_cache(self, env):
        _, _, driver, _ = env
        container, _ = driver.deploy("nginx.gear:v1")
        container.mount.read_bytes("/bin/sh")
        driver.destroy_container(container)
        driver.remove_image("nginx.gear:v1")
        assert "nginx.gear:v1" not in driver.images()
        # The shared /bin/sh file survives for other images.
        debian, _ = driver.deploy("debian.gear:v1")
        debian.mount.read_bytes("/bin/sh")
        assert debian.mount.fault_stats.cache_hits == 1

    def test_remove_image_unpins_cached_files(self, env):
        _, _, driver, _ = env
        container, _ = driver.deploy("nginx.gear:v1")
        container.mount.read_bytes("/usr/nginx")
        entry = driver.get_index("nginx.gear:v1").entries["/usr/nginx"]
        inode = driver.pool.get(entry.identity)
        assert inode.nlink >= 2
        driver.remove_image("nginx.gear:v1")
        assert inode.nlink == 1  # only the pool holds it: evictable

    def test_remove_missing_image_raises(self, env):
        _, _, driver, _ = env
        with pytest.raises(NotFoundError):
            driver.remove_image("nginx.gear:v1")

    def test_destroy_cost_scales_with_touched_inodes(self, env):
        clock, _, driver, _ = env
        quiet, _ = driver.deploy("nginx.gear:v1")
        quiet_cost = driver.destroy_container(quiet)
        busy = driver.create_container("nginx.gear:v1")
        driver.start_container(busy)
        busy.mount.read_bytes("/usr/nginx")
        busy.mount.read_bytes("/bin/sh")
        busy_cost = driver.destroy_container(busy)
        assert busy_cost > quiet_cost


class TestGearVsDockerBytes:
    def test_gear_transfers_less_than_docker_for_partial_access(self, env):
        _, link, driver, daemon = env
        container, _ = driver.deploy("nginx.gear:v1")
        container.mount.read_bytes("/usr/nginx")  # only one of two files
        gear_bytes = link.log.total_bytes
        link.log.clear()
        daemon.pull("nginx:v1")
        docker_bytes = link.log.total_bytes
        assert gear_bytes < docker_bytes
