"""Crash injection, journal-driven fsck, and resumable deployments.

The torn-state taxonomy (DESIGN.md §9), one crash point at a time; then
the golden invariant: crash + fsck + resume produces a container
filesystem byte-identical to an uncrashed control run, re-fetching
nothing the journal had already committed.
"""

import pytest

from repro.bench.deploy import (
    container_fs_digest,
    deploy_with_gear,
    deploy_with_gear_resumable,
)
from repro.bench.environment import make_testbed, publish_images
from repro.common.clock import SimClock, SimEvent, SimScheduler
from repro.common.errors import ClientCrash
from repro.gear.index import STUB_XATTR
from repro.gear.journal import IntentJournal
from repro.gear.pool import SharedFilePool
from repro.gear.recovery import fsck
from repro.net.faults import CrashPlan, CrashPoint

ALL_POINTS = tuple(CrashPoint)


@pytest.fixture
def victim(small_corpus):
    return small_corpus.by_series["nginx"][0]


def _published(small_corpus):
    testbed = make_testbed()
    publish_images(testbed, small_corpus.images, convert=True)
    return testbed


def _crash_deploy(testbed, generated, plan) -> ClientCrash:
    """Arm ``plan``, deploy, and return the crash (which must fire)."""
    testbed.gear_driver.arm_crash(plan)
    with pytest.raises(ClientCrash) as excinfo:
        deploy_with_gear(testbed, generated)
    testbed.gear_driver.disarm_crash()
    return excinfo.value


def _nlink_census_ok(driver) -> bool:
    """Every pool inode: nlink == 1 (pool) + live index links."""
    for identity in driver.pool.identities():
        inode = driver.pool.peek(identity)
        links = 0
        for reference in driver.images():
            tree = driver.get_index(reference).tree
            links += sum(1 for _, node in tree.iter_files() if node is inode)
        if inode.nlink != 1 + links:
            return False
    return True


class TestTornStateTaxonomy:
    def test_mid_fetch_leaves_torn_partial_and_fsck_drops_it(
        self, small_corpus, victim
    ):
        testbed = _published(small_corpus)
        plan = CrashPlan(point=CrashPoint.MID_FETCH, op_index=1)
        crash = _crash_deploy(testbed, victim, plan)
        assert crash.point == "mid-fetch"
        driver = testbed.gear_driver
        # The torn partial is staged, invisible, and journaled as open.
        assert driver.pool.staged_count == 1
        state = driver.journal.replay()
        assert len(state.open_fetches) == 1
        torn_identity = state.open_fetches[0]
        assert driver.pool.is_staged(torn_identity)

        report = driver.recover()
        assert report.torn_dropped == 1
        assert report.torn_bytes > 0
        assert report.salvaged == 0 and report.rolled_forward == 0
        # The junk bytes are gone: the identity must be fetched again.
        assert not driver.pool.contains(torn_identity)
        assert driver.pool.staged_count == 0
        assert len(driver.journal) == 0

    def test_post_fetch_intact_bytes_are_salvaged(self, small_corpus, victim):
        testbed = _published(small_corpus)
        plan = CrashPlan(point=CrashPoint.POST_FETCH, op_index=1)
        _crash_deploy(testbed, victim, plan)
        driver = testbed.gear_driver
        state = driver.journal.replay()
        salvage_identity = state.open_fetches[0]

        report = driver.recover()
        # Journal says "open" but the staged bytes verify: promoted
        # without re-fetching a single byte.
        assert report.salvaged == 1
        assert report.torn_dropped == 0
        assert report.recovered_bytes > 0
        assert driver.pool.contains(salvage_identity)

    def test_mid_commit_rolls_forward(self, small_corpus, victim):
        testbed = _published(small_corpus)
        plan = CrashPlan(point=CrashPoint.MID_COMMIT, op_index=1)
        _crash_deploy(testbed, victim, plan)
        driver = testbed.gear_driver
        state = driver.journal.replay()
        committed = state.committed_fetches
        assert len(committed) >= 1

        report = driver.recover()
        assert report.rolled_forward == 1
        assert report.salvaged == 0 and report.torn_dropped == 0
        for identity in committed:
            assert driver.pool.contains(identity)

    def test_mid_link_intact_link_is_repaired(self, small_corpus, victim):
        testbed = _published(small_corpus)
        plan = CrashPlan(point=CrashPoint.MID_LINK, op_index=1)
        _crash_deploy(testbed, victim, plan)
        driver = testbed.gear_driver
        state = driver.journal.replay()
        assert len(state.open_links) == 1
        record = state.open_links[0]
        # The physical hard link landed before the crash.
        index = driver.get_index(record.reference)
        node = index.tree.stat(record.path, follow_symlinks=False)
        assert STUB_XATTR not in node.meta.xattrs

        report = driver.recover()
        assert report.links_repaired == 1
        assert report.links_rolled_back == 0
        assert _nlink_census_ok(driver)

    def test_mid_link_with_lost_pool_entry_rolls_back_to_stub(
        self, small_corpus, victim
    ):
        testbed = _published(small_corpus)
        plan = CrashPlan(point=CrashPoint.MID_LINK, op_index=1)
        _crash_deploy(testbed, victim, plan)
        driver = testbed.gear_driver
        record = driver.journal.replay().open_links[0]
        # The pool entry vanished between link and commit (an eviction
        # raced the crash): the link is dangling.
        driver.pool.drop(record.identity)

        report = driver.recover()
        assert report.links_rolled_back == 1
        assert report.dangling_links == 1
        node = driver.get_index(record.reference).tree.stat(
            record.path, follow_symlinks=False
        )
        # Rolled back to a pristine, re-faultable stub.
        assert STUB_XATTR in node.meta.xattrs


class TestFsckInvariants:
    @pytest.mark.parametrize("point", ALL_POINTS, ids=lambda p: p.value)
    def test_store_is_clean_after_fsck(self, small_corpus, victim, point):
        testbed = _published(small_corpus)
        _crash_deploy(testbed, victim, CrashPlan(point=point, op_index=1))
        driver = testbed.gear_driver
        driver.recover()
        assert driver.pool.staged_count == 0
        assert not driver.pool.inflight
        assert len(driver.journal) == 0
        assert driver.journal.replay().open_links == []
        assert _nlink_census_ok(driver)

    @pytest.mark.parametrize("point", ALL_POINTS, ids=lambda p: p.value)
    def test_fsck_is_idempotent(self, small_corpus, victim, point):
        testbed = _published(small_corpus)
        _crash_deploy(testbed, victim, CrashPlan(point=point, op_index=1))
        driver = testbed.gear_driver
        driver.recover()
        second = driver.recover()
        assert second.repairs == 0
        assert second.journal_records == 0

    def test_fsck_clears_inflight_markers(self):
        clock = SimClock()
        pool = SharedFilePool()
        event = SimEvent(clock)
        pool.inflight["dead-fetch"] = event
        report = fsck(pool, [], [], IntentJournal(clock), clock=clock)
        assert report.inflight_cleared == 1
        assert not pool.inflight
        assert event.fired  # waiters wake and re-check the pool

    def test_fsck_charges_virtual_time_for_verification(
        self, small_corpus, victim
    ):
        testbed = _published(small_corpus)
        plan = CrashPlan(point=CrashPoint.POST_FETCH, op_index=1)
        _crash_deploy(testbed, victim, plan)
        before = testbed.clock.now
        report = testbed.gear_driver.recover()
        assert report.verify_bytes > 0
        assert report.fsck_s > 0
        assert testbed.clock.now == pytest.approx(before + report.fsck_s)

    def test_fsck_on_clean_store_repairs_nothing(self, small_corpus, victim):
        testbed = _published(small_corpus)
        deploy_with_gear(testbed, victim)
        report = testbed.gear_driver.recover()
        assert report.repairs == 0
        assert report.verify_bytes == 0


class TestResumableDeployment:
    @pytest.mark.parametrize("point", ALL_POINTS, ids=lambda p: p.value)
    def test_golden_resume_equivalence(self, small_corpus, victim, point):
        control = deploy_with_gear_resumable(
            _published(small_corpus), victim, None
        )
        assert not control.crashed

        plan = CrashPlan(point=point, seed="golden", horizon=4)
        out = deploy_with_gear_resumable(
            _published(small_corpus), victim, plan
        )
        assert out.crashed
        assert out.crash_point == point.value
        # Byte-identical container fs, nothing committed re-fetched.
        assert out.fs_digest == control.fs_digest
        assert out.refetched_committed == 0
        assert out.result.network_bytes <= control.result.network_bytes

    def test_unfired_plan_degenerates_to_plain_deploy(
        self, small_corpus, victim
    ):
        # An op index past the run's actual fetch count never fires; the
        # deployment must complete as if no plan were armed.
        plan = CrashPlan(point=CrashPoint.MID_FETCH, op_index=10_000)
        out = deploy_with_gear_resumable(_published(small_corpus), victim, plan)
        assert not out.crashed
        assert out.recovery is None

    def test_resume_reuses_recovered_bytes(self, small_corpus, victim):
        plan = CrashPlan(point=CrashPoint.MID_COMMIT, op_index=2)
        out = deploy_with_gear_resumable(_published(small_corpus), victim, plan)
        assert out.crashed
        # Recovery promoted the interrupted admission; with the earlier
        # committed files it makes the resumed run strictly cheaper.
        assert out.recovery.rolled_forward == 1
        assert out.result.files_fetched < (
            out.result.files_fetched + out.result.cache_hits
        )

    def test_crash_at_virtual_instant(self, small_corpus, victim):
        testbed = _published(small_corpus)
        start = testbed.clock.now
        plan = CrashPlan(point=CrashPoint.MID_FETCH, at_s=start)
        crash = _crash_deploy(testbed, victim, plan)
        # Fires on the first mid-fetch checkpoint at/after the instant.
        assert crash.at_s >= start
        assert crash.op_index == 0

    def test_deploy_report_records_the_interruption(
        self, small_corpus, victim
    ):
        testbed = _published(small_corpus)
        plan = CrashPlan(point=CrashPoint.POST_FETCH, op_index=1)
        out = deploy_with_gear_resumable(testbed, victim, plan)
        reference = out.result.reference.replace("nginx:", "nginx.gear:")
        report = testbed.gear_driver.deploy_report(reference)
        assert report.crashed and report.resumed
        assert report.crash_point == "post-fetch"
        assert report.recovery_s == pytest.approx(out.recovery_s)
        assert report.recovered_files == 1


class TestCrashUnderScheduler:
    def test_crash_propagates_and_abort_cancels_survivors(
        self, small_corpus, victim
    ):
        # A node crash kills every process on it: the ClientCrash
        # surfaces from run(), then abort() models the power loss by
        # cancelling whatever the siblings still had scheduled.
        testbed = _published(small_corpus)
        driver = testbed.gear_driver
        driver.arm_crash(CrashPlan(point=CrashPoint.MID_FETCH, op_index=1))
        reference = victim.reference.replace("nginx:", "nginx.gear:")
        driver.pull_index(reference)
        scheduler = SimScheduler(testbed.clock)
        try:
            container = driver.create_container(reference)
            driver.start_container(container)

            def ticker():
                # Outlives the doomed startup task; only abort() stops it.
                while True:
                    yield 0.05

            def startup():
                from repro.workloads.tasks import task_for_category

                task = task_for_category(victim.category)
                task.run(testbed.clock, container.mount, victim.trace)

            scheduler.spawn(ticker())
            startup_proc = scheduler.spawn(startup, name="startup")
            with pytest.raises(ClientCrash):
                scheduler.run_until(startup_proc)
            assert scheduler.abort() > 0
        finally:
            scheduler.close()
        driver.disarm_crash()
        # The store is recoverable exactly as in the sequential case.
        report = driver.recover()
        assert report.torn_dropped == 1
        assert len(driver.journal) == 0
