"""Virtual clock semantics."""

import pytest

from repro.common.clock import SimClock


def test_clock_starts_at_zero():
    assert SimClock().now == 0.0


def test_advance_accumulates():
    clock = SimClock()
    clock.advance(1.5)
    clock.advance(0.25)
    assert clock.now == pytest.approx(1.75)


def test_advance_rejects_negative():
    with pytest.raises(ValueError):
        SimClock().advance(-0.1)


def test_advance_zero_is_allowed():
    clock = SimClock()
    clock.advance(0.0)
    assert clock.now == 0.0


def test_reset():
    clock = SimClock()
    clock.advance(5)
    clock.reset()
    assert clock.now == 0.0


def test_trace_records_labels_when_enabled():
    clock = SimClock(trace=True)
    clock.advance(1.0, "pull")
    clock.advance(2.0, "run")
    assert clock.trace == [(1.0, "pull"), (3.0, "run")]


def test_trace_disabled_by_default():
    clock = SimClock()
    clock.advance(1.0, "pull")
    assert clock.trace == []


def test_stopwatch_measures_elapsed():
    clock = SimClock()
    watch = clock.timer()
    clock.advance(2.0)
    assert watch.elapsed() == pytest.approx(2.0)


def test_stopwatch_restart_returns_lap():
    clock = SimClock()
    watch = clock.timer()
    clock.advance(1.0)
    assert watch.restart() == pytest.approx(1.0)
    clock.advance(0.5)
    assert watch.elapsed() == pytest.approx(0.5)
