"""Trace-driven prefetching extension."""

import pytest

from repro.bench.environment import make_testbed, publish_images
from repro.bench.deploy import deploy_with_gear, deploy_with_gear_overlapped
from repro.common.errors import GearError
from repro.gear.prefetch import Prefetcher, StartupProfile, TraceRecorder


@pytest.fixture
def env(small_corpus):
    testbed = make_testbed(bandwidth_mbps=100)
    publish_images(testbed, small_corpus.images, convert=True)
    return testbed, small_corpus


def deploy_and_run(testbed, corpus, reference="nginx:v1"):
    generated = corpus.get(reference)
    deploy_with_gear(testbed, generated)
    return testbed.gear_driver.containers()[-1], generated


class TestRecorder:
    def test_record_captures_touched_files(self, env):
        testbed, corpus = env
        container, generated = deploy_and_run(testbed, corpus)
        recorder = TraceRecorder()
        profile = recorder.record("nginx.gear:v1", container.mount)
        assert profile.entries  # the startup task touched files
        touched_paths = {path for path, _ in profile.entries}
        assert touched_paths <= set(
            container.mount.index.entries
        )
        assert recorder.profile_for("nginx.gear:v1") is profile
        assert len(recorder) == 1

    def test_profile_matches_trace_set(self, env):
        testbed, corpus = env
        container, generated = deploy_and_run(testbed, corpus)
        profile = TraceRecorder().record("nginx.gear:v1", container.mount)
        # Every profiled file must have been in the startup trace (the
        # task is the only reader).
        trace_paths = set(generated.trace.paths)
        for path, _ in profile.entries:
            assert path in trace_paths

    def test_head_by_bytes(self):
        profile = StartupProfile(
            reference="r", entries=(("/a", 100), ("/b", 200), ("/c", 300))
        )
        assert profile.head_by_bytes(250).entries == (("/a", 100),)
        assert profile.head_by_bytes(300).entries == (("/a", 100), ("/b", 200))
        # Budget smaller than the first entry still returns one entry.
        assert profile.head_by_bytes(1).entries == (("/a", 100),)


class TestPrefetcher:
    def test_prefetch_eliminates_demand_fetches(self, env):
        testbed, corpus = env
        container, _ = deploy_and_run(testbed, corpus)
        recorder = TraceRecorder()
        recorder.record("nginx.gear:v1", container.mount)

        # A brand new client prefetches before running.
        fresh = testbed.fresh_client()
        fresh.gear_driver.pull_index("nginx.gear:v1")
        new_container = fresh.gear_driver.create_container("nginx.gear:v1")
        report = Prefetcher(recorder).prefetch(
            "nginx.gear:v1", new_container.mount
        )
        assert report.files_prefetched > 0

        fetches_before = new_container.mount.fault_stats.remote_fetches
        for path, _ in corpus.get("nginx:v1").trace.accesses:
            new_container.mount.read_blob(path)
        assert (
            new_container.mount.fault_stats.remote_fetches == fetches_before
        )

    def test_prefetch_without_profile_is_noop(self, env):
        testbed, corpus = env
        testbed.gear_driver.pull_index("nginx.gear:v1")
        container = testbed.gear_driver.create_container("nginx.gear:v1")
        report = Prefetcher(TraceRecorder()).prefetch(
            "nginx.gear:v1", container.mount
        )
        assert report.files_prefetched == 0

    def test_byte_budget_caps_prefetch(self, env):
        testbed, corpus = env
        container, _ = deploy_and_run(testbed, corpus)
        recorder = TraceRecorder()
        profile = recorder.record("nginx.gear:v1", container.mount)

        fresh = testbed.fresh_client()
        fresh.gear_driver.pull_index("nginx.gear:v1")
        new_container = fresh.gear_driver.create_container("nginx.gear:v1")
        budget = profile.total_bytes // 4
        report = Prefetcher(recorder).prefetch(
            "nginx.gear:v1", new_container.mount, byte_budget=budget
        )
        assert 0 < report.files_prefetched < len(profile.entries)

    def test_prefetch_into_warm_cache_counts_hits(self, env):
        testbed, corpus = env
        container, _ = deploy_and_run(testbed, corpus)
        recorder = TraceRecorder()
        recorder.record("nginx.gear:v1", container.mount)
        # Same driver (shared pool): prefetch should be all cache hits.
        second = testbed.gear_driver.create_container("nginx.gear:v1")
        report = Prefetcher(recorder).prefetch("nginx.gear:v1", second.mount)
        # Files already linked into the shared index are not re-faulted;
        # anything faulted must have come from the pool, not the network.
        assert second.mount.fault_stats.remote_fetches == 0


class TestOverlappedPrefetch:
    def _recorded(self, env):
        testbed, corpus = env
        container, generated = deploy_and_run(testbed, corpus)
        recorder = TraceRecorder()
        recorder.record("nginx.gear:v1", container.mount)
        return testbed, generated, recorder

    def test_overlap_beats_demand_only_without_extra_bytes(self, small_corpus):
        # Slow wire so fetch latency dominates and the overlap is visible.
        testbed = make_testbed(bandwidth_mbps=20)
        publish_images(testbed, small_corpus.images, convert=True)
        testbed, generated, recorder = self._recorded((testbed, small_corpus))

        demand = deploy_with_gear(
            testbed.fresh_client(), generated, clear_cache=True
        )
        overlapped = deploy_with_gear_overlapped(
            testbed.fresh_client(), generated, recorder, clear_cache=True
        )
        assert overlapped.system == "gear+overlap"
        # Prefetch streams files while the task computes: strictly faster.
        assert overlapped.run_s < demand.run_s
        # The single-flight registry coalesces prefetch/demand races, so
        # no byte travels twice.
        assert overlapped.network_bytes == demand.network_bytes

    def test_overlap_without_profile_matches_demand(self, env):
        testbed, corpus = env
        generated = corpus.get("nginx:v1")
        demand = deploy_with_gear(
            testbed.fresh_client(), generated, clear_cache=True
        )
        overlapped = deploy_with_gear_overlapped(
            testbed.fresh_client(), generated, TraceRecorder(),
            clear_cache=True,
        )
        # No profile -> nothing to overlap; costs are the seed's.
        assert overlapped.run_s == demand.run_s
        assert overlapped.network_bytes == demand.network_bytes

    def test_spawn_prefetch_requires_scheduler(self, env):
        testbed, generated, recorder = self._recorded(env)
        driver = testbed.fresh_client().gear_driver
        driver.pull_index("nginx.gear:v1")
        container = driver.create_container("nginx.gear:v1")
        with pytest.raises(GearError):
            driver.spawn_prefetch(
                container, recorder.profile_for("nginx.gear:v1")
            )


class TestSharingAnalysis:
    def test_sharing_stats_over_series(self, small_corpus):
        from repro.analysis.sharing import deployment_sharing

        stats = deployment_sharing(small_corpus.by_series["tomcat"])
        assert stats.deployments == 4
        assert 0 < stats.common_file_fraction < 1
        assert stats.common_bytes <= stats.accessed_bytes

    def test_single_deployment_has_no_sharing(self, small_corpus):
        from repro.analysis.sharing import deployment_sharing

        stats = deployment_sharing(small_corpus.by_series["tomcat"][:1])
        assert stats.common_files == 0

    def test_per_series_helper(self, small_corpus):
        from repro.analysis.sharing import per_series_sharing

        by_series = per_series_sharing(small_corpus.by_series)
        assert set(by_series) == set(small_corpus.by_series)
