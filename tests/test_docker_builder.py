"""ImageBuilder: Dockerfile-like image construction."""

import pytest

from repro.common.errors import ReproError
from repro.docker.builder import ImageBuilder, image_from_tree
from repro.docker.image import ImageConfig
from repro.vfs.tree import FileSystemTree


class TestBuilder:
    def test_single_layer_build(self):
        image = (
            ImageBuilder("app", "v1")
            .add_file("/bin/app", b"binary", mode=0o755)
            .build()
        )
        assert len(image.layers) == 1
        tree = image.flatten()
        assert tree.read_bytes("/bin/app") == b"binary"
        assert tree.stat("/bin/app").meta.mode == 0o755

    def test_base_layers_are_shared_objects(self):
        base = ImageBuilder("base", "v1").add_file("/b", b"base").build()
        child = ImageBuilder("app", "v1", base=base).add_file("/a", b"app").build()
        assert child.layers[0] is base.layers[0]
        assert len(child.layers) == 2

    def test_child_inherits_config(self):
        base = (
            ImageBuilder("base", "v1", config=ImageConfig.make(env={"A": "1"}))
            .add_file("/b", b"x")
            .build()
        )
        child = ImageBuilder("app", "v1", base=base).add_file("/a", b"y").build()
        assert child.config.env_dict() == {"A": "1"}

    def test_with_env_merges(self):
        image = (
            ImageBuilder("app", "v1")
            .with_env(A="1")
            .with_env(B="2")
            .add_file("/f", b"x")
            .build()
        )
        assert image.config.env_dict() == {"A": "1", "B": "2"}

    def test_remove_produces_whiteout_layer(self):
        base = ImageBuilder("base", "v1").add_file("/doomed", b"x").build()
        child = ImageBuilder("app", "v1", base=base).remove("/doomed").build()
        assert not child.flatten().exists("/doomed")

    def test_commit_layer_resets_diff(self):
        builder = ImageBuilder("app", "v1").add_file("/one", b"1")
        builder.commit_layer()
        builder.add_file("/two", b"2")
        image = builder.build()
        assert len(image.layers) == 2
        assert image.flatten().read_bytes("/one") == b"1"

    def test_commit_without_changes_fails(self):
        with pytest.raises(ReproError):
            ImageBuilder("app", "v1").commit_layer()

    def test_build_without_layers_fails(self):
        with pytest.raises(ReproError):
            ImageBuilder("app", "v1").build()

    def test_symlink_and_mkdir(self):
        image = (
            ImageBuilder("app", "v1")
            .mkdir("/opt/app")
            .add_file("/opt/app/bin", b"b")
            .add_symlink("/opt/run", "/opt/app/bin")
            .build()
        )
        tree = image.flatten()
        assert tree.readlink("/opt/run") == "/opt/app/bin"


class TestImageFromTree:
    def test_packages_whole_tree_as_one_layer(self):
        tree = FileSystemTree()
        tree.write_file("/a/b", b"x", parents=True)
        image = image_from_tree("idx", "v1", tree, gear_index=True)
        assert len(image.layers) == 1
        assert image.gear_index
        assert image.manifest().gear_index
        assert image.flatten().read_bytes("/a/b") == b"x"
